//! The shared evaluation kernel: one design point in, one figure of
//! merit set out.
//!
//! Everything above the sizing equations — the Figure 10 sweeps, the
//! `drone-explorer` engine, the `dse_query` example — funnels through
//! [`evaluate`], so a design point means exactly the same thing to the
//! serial paper reproduction and to the parallel exploration engine.
//! The function is pure: no global state, no clocks, no allocator
//! tricks, which is what makes memoization and deterministic parallel
//! fan-out possible one layer up.
//!
//! Two routes lead to the same f64s:
//!
//! * [`evaluate`] — the scalar reference kernel, one point at a time.
//! * [`evaluate_many`] — the batched struct-of-arrays kernel: hoists
//!   every per-point-invariant quantity into [`ModelTables`], runs the
//!   Eq. 1–2 sizing fixed point over contiguous f64 lanes, and derives
//!   power/flight-time/compute-share in a second fused pass. Bit-for-bit
//!   identical to mapping [`evaluate`] over the batch (pinned by a
//!   lockstep proptest), just a faster route to the same answers.

use crate::design::{DesignError, DesignSpec, WIRING_FRACTION};
use crate::power::{FlyingLoad, PowerModel};
use drone_components::battery::CellCount;
use drone_components::frame::Frame;
use drone_components::motor::MOTOR_EFFICIENCY;
use drone_components::propeller::{Propeller, AIR_DENSITY};
use drone_components::units::{
    Amps, Grams, MilliampHours, Millimeters, WattHours, Watts, STANDARD_GRAVITY,
};
use drone_math::{BuildFnv, LinearFit};
use drone_telemetry::trace::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One design point: the six coordinates the paper's Equations 1–7 take
/// as free variables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignQuery {
    /// Frame wheelbase, mm.
    pub wheelbase_mm: f64,
    /// Battery cell configuration.
    pub cells: CellCount,
    /// Battery capacity, mAh.
    pub capacity_mah: f64,
    /// On-board compute power, W (weight follows the Table 4 trend).
    pub compute_power_w: f64,
    /// Target thrust-to-weight ratio.
    pub twr: f64,
    /// Dead payload, g.
    pub payload_g: f64,
}

impl DesignQuery {
    /// A point with the sweep defaults: a 3 W chip, the paper's TWR,
    /// no payload.
    pub fn new(wheelbase_mm: f64, cells: CellCount, capacity_mah: f64) -> DesignQuery {
        DesignQuery {
            wheelbase_mm,
            cells,
            capacity_mah,
            compute_power_w: 3.0,
            twr: drone_components::paper::PAPER_TWR,
            payload_g: 0.0,
        }
    }

    /// Sets the compute board power.
    pub fn with_compute_power(mut self, watts: f64) -> DesignQuery {
        self.compute_power_w = watts;
        self
    }

    /// Sets the thrust-to-weight target.
    pub fn with_twr(mut self, twr: f64) -> DesignQuery {
        self.twr = twr;
        self
    }

    /// Sets the dead payload.
    pub fn with_payload(mut self, grams: f64) -> DesignQuery {
        self.payload_g = grams;
        self
    }

    /// The [`DesignSpec`] this point sizes through.
    pub fn to_spec(&self) -> DesignSpec {
        DesignSpec::new(
            self.wheelbase_mm,
            self.cells,
            MilliampHours(self.capacity_mah),
        )
        .with_compute_power(Watts(self.compute_power_w))
        .with_twr(self.twr)
        .with_payload(Grams(self.payload_g))
    }
}

impl fmt::Display for DesignQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mm / {} / {:.0} mAh / {:.0} W compute / TWR {:.2} / {:.0} g payload",
            self.wheelbase_mm,
            self.cells,
            self.capacity_mah,
            self.compute_power_w,
            self.twr,
            self.payload_g
        )
    }
}

/// Everything Equations 1–7 say about one feasible design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignEval {
    /// The evaluated point.
    pub query: DesignQuery,
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Average hover power, W.
    pub hover_power_w: f64,
    /// Average maneuvering power, W.
    pub maneuver_power_w: f64,
    /// Hover flight time, min.
    pub flight_time_min: f64,
    /// Computation share of total power at hover.
    pub compute_share_hover: f64,
    /// Computation share of total power while maneuvering.
    pub compute_share_maneuver: f64,
}

/// The exploration objectives, in [`DesignEval::objectives`] order.
pub const OBJECTIVE_SENSES: [drone_math::Sense; 3] = [
    drone_math::Sense::Maximize, // flight time
    drone_math::Sense::Minimize, // take-off weight
    drone_math::Sense::Minimize, // compute share at hover
];

impl DesignEval {
    /// The objective vector `(flight time, weight, compute share)` the
    /// Pareto frontier ranks, matching [`OBJECTIVE_SENSES`].
    pub fn objectives(&self) -> [f64; 3] {
        [
            self.flight_time_min,
            self.weight_g,
            self.compute_share_hover,
        ]
    }
}

/// Evaluates one design point with the paper's power model: sizes the
/// drone (Eq. 1–2) and derives power, flight time and compute share
/// (Eq. 3–7).
///
/// # Errors
///
/// Returns [`DesignError`] when the point cannot fly (sizing diverges,
/// the battery cannot discharge fast enough, or a parameter is out of
/// the modelled range).
pub fn evaluate(query: &DesignQuery) -> Result<DesignEval, DesignError> {
    evaluate_with(&PowerModel::paper_defaults(), query)
}

/// [`evaluate`], recording the kernel's two stages — the sizing
/// fixed-point (`eval.size`) and the power/flight-time derivation
/// (`eval.power`) — as leaf spans under `parent` when tracing is on.
/// With `parent = None` this *is* [`evaluate`]: the result is
/// identical and nothing is recorded.
pub fn evaluate_traced(
    query: &DesignQuery,
    parent: Option<&Span>,
) -> Result<DesignEval, DesignError> {
    evaluate_with_traced(&PowerModel::paper_defaults(), query, parent)
}

/// [`evaluate`] with an explicit power model (ablation studies vary the
/// efficiency and drain-limit constants).
pub fn evaluate_with(model: &PowerModel, query: &DesignQuery) -> Result<DesignEval, DesignError> {
    evaluate_with_traced(model, query, None)
}

/// [`evaluate_with`] with optional leaf-span tracing. The spans carry
/// fixed orders (`eval.size` = 0, `eval.power` = 1), so their ids are a
/// pure function of the trace id — identical at any thread count.
pub fn evaluate_with_traced(
    model: &PowerModel,
    query: &DesignQuery,
    parent: Option<&Span>,
) -> Result<DesignEval, DesignError> {
    let sizing = {
        let mut span = parent.map(|p| p.child("eval.size", 0));
        let sizing = query.to_spec().size();
        if let Some(span) = span.as_mut() {
            span.tag("feasible", sizing.is_ok());
        }
        sizing
    };
    let drone = sizing?;
    let _power_span = parent.map(|p| p.child("eval.power", 1));
    let hover = model.average_power(&drone, FlyingLoad::Hover);
    let maneuver = model.average_power(&drone, FlyingLoad::Maneuver);
    Ok(DesignEval {
        query: *query,
        weight_g: drone.total_weight.0,
        hover_power_w: hover.total().0,
        maneuver_power_w: maneuver.total().0,
        flight_time_min: model.flight_time(&drone, FlyingLoad::Hover).0,
        compute_share_hover: model.compute_share(&drone, FlyingLoad::Hover),
        compute_share_maneuver: model.compute_share(&drone, FlyingLoad::Maneuver),
    })
}

/// Evaluates a batch of design points through the struct-of-arrays
/// kernel. Returns one `Result` per input point, in input order,
/// bit-for-bit identical to `queries.iter().map(evaluate)`.
///
/// # Errors
///
/// Each slot carries its own [`DesignError`] exactly as [`evaluate`]
/// would have returned it.
///
/// # Panics
///
/// Panics exactly when some point would make [`evaluate`] panic (NaN
/// wheelbase, non-positive capacity, non-positive thrust demand, …),
/// with the same message — though not necessarily at the same point
/// ordinal, since lanes advance together.
pub fn evaluate_many(queries: &[DesignQuery]) -> Vec<Result<DesignEval, DesignError>> {
    evaluate_many_with(&PowerModel::paper_defaults(), queries)
}

/// [`evaluate_many`] with an explicit power model.
///
/// # Errors
///
/// Per-slot [`DesignError`]s, as [`evaluate_with`] would return them.
pub fn evaluate_many_with(
    model: &PowerModel,
    queries: &[DesignQuery],
) -> Vec<Result<DesignEval, DesignError>> {
    EvalBatch::new(queries).run(model)
}

/// Deterministic counters from one [`EvalBatch`] run: a pure function
/// of the input points, identical at any thread count or batch
/// partition. The roofline experiment multiplies these by static
/// per-iteration operation counts to place the kernel on the roofline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// Input points in the batch.
    pub points: usize,
    /// Points that sized and passed every feasibility gate.
    pub feasible: usize,
    /// Points rejected before sizing (TWR / wheelbase range).
    pub invalid_parameter: usize,
    /// Points whose fixed point diverged.
    pub diverged: usize,
    /// Points that sized but exceed the battery discharge limit.
    pub discharge_limited: usize,
    /// Total Eq. 1–2 iterations executed, summed over lanes.
    pub sizing_iterations: u64,
    /// Outer fixed-point rounds until every lane settled (the longest
    /// single lane's iteration count).
    pub fixed_point_rounds: u64,
}

/// Per-`CellCount` constants of the sizing and power models, computed
/// once per batch instead of once per point: pack voltage and the
/// Figure 7 capacity-to-weight fit.
#[derive(Debug, Clone, Copy)]
struct CellTable {
    /// Nominal pack voltage, V (`3.7 × cells`).
    voltage: f64,
    /// Figure 7 battery weight fit for this cell count.
    battery_fit: LinearFit,
}

/// Per-wheelbase geometry, computed once per *unique* wheelbase in the
/// batch through the real `Frame`/`Propeller` constructors (so the
/// values — and any input-assert panics — are exactly the scalar
/// kernel's). Hoisting these is where the batched kernel's speed comes
/// from: the scalar path re-derives `Ct^1.5` (a `powf`) twice per
/// sizing iteration; here it happens once per wheelbase.
#[derive(Debug, Clone, Copy)]
struct WheelbaseTable {
    /// Frame weight, g.
    frame_weight: f64,
    /// Single propeller weight, g.
    prop_weight: f64,
    /// `Ct · ρ · D⁴` — the divisor in `rev_per_s_for_thrust`.
    thrust_denom: f64,
    /// `Cp · ρ` — the shaft-power prefix.
    cp_rho: f64,
    /// `D⁵` in metres — the shaft-power suffix.
    d_m5: f64,
}

impl WheelbaseTable {
    fn for_wheelbase(wheelbase_mm: f64) -> WheelbaseTable {
        let frame = Frame::from_model(Millimeters(wheelbase_mm));
        let prop = Propeller::standard(frame.max_propeller_inches());
        let d_m = prop.diameter_m();
        WheelbaseTable {
            frame_weight: frame.weight.0,
            prop_weight: prop.weight.0,
            // Same associativity as the scalar expressions: `(Ct·ρ)·D⁴`
            // and `(Cp·ρ)`, so every downstream f64 is bit-identical.
            thrust_denom: prop.thrust_coefficient() * AIR_DENSITY * d_m.powi(4),
            cp_rho: prop.power_coefficient() * AIR_DENSITY,
            d_m5: d_m.powi(5),
        }
    }
}

/// Every per-point-invariant quantity of the evaluation model, hoisted
/// out of the sizing loop: per-cell-count voltage and battery fit, the
/// ESC weight fit, and frame/propeller geometry per unique wheelbase.
#[derive(Debug, Clone)]
pub struct ModelTables {
    cells: [CellTable; 6],
    esc_fit: LinearFit,
    /// Keyed by the wheelbase's f64 bit pattern (exact, no
    /// quantizing); FNV-hashed — the gather pass looks every point up.
    wheelbases: HashMap<u64, WheelbaseTable, BuildFnv>,
}

impl ModelTables {
    /// Builds the tables for a batch: one [`CellTable`] per cell count
    /// and one geometry entry per unique wheelbase among the points the
    /// scalar kernel would actually size (points outside the TWR or
    /// wheelbase envelope resolve to typed errors before touching any
    /// component model, so their geometry is never computed — exactly
    /// like the scalar early returns).
    pub fn for_queries(queries: &[DesignQuery]) -> ModelTables {
        let cells = CellCount::ALL.map(|c| CellTable {
            voltage: c.nominal_voltage().0,
            battery_fit: drone_components::paper::battery_weight_fit(c),
        });
        let mut wheelbases: HashMap<u64, WheelbaseTable, BuildFnv> = HashMap::default();
        for q in queries {
            if !(1.05..=10.0).contains(&q.twr) || q.wheelbase_mm < 30.0 || q.wheelbase_mm > 1500.0 {
                continue;
            }
            wheelbases
                .entry(q.wheelbase_mm.to_bits())
                .or_insert_with(|| WheelbaseTable::for_wheelbase(q.wheelbase_mm));
        }
        ModelTables {
            cells,
            esc_fit: drone_components::paper::esc_long_flight_fit(),
            wheelbases,
        }
    }

    /// Unique wheelbases with hoisted geometry.
    pub fn unique_wheelbases(&self) -> usize {
        self.wheelbases.len()
    }

    fn cell(&self, cells: CellCount) -> &CellTable {
        &self.cells[cells.cells() as usize - 1]
    }

    fn wheelbase(&self, wheelbase_mm: f64) -> &WheelbaseTable {
        self.wheelbases
            .get(&wheelbase_mm.to_bits())
            .expect("geometry hoisted for every admissible wheelbase")
    }
}

/// A batch of design points laid out for the struct-of-arrays kernel:
/// hoisted [`ModelTables`] plus the input slice. [`EvalBatch::run`]
/// executes the Eq. 1–2 fixed point over contiguous f64 lanes and the
/// Eq. 3–7 derivation in a second fused pass.
#[derive(Debug)]
pub struct EvalBatch<'q> {
    queries: &'q [DesignQuery],
    tables: ModelTables,
}

/// Contiguous f64 lanes for the points that reach the sizing loop, in
/// input order. Feasibility is a lane too ([`Lanes::diverged`]): the
/// inner loop only marks it, and marks resolve to typed errors at the
/// end — no per-point branching into early returns.
#[derive(Default)]
struct Lanes {
    /// Lane → input index.
    point: Vec<usize>,
    /// Fixed weight (basic + battery), g.
    fixed: Vec<f64>,
    /// Thrust-to-weight target.
    twr: Vec<f64>,
    /// `Ct · ρ · D⁴` per lane.
    thrust_denom: Vec<f64>,
    /// `Cp · ρ` per lane.
    cp_rho: Vec<f64>,
    /// `D⁵` per lane.
    d_m5: Vec<f64>,
    /// Single propeller weight, g.
    prop_weight: Vec<f64>,
    /// Pack voltage, V.
    voltage: Vec<f64>,
    /// Pack capacity, mAh.
    capacity: Vec<f64>,
    /// Compute board power, W.
    compute_power: Vec<f64>,
    /// State: motor+ESC+prop weight estimate (`Grams`), starts at 0.
    mep: Vec<f64>,
    /// State: per-motor max current from the latest iteration, A.
    current: Vec<f64>,
    /// Mask lane: the fixed point diverged (resolved to
    /// [`DesignError::SizingDiverged`] in the epilogue).
    diverged: Vec<bool>,
}

impl Lanes {
    fn with_capacity(points: usize) -> Lanes {
        Lanes {
            point: Vec::with_capacity(points),
            fixed: Vec::with_capacity(points),
            twr: Vec::with_capacity(points),
            thrust_denom: Vec::with_capacity(points),
            cp_rho: Vec::with_capacity(points),
            d_m5: Vec::with_capacity(points),
            prop_weight: Vec::with_capacity(points),
            voltage: Vec::with_capacity(points),
            capacity: Vec::with_capacity(points),
            compute_power: Vec::with_capacity(points),
            mep: Vec::with_capacity(points),
            current: Vec::with_capacity(points),
            diverged: Vec::with_capacity(points),
        }
    }

    fn push(&mut self, point: usize, q: &DesignQuery, wb: &WheelbaseTable, cell: &CellTable) {
        // `Battery::new`'s input asserts, in its order, so degenerate
        // capacities panic with the scalar kernel's message.
        assert!(q.capacity_mah > 0.0, "capacity must be positive");
        let battery_weight = cell.battery_fit.predict(q.capacity_mah);
        assert!(battery_weight > 0.0, "weight must be positive");
        // `DesignSpec::basic_weight()` with the `DesignQuery::to_spec`
        // constants (Table 4 compute trend, 15 g sensors), in the same
        // `Grams` addition order.
        let compute_weight = 10.0 + 4.0 * q.compute_power_w;
        let basic = ((wb.frame_weight + compute_weight) + 15.0) + q.payload_g;
        let fixed = basic + battery_weight;
        // `Motor::size_for`'s thrust assert, hoisted out of the sizing
        // loop: the first iteration's thrust (`mep = 0`, same ops) is
        // non-positive or NaN exactly when every later iteration's
        // would be — the loop only ever *adds* positive motor/ESC/prop
        // weight, and a runaway estimate trips the divergence gate
        // before it can poison the next round. Checking here keeps the
        // hot loop branch- and panic-free.
        let wiring1 = (fixed + 0.0) * WIRING_FRACTION;
        let total1 = (fixed + 0.0) + wiring1;
        let thrust1 = total1 / 1000.0 * STANDARD_GRAVITY * q.twr / 4.0;
        assert!(thrust1 > 0.0, "thrust must be positive");
        self.point.push(point);
        self.fixed.push(fixed);
        self.twr.push(q.twr);
        self.thrust_denom.push(wb.thrust_denom);
        self.cp_rho.push(wb.cp_rho);
        self.d_m5.push(wb.d_m5);
        self.prop_weight.push(wb.prop_weight);
        self.voltage.push(cell.voltage);
        self.capacity.push(q.capacity_mah);
        self.compute_power.push(q.compute_power_w);
        self.mep.push(0.0);
        self.current.push(0.0);
        self.diverged.push(false);
    }

    /// Swaps two lanes across every parallel array (the dense-prefix
    /// compaction in the fixed point).
    fn swap(&mut self, a: usize, b: usize) {
        self.point.swap(a, b);
        self.fixed.swap(a, b);
        self.twr.swap(a, b);
        self.thrust_denom.swap(a, b);
        self.cp_rho.swap(a, b);
        self.d_m5.swap(a, b);
        self.prop_weight.swap(a, b);
        self.voltage.swap(a, b);
        self.capacity.swap(a, b);
        self.compute_power.swap(a, b);
        self.mep.swap(a, b);
        self.current.swap(a, b);
        self.diverged.swap(a, b);
    }

    fn len(&self) -> usize {
        self.point.len()
    }
}

impl<'q> EvalBatch<'q> {
    /// Lays out a batch: builds the [`ModelTables`] (the only place the
    /// component constructors run) and keeps the input slice.
    pub fn new(queries: &'q [DesignQuery]) -> EvalBatch<'q> {
        EvalBatch {
            queries,
            tables: ModelTables::for_queries(queries),
        }
    }

    /// The hoisted tables (the roofline experiment reports their size).
    pub fn tables(&self) -> &ModelTables {
        &self.tables
    }

    /// Runs the batch. See [`evaluate_many`] for the contract.
    pub fn run(&self, model: &PowerModel) -> Vec<Result<DesignEval, DesignError>> {
        self.run_profiled(model).0
    }

    /// [`EvalBatch::run`], also returning the deterministic
    /// [`BatchProfile`] counters.
    pub fn run_profiled(
        &self,
        model: &PowerModel,
    ) -> (Vec<Result<DesignEval, DesignError>>, BatchProfile) {
        let mut profile = BatchProfile {
            points: self.queries.len(),
            ..BatchProfile::default()
        };
        let mut results: Vec<Option<Result<DesignEval, DesignError>>> =
            vec![None; self.queries.len()];

        // Gather: envelope errors resolve immediately (the scalar
        // kernel returns before touching any component model); every
        // other point gets a contiguous lane.
        let mut lanes = Lanes::with_capacity(self.queries.len());
        for (i, q) in self.queries.iter().enumerate() {
            if !(1.05..=10.0).contains(&q.twr) {
                results[i] = Some(Err(DesignError::InvalidTwr(q.twr)));
                profile.invalid_parameter += 1;
            } else if q.wheelbase_mm < 30.0 || q.wheelbase_mm > 1500.0 {
                results[i] = Some(Err(DesignError::InvalidWheelbase(q.wheelbase_mm)));
                profile.invalid_parameter += 1;
            } else {
                let wb = self.tables.wheelbase(q.wheelbase_mm);
                let cell = self.tables.cell(q.cells);
                lanes.push(i, q, wb, cell);
            }
        }

        self.size_fixed_point(&mut lanes, &mut profile);
        self.derive_outputs(&lanes, model, &mut results, &mut profile);

        let results = results
            .into_iter()
            .map(|slot| slot.expect("every point resolved"))
            .collect();
        (results, profile)
    }

    /// The Eq. 1–2 fixed point over all lanes at once: each round runs
    /// one sizing iteration for every still-active lane,
    /// operation-for-operation the scalar loop body with the
    /// invariants read from the hoisted lanes.
    ///
    /// Laid out for throughput, not per-point latency:
    ///
    /// * Active lanes live in a **dense prefix** — finished lanes swap
    ///   past the `alive` boundary after each round, so the hot passes
    ///   stride contiguous slices with no index indirection.
    /// * Each round is **fissioned into three passes**: the polynomial
    ///   weight→thrust→shaft→torque chain (branch-free, vectorizable),
    ///   the `powf(0.407)` motor-weight pass (independent calls, so
    ///   the FPU pipelines them at throughput instead of the scalar
    ///   kernel's one-per-iteration latency chain), and the
    ///   current/ESC/convergence epilogue.
    /// * No asserts or early exits in any pass — the input assert is
    ///   hoisted to [`Lanes::push`], feasibility is a mask lane.
    fn size_fixed_point(&self, lanes: &mut Lanes, profile: &mut BatchProfile) {
        const TWO_PI: f64 = 2.0 * std::f64::consts::PI;
        let esc_fit = self.tables.esc_fit;
        let mut alive = lanes.len();
        // Round-local scratch: shaft power, torque-then-motor-weight
        // (pass 2 maps it in place), and the per-round finished mask.
        let mut shaft_l = vec![0.0f64; alive];
        let mut tm_l = vec![0.0f64; alive];
        let mut finished = vec![false; alive];
        for iteration in 0..32 {
            if alive == 0 {
                break;
            }
            profile.fixed_point_rounds += 1;
            profile.sizing_iterations += alive as u64;
            let last_round = iteration == 31;
            {
                // Pass 1 — Eq. 1–2 up to the torque: pure polynomial
                // lanes, same associativity as `DesignSpec::size` /
                // `Motor::size_for` / the `Propeller` unit methods.
                let fixed = &lanes.fixed[..alive];
                let twr = &lanes.twr[..alive];
                let thrust_denom = &lanes.thrust_denom[..alive];
                let cp_rho = &lanes.cp_rho[..alive];
                let d_m5 = &lanes.d_m5[..alive];
                let mep = &lanes.mep[..alive];
                let shaft_l = &mut shaft_l[..alive];
                let tm_l = &mut tm_l[..alive];
                for l in 0..alive {
                    let wiring = (fixed[l] + mep[l]) * WIRING_FRACTION;
                    let total = (fixed[l] + mep[l]) + wiring;
                    let thrust = total / 1000.0 * STANDARD_GRAVITY * twr[l] / 4.0;
                    let n_max = (thrust / thrust_denom[l]).sqrt();
                    let shaft = cp_rho[l] * n_max.powi(3) * d_m5[l];
                    shaft_l[l] = shaft;
                    tm_l[l] = if n_max <= 0.0 {
                        0.0
                    } else {
                        shaft / (TWO_PI * n_max)
                    };
                }
                // Pass 2 — motor weight: the only transcendental.
                // Independent back-to-back `powf` calls overlap in the
                // pipeline; the scalar kernel serializes them through
                // the weight estimate's loop-carried dependency.
                for t in tm_l.iter_mut() {
                    *t = (141.0 * t.powf(0.407)).max(1.5);
                }
            }
            {
                // Pass 3 — ESC sizing, Eq. 1 update, convergence and
                // divergence marks (mask lanes, no branches out).
                let voltage = &lanes.voltage[..alive];
                let prop_weight = &lanes.prop_weight[..alive];
                let mep = &mut lanes.mep[..alive];
                let current = &mut lanes.current[..alive];
                let diverged = &mut lanes.diverged[..alive];
                let shaft_l = &shaft_l[..alive];
                let tm_l = &tm_l[..alive];
                let finished = &mut finished[..alive];
                for l in 0..alive {
                    let electrical = shaft_l[l] / MOTOR_EFFICIENCY;
                    let max_current = electrical / voltage[l] * 1.15;
                    let esc_weight = esc_fit.predict(max_current).max(4.0) / 4.0;
                    let new_mep = ((tm_l[l] + esc_weight) + prop_weight[l]) * 4.0;
                    let converged = (new_mep - mep[l]).abs() < 0.01;
                    mep[l] = new_mep;
                    current[l] = max_current;
                    let blew_up = !converged && (last_round || new_mep > 100_000.0);
                    diverged[l] = blew_up;
                    finished[l] = converged || blew_up;
                }
            }
            // Compact: swap finished lanes past the alive boundary so
            // the next round's passes stay dense. Lane order within
            // the batch is free — every lane is independent and the
            // epilogue scatters by the `point` lane.
            let mut l = 0;
            while l < alive {
                if finished[l] {
                    alive -= 1;
                    lanes.swap(l, alive);
                    finished.swap(l, alive);
                } else {
                    l += 1;
                }
            }
        }
    }

    /// The second fused pass: resolves mask lanes to typed errors,
    /// gates on the battery discharge limit, and derives Eq. 3–7
    /// (power, flight time, compute shares) for the survivors.
    fn derive_outputs(
        &self,
        lanes: &Lanes,
        model: &PowerModel,
        results: &mut [Option<Result<DesignEval, DesignError>>],
        profile: &mut BatchProfile,
    ) {
        let hover_fraction = FlyingLoad::Hover.fraction();
        let maneuver_fraction = FlyingLoad::Maneuver.fraction();
        for l in 0..lanes.len() {
            let i = lanes.point[l];
            if lanes.diverged[l] {
                results[i] = Some(Err(DesignError::SizingDiverged));
                profile.diverged += 1;
                continue;
            }
            // Discharge-limit gate, same operand order and `Amps`
            // payloads as `DesignSpec::size`.
            let required = lanes.current[l] * 4.0;
            let available = lanes.capacity[l] / 1000.0 * 60.0;
            if available < required {
                results[i] = Some(Err(DesignError::BatteryDischargeLimit {
                    required: Amps(required),
                    available: Amps(available),
                }));
                profile.discharge_limited += 1;
                continue;
            }
            let wiring = (lanes.fixed[l] + lanes.mep[l]) * WIRING_FRACTION;
            let total_weight = (lanes.fixed[l] + lanes.mep[l]) + wiring;
            // Eq. 3: `V · (I_total · fraction)` plus avionics, in the
            // `PowerBreakdown::total()` addition order (0.5 W sensors
            // from the `DesignQuery::to_spec` defaults).
            let voltage = lanes.voltage[l];
            let compute = lanes.compute_power[l];
            let propulsion_hover = voltage * (required * hover_fraction);
            let hover_total = (propulsion_hover + compute) + 0.5;
            let propulsion_maneuver = voltage * (required * maneuver_fraction);
            let maneuver_total = (propulsion_maneuver + compute) + 0.5;
            // Eq. 4–5 through the real unit methods: same ops, same
            // panic on a non-positive total power.
            let stored = lanes.capacity[l] / 1000.0 * voltage;
            let usable = stored * model.drain_limit * model.power_efficiency;
            let flight_time = WattHours(usable).duration_at(Watts(hover_total)).0;
            results[i] = Some(Ok(DesignEval {
                query: self.queries[i],
                weight_g: total_weight,
                hover_power_w: hover_total,
                maneuver_power_w: maneuver_total,
                flight_time_min: flight_time,
                compute_share_hover: compute / hover_total,
                compute_share_maneuver: compute / maneuver_total,
            }));
            profile.feasible += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::SizedDrone;

    fn q450() -> DesignQuery {
        DesignQuery::new(450.0, CellCount::S3, 4000.0)
    }

    #[test]
    fn evaluate_matches_the_manual_pipeline() {
        // The kernel must produce exactly what the pre-refactor sweep
        // computed by hand: spec → size → power model.
        let eval = evaluate(&q450()).expect("feasible");
        let drone: SizedDrone = q450().to_spec().size().unwrap();
        let model = PowerModel::paper_defaults();
        assert_eq!(eval.weight_g, drone.total_weight.0);
        assert_eq!(
            eval.hover_power_w,
            model.average_power(&drone, FlyingLoad::Hover).total().0
        );
        assert_eq!(
            eval.flight_time_min,
            model.flight_time(&drone, FlyingLoad::Hover).0
        );
        assert_eq!(
            eval.compute_share_hover,
            model.compute_share(&drone, FlyingLoad::Hover)
        );
    }

    #[test]
    fn evaluate_is_pure() {
        let a = evaluate(&q450()).unwrap();
        let b = evaluate(&q450()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traced_evaluate_matches_untraced_and_records_leaves() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let builder = TraceBuilder::new(derive_trace_id(1, 1), Clock::sim());
        let traced = {
            let root = builder.root("test");
            evaluate_traced(&q450(), Some(&root)).unwrap()
        };
        assert_eq!(traced, evaluate(&q450()).unwrap());
        let trace = builder.finish();
        assert_eq!(trace.count_named("eval.size"), 1);
        assert_eq!(trace.count_named("eval.power"), 1);
        assert_eq!(trace.count_tagged("feasible", "true"), 0); // bool tag, not str
        assert_eq!(trace.open_at_finish, 0);
    }

    #[test]
    fn traced_evaluate_of_infeasible_point_skips_power_stage() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let builder = TraceBuilder::new(derive_trace_id(1, 2), Clock::sim());
        {
            let root = builder.root("test");
            let q = DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(800.0);
            assert!(evaluate_traced(&q, Some(&root)).is_err());
        }
        let trace = builder.finish();
        assert_eq!(trace.count_named("eval.size"), 1);
        assert_eq!(trace.count_named("eval.power"), 0);
    }

    #[test]
    fn builders_reach_the_spec() {
        let q = q450()
            .with_compute_power(20.0)
            .with_twr(3.0)
            .with_payload(250.0);
        let spec = q.to_spec();
        assert_eq!(spec.compute_power.0, 20.0);
        assert_eq!(spec.twr, 3.0);
        assert_eq!(spec.payload_weight.0, 250.0);
        // Table 4 trend: 10 g carrier + 4 g/W.
        assert_eq!(spec.compute_weight.0, 90.0);
    }

    #[test]
    fn infeasible_points_report_errors() {
        let q = DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(800.0);
        assert!(evaluate(&q).is_err());
        let q = q450().with_twr(0.2);
        assert!(matches!(evaluate(&q), Err(DesignError::InvalidTwr(_))));
    }

    #[test]
    fn batched_kernel_is_bit_identical_to_scalar_on_a_mixed_grid() {
        // A grid that exercises every outcome class: feasible points,
        // TWR/wheelbase envelope errors, discharge-limited corners and
        // diverging fixed points, all in one batch.
        let mut queries = Vec::new();
        for wheelbase in [20.0, 100.0, 220.0, 450.0, 800.0, 1600.0] {
            for cells in [CellCount::S1, CellCount::S3, CellCount::S6] {
                for capacity in [200.0, 1500.0, 4000.0, 8000.0] {
                    for (twr, payload) in [(0.5, 0.0), (2.0, 0.0), (2.0, 900.0), (9.5, 4000.0)] {
                        queries.push(
                            DesignQuery::new(wheelbase, cells, capacity)
                                .with_twr(twr)
                                .with_payload(payload),
                        );
                    }
                }
            }
        }
        let batched = evaluate_many(&queries);
        assert_eq!(batched.len(), queries.len());
        let mut classes = [0usize; 5];
        for (q, b) in queries.iter().zip(&batched) {
            let scalar = evaluate(q);
            assert_eq!(&scalar, b, "diverging result for {q}");
            if let (Ok(s), Ok(b)) = (&scalar, b) {
                // PartialEq can hide -0.0 vs 0.0; pin the exact bits.
                for (a, b) in [
                    (s.weight_g, b.weight_g),
                    (s.hover_power_w, b.hover_power_w),
                    (s.maneuver_power_w, b.maneuver_power_w),
                    (s.flight_time_min, b.flight_time_min),
                    (s.compute_share_hover, b.compute_share_hover),
                    (s.compute_share_maneuver, b.compute_share_maneuver),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "bit drift for {q}");
                }
            }
            classes[match b {
                Ok(_) => 0,
                Err(DesignError::InvalidTwr(_)) => 1,
                Err(DesignError::InvalidWheelbase(_)) => 2,
                Err(DesignError::SizingDiverged) => 3,
                Err(DesignError::BatteryDischargeLimit { .. }) => 4,
            }] += 1;
        }
        assert!(
            classes.iter().all(|&c| c > 0),
            "grid must hit every outcome class, got {classes:?}"
        );
    }

    #[test]
    fn batch_profile_counts_are_consistent() {
        let queries: Vec<DesignQuery> = (0..20)
            .map(|i| DesignQuery::new(100.0 + 40.0 * i as f64, CellCount::S3, 3000.0))
            .collect();
        let batch = EvalBatch::new(&queries);
        let (results, profile) = batch.run_profiled(&PowerModel::paper_defaults());
        assert_eq!(profile.points, 20);
        assert_eq!(
            profile.feasible,
            results.iter().filter(|r| r.is_ok()).count()
        );
        assert_eq!(
            profile.points,
            profile.feasible
                + profile.invalid_parameter
                + profile.diverged
                + profile.discharge_limited
        );
        // Every sized lane iterates at least once; the longest lane
        // bounds the rounds.
        let sized = (profile.points - profile.invalid_parameter) as u64;
        assert!(profile.sizing_iterations >= sized);
        assert!(profile.fixed_point_rounds <= 32);
        assert!(profile.fixed_point_rounds * sized >= profile.sizing_iterations);
        // Hoisting actually deduplicates: 20 unique wheelbases here.
        assert_eq!(batch.tables().unique_wheelbases(), 20);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(evaluate_many(&[]).is_empty());
    }

    #[test]
    fn objectives_follow_the_senses() {
        let eval = evaluate(&q450()).unwrap();
        let objs = eval.objectives();
        assert_eq!(objs[0], eval.flight_time_min);
        assert_eq!(objs[1], eval.weight_g);
        assert_eq!(objs[2], eval.compute_share_hover);
        assert_eq!(OBJECTIVE_SENSES[0], drone_math::Sense::Maximize);
    }
}
