//! Design-space exploration for autonomous drones — the paper's primary
//! contribution (Hadidi et al., ASPLOS '21, §3).
//!
//! Given a wheelbase, battery configuration and compute/sensor payload,
//! the crate sizes a complete drone (Equations 1–2), derives its power
//! consumption and flight time (Equations 3–5), quantifies the
//! computation footprint (Equations 6–7), and composes the SLAM workload
//! and platform models into the paper's offload tradeoff (Table 5):
//!
//! * [`design`] — component sizing at a target thrust-to-weight ratio,
//!   including the Equation 1 fixed point (heavier motors need bigger
//!   motors).
//! * [`eval`] — the pure per-point evaluation kernel
//!   ([`evaluate`]`(&DesignQuery) -> DesignEval`) every sweep and the
//!   `drone-explorer` engine share.
//! * [`power`] — flying loads, average power, flight time, computation
//!   share and gained-flight-time conversions.
//! * [`sweep`] — the Figure 10 design-space sweeps (total power vs
//!   weight per battery configuration; compute share for 3 W / 20 W
//!   chips at hover and maneuver).
//! * [`commercial`] — validation against commercial drones (Figure 10
//!   diamonds, Figure 11 nano/micro study).
//! * [`offload`] — the SLAM offload analysis combining
//!   [`drone_slam`] stage profiles with [`drone_platform`] models
//!   (Figure 17 aggregation, Table 5).
//! * [`procedure`] — the Figure 12 procedure as an executable API.
//! * [`reference_drone`] — the paper's own 450 mm build (Figure 14).
//!
//! # Example
//!
//! ```
//! use drone_dse::design::DesignSpec;
//! use drone_dse::power::{FlyingLoad, PowerModel};
//! use drone_components::battery::CellCount;
//! use drone_components::units::{MilliampHours, Watts};
//!
//! // Size a 450 mm drone with a 4000 mAh 3S pack and a 3 W computer.
//! let spec = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
//!     .with_compute_power(Watts(3.0));
//! let drone = spec.size().expect("feasible design");
//! let power = PowerModel::paper_defaults();
//! let ft = power.flight_time(&drone, FlyingLoad::Hover);
//! assert!(ft.0 > 5.0 && ft.0 < 45.0, "flight time {ft}");
//! ```

pub mod commercial;
pub mod design;
pub mod eval;
pub mod offload;
pub mod power;
pub mod procedure;
pub mod reference_drone;
pub mod sweep;

pub use design::{DesignSpec, SizedDrone};
pub use eval::{
    evaluate, evaluate_many, evaluate_many_with, evaluate_traced, evaluate_with,
    evaluate_with_traced, BatchProfile, DesignEval, DesignQuery, EvalBatch, ModelTables,
    OBJECTIVE_SENSES,
};
pub use power::{FlyingLoad, PowerBreakdown, PowerModel};
pub use procedure::{Procedure, ProcedureReport, Requirements};
pub use sweep::{FootprintPoint, SweepPoint, WheelbaseSweep};
