//! Validation against commercial drones (Figure 10 diamonds, Figure 11).
//!
//! The paper verifies its model by overlaying released commercial specs:
//! a drone's average flight power is derivable from its battery and
//! advertised flight time, and should land on the model's power/weight
//! curve. Figure 11 then studies six nano/micro drones: hover power,
//! maneuver power, flight time, and the share a heavy-computation load
//! (vision/SLAM) would take.

use drone_components::paper::{figure11_drones, CommercialDrone};
use drone_components::units::Watts;
use serde::{Deserialize, Serialize};

/// A commercial drone converted into model terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommercialPoint {
    /// Product name.
    pub name: String,
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Average flight power inferred from specs, W.
    pub flight_power_w: f64,
    /// Estimated maneuvering power (≈2× hover, per the paper's load
    /// fractions), W.
    pub maneuver_power_w: f64,
    /// Advertised flight time, min.
    pub flight_time_min: f64,
    /// Heavy-computation power share while hovering.
    pub heavy_compute_share: f64,
}

/// Derives the average flight power from released specs: usable battery
/// energy over advertised flight time (the paper's §3.2 validation).
pub fn infer_flight_power(drone: &CommercialDrone) -> Watts {
    let energy_wh = drone.capacity_mah / 1000.0
        * drone.cells.nominal_voltage().0
        * drone_components::battery::LIPO_DRAIN_LIMIT;
    Watts(energy_wh / (drone.flight_time_min / 60.0))
}

/// Builds the Figure 11 rows for the six nano/micro drones.
pub fn figure11_points() -> Vec<CommercialPoint> {
    figure11_drones()
        .iter()
        .map(|d| {
            let hover = infer_flight_power(d);
            CommercialPoint {
                name: d.name.to_owned(),
                weight_g: d.weight.0,
                flight_power_w: hover.0,
                maneuver_power_w: hover.0 * 0.65 / 0.30,
                flight_time_min: d.flight_time_min,
                heavy_compute_share: d.heavy_compute.0 / (hover.0 + d.heavy_compute.0),
            }
        })
        .collect()
}

/// Compares one commercial drone's inferred power to the model's
/// power/weight curve at the same weight; returns
/// `(inferred_w, model_w, relative_error)` or `None` when no feasible
/// model point brackets the weight.
pub fn validate_against_sweep(
    drone: &CommercialDrone,
    sweep: &crate::sweep::WheelbaseSweep,
) -> Option<(f64, f64, f64)> {
    let inferred = infer_flight_power(drone).0;
    // Nearest-weight model point.
    let nearest = sweep.points.iter().min_by(|a, b| {
        (a.weight_g - drone.weight.0)
            .abs()
            .partial_cmp(&(b.weight_g - drone.weight.0).abs())
            .expect("finite")
    })?;
    // Only meaningful when the weights are comparable.
    if (nearest.weight_g - drone.weight.0).abs() / drone.weight.0 > 0.5 {
        return None;
    }
    let model = nearest.hover_power_w;
    let rel = (model - inferred).abs() / inferred;
    Some((inferred, model, rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::WheelbaseSweep;
    use drone_components::battery::CellCount;
    use drone_components::paper::commercial_drones;

    #[test]
    fn inferred_powers_are_plausible() {
        for d in commercial_drones() {
            let p = infer_flight_power(&d).0;
            // Nano drones ~10 W up to heavy-lift ~1 kW.
            assert!((5.0..1500.0).contains(&p), "{}: {p} W", d.name);
        }
    }

    #[test]
    fn mambo_hover_power_is_nano_scale() {
        let points = figure11_points();
        let mambo = points.iter().find(|p| p.name == "Parrot Mambo").unwrap();
        assert!(
            (5.0..25.0).contains(&mambo.flight_power_w),
            "{}",
            mambo.flight_power_w
        );
    }

    #[test]
    fn figure11_heavy_compute_share_band() {
        // The paper: heavy computation reaches 10–20 % of total power on
        // small drones (with hover-only at 2–7 %).
        let points = figure11_points();
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(
                (0.03..0.45).contains(&p.heavy_compute_share),
                "{}: share {}",
                p.name,
                p.heavy_compute_share
            );
        }
        // At least half the fleet in the paper's headline 10–20 % band.
        let in_band = points
            .iter()
            .filter(|p| (0.08..0.25).contains(&p.heavy_compute_share))
            .count();
        assert!(in_band >= 3, "only {in_band} drones in the 10-20% band");
    }

    #[test]
    fn maneuver_power_roughly_doubles() {
        for p in figure11_points() {
            let ratio = p.maneuver_power_w / p.flight_power_w;
            assert!((2.0..2.3).contains(&ratio));
        }
    }

    #[test]
    fn model_curve_matches_a_450mm_class_commercial() {
        // DJI Phantom 4 sits in the 450 mm sweep's weight range; the
        // model should agree within ~40 % (the paper's validation is
        // visual agreement on log-free axes).
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S1, CellCount::S3, CellCount::S6], 15);
        let phantom = commercial_drones()
            .into_iter()
            .find(|d| d.name == "DJI Phantom 4")
            .unwrap();
        let (inferred, model, rel) =
            validate_against_sweep(&phantom, &sweep).expect("weight in range");
        assert!(
            rel < 0.5,
            "inferred {inferred:.0} W vs model {model:.0} W (rel {rel:.2})"
        );
    }

    #[test]
    fn validation_rejects_absurd_weight_mismatch() {
        let sweep = WheelbaseSweep::run(100.0, &[CellCount::S1], 6);
        let matrice = commercial_drones()
            .into_iter()
            .find(|d| d.name == "DJI Matrice 600")
            .unwrap();
        // A 9.5 kg drone has no counterpart in a 100 mm sweep.
        assert!(validate_against_sweep(&matrice, &sweep).is_none());
    }
}
