//! Component sizing — Equations 1 and 2.
//!
//! `WeightTotal = F(4·W_motor, W_esc, W_battery, W_frame, W_propellers,
//! W_compute, W_sensors, W_wires)` and `MotorCurrent = G(WeightTotal,
//! TWR)`: the motor must lift the weight that includes itself, so sizing
//! iterates to a fixed point exactly as §3.2 describes ("if the
//! additional weights necessitate a new motor, we redo the previous
//! steps").

use drone_components::battery::{Battery, CellCount};
use drone_components::esc::{Esc, EscClass};
use drone_components::frame::Frame;
use drone_components::motor::Motor;
use drone_components::propeller::Propeller;
use drone_components::units::{Amps, Grams, MilliampHours, Millimeters, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Wiring/harness weight as a fraction of the electromechanical weight.
pub(crate) const WIRING_FRACTION: f64 = 0.04;

/// Input specification for a design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Frame wheelbase, mm.
    pub wheelbase_mm: f64,
    /// Battery cell configuration.
    pub cells: CellCount,
    /// Battery capacity.
    pub capacity: MilliampHours,
    /// Target thrust-to-weight ratio (paper sweeps use 2).
    pub twr: f64,
    /// On-board compute weight.
    pub compute_weight: Grams,
    /// On-board compute power.
    pub compute_power: Watts,
    /// Battery-powered sensor weight.
    pub sensors_weight: Grams,
    /// Battery-powered sensor power.
    pub sensors_power: Watts,
    /// Additional payload weight (self-powered sensors, cargo).
    pub payload_weight: Grams,
}

impl DesignSpec {
    /// A bare design: frame + battery + a small flight controller.
    pub fn new(wheelbase_mm: f64, cells: CellCount, capacity: MilliampHours) -> DesignSpec {
        DesignSpec {
            wheelbase_mm,
            cells,
            capacity,
            twr: drone_components::paper::PAPER_TWR,
            compute_weight: Grams(17.0), // Mateksys F405-class controller
            compute_power: Watts(1.0),
            sensors_weight: Grams(15.0), // GPS + receiver
            sensors_power: Watts(0.5),
            payload_weight: Grams(0.0),
        }
    }

    /// Sets the compute board power (weight scales with the paper's
    /// Table 4 trend: ≈4 g/W plus 10 g of carrier).
    pub fn with_compute_power(mut self, power: Watts) -> DesignSpec {
        self.compute_power = power;
        self.compute_weight = Grams(10.0 + 4.0 * power.0);
        self
    }

    /// Sets an explicit compute board.
    pub fn with_compute(mut self, weight: Grams, power: Watts) -> DesignSpec {
        self.compute_weight = weight;
        self.compute_power = power;
        self
    }

    /// Sets the target thrust-to-weight ratio.
    pub fn with_twr(mut self, twr: f64) -> DesignSpec {
        self.twr = twr;
        self
    }

    /// Adds battery-powered sensors.
    pub fn with_sensors(mut self, weight: Grams, power: Watts) -> DesignSpec {
        self.sensors_weight = weight;
        self.sensors_power = power;
        self
    }

    /// Adds dead payload (self-powered LiDAR, cargo).
    pub fn with_payload(mut self, weight: Grams) -> DesignSpec {
        self.payload_weight = weight;
        self
    }

    /// Basic weight: everything except battery, ESCs, motors and props
    /// (the Figure 9 x-axis).
    pub fn basic_weight(&self) -> Grams {
        Frame::from_model(Millimeters(self.wheelbase_mm)).weight
            + self.compute_weight
            + self.sensors_weight
            + self.payload_weight
    }

    /// Runs the Equation 1–2 fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] when the spec cannot fly: the sizing
    /// diverges (weight grows faster than thrust), the motors demand
    /// more current than the battery can discharge, or inputs are
    /// invalid.
    pub fn size(&self) -> Result<SizedDrone, DesignError> {
        if !(1.05..=10.0).contains(&self.twr) {
            return Err(DesignError::InvalidTwr(self.twr));
        }
        if self.wheelbase_mm < 30.0 || self.wheelbase_mm > 1500.0 {
            return Err(DesignError::InvalidWheelbase(self.wheelbase_mm));
        }
        let frame = Frame::from_model(Millimeters(self.wheelbase_mm));
        let propeller = Propeller::standard(frame.max_propeller_inches());
        // Sized packs get a 60C rating — the high-discharge family a
        // TWR-2 design would actually buy.
        let battery = Battery::from_model(self.cells, self.capacity, 60.0);
        let voltage = battery.nominal_voltage();

        // Fixed point: motors/ESCs must lift their own weight.
        let fixed = self.basic_weight() + battery.weight;
        let mut motor_esc_prop = Grams(0.0);
        let mut motor = None;
        let mut esc = None;
        for iteration in 0..32 {
            let wiring = (fixed + motor_esc_prop) * WIRING_FRACTION;
            let total = fixed + motor_esc_prop + wiring;
            let thrust_per_motor = total.weight_newtons() * self.twr / 4.0;
            let m = Motor::size_for(&propeller, voltage, thrust_per_motor);
            let e = Esc::from_model(EscClass::LongFlight, m.max_current);
            let new_mep = (m.weight + e.weight + propeller.weight) * 4.0;
            let converged = (new_mep - motor_esc_prop).0.abs() < 0.01;
            motor_esc_prop = new_mep;
            motor = Some(m);
            esc = Some(e);
            if converged {
                break;
            }
            if iteration == 31 || motor_esc_prop.0 > 100_000.0 {
                return Err(DesignError::SizingDiverged);
            }
        }
        let motor = motor.expect("at least one sizing iteration ran");
        let esc = esc.expect("at least one sizing iteration ran");
        let wiring = (fixed + motor_esc_prop) * WIRING_FRACTION;
        let total_weight = fixed + motor_esc_prop + wiring;

        // Feasibility: battery discharge limit must cover the max draw.
        let max_current = motor.max_current * 4.0;
        if battery.max_continuous_current() < max_current {
            return Err(DesignError::BatteryDischargeLimit {
                required: max_current,
                available: battery.max_continuous_current(),
            });
        }

        Ok(SizedDrone {
            spec: *self,
            frame,
            propeller,
            motor,
            esc,
            battery,
            wiring_weight: wiring,
            total_weight,
        })
    }
}

/// Why a design cannot be realized.
///
/// Carries only plain numbers so constructing one on the hot path never
/// allocates — a capacity sweep rejects thousands of corners, and the
/// old `InvalidParameter(String)` variant formatted a fresh `String`
/// for every one of them. The human-readable text renders lazily (and
/// identically to the old wire format) in `Display`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesignError {
    /// The thrust-to-weight target is outside the modelled 1.05–10 range.
    InvalidTwr(f64),
    /// The wheelbase is outside the modelled 30–1500 mm range.
    InvalidWheelbase(f64),
    /// The weight/thrust fixed point diverged (motors can't lift
    /// themselves at this TWR).
    SizingDiverged,
    /// The battery cannot supply the motors' maximum current.
    BatteryDischargeLimit {
        /// Current the four motors demand.
        required: Amps,
        /// Battery's safe continuous limit.
        available: Amps,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InvalidTwr(twr) => write!(f, "invalid design parameter: TWR {twr}"),
            DesignError::InvalidWheelbase(wheelbase) => {
                write!(f, "invalid design parameter: wheelbase {wheelbase} mm")
            }
            DesignError::SizingDiverged => f.write_str("sizing fixed point diverged"),
            DesignError::BatteryDischargeLimit {
                required,
                available,
            } => {
                write!(f, "battery supplies {available} but motors need {required}")
            }
        }
    }
}

impl std::error::Error for DesignError {}

/// A fully sized drone: every component selected, weights resolved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizedDrone {
    /// The input specification.
    pub spec: DesignSpec,
    /// Selected airframe.
    pub frame: Frame,
    /// Selected propeller (one of four).
    pub propeller: Propeller,
    /// Selected motor (one of four).
    pub motor: Motor,
    /// Selected ESC (one of four).
    pub esc: Esc,
    /// Selected battery.
    pub battery: Battery,
    /// Harness weight.
    pub wiring_weight: Grams,
    /// Take-off weight.
    pub total_weight: Grams,
}

impl SizedDrone {
    /// Supply voltage.
    pub fn voltage(&self) -> Volts {
        self.battery.nominal_voltage()
    }

    /// Maximum current draw per motor (the Figure 9 y-axis).
    pub fn max_motor_current(&self) -> Amps {
        self.motor.max_current
    }

    /// Maximum total propulsion current.
    pub fn max_total_current(&self) -> Amps {
        self.motor.max_current * 4.0
    }

    /// Achieved thrust-to-weight ratio (≥ the spec's target).
    pub fn thrust_to_weight(&self) -> f64 {
        let max_thrust = 4.0
            * self
                .motor
                .max_thrust_newtons(&self.propeller, self.voltage());
        max_thrust / self.total_weight.weight_newtons()
    }

    /// Non-propulsion electrical power (compute + sensors).
    pub fn avionics_power(&self) -> Watts {
        self.spec.compute_power + self.spec.sensors_power
    }

    /// Weight breakdown as `(label, grams)` pairs, heaviest first.
    pub fn weight_breakdown(&self) -> Vec<(&'static str, Grams)> {
        let mut items = vec![
            ("frame", self.frame.weight),
            ("battery", self.battery.weight),
            ("motors", self.motor.weight * 4.0),
            ("escs", self.esc.weight * 4.0),
            ("propellers", self.propeller.weight * 4.0),
            ("compute", self.spec.compute_weight),
            ("sensors", self.spec.sensors_weight),
            ("payload", self.spec.payload_weight),
            ("wiring", self.wiring_weight),
        ];
        items.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
        items
    }
}

impl fmt::Display for SizedDrone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mm / {} / {:.0} mAh: {} total, {:.0} Kv, {:.1} A/motor, TWR {:.2}",
            self.spec.wheelbase_mm,
            self.spec.cells,
            self.spec.capacity.0,
            self.total_weight,
            self.motor.kv_rpm_per_volt,
            self.max_motor_current().0,
            self.thrust_to_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_450() -> DesignSpec {
        DesignSpec::new(450.0, CellCount::S3, MilliampHours(3000.0))
    }

    #[test]
    fn sizes_the_papers_drone_class() {
        let drone = spec_450().size().expect("feasible");
        // The paper's 450 mm build is ~1.07 kg.
        assert!((800.0..1400.0).contains(&drone.total_weight.0), "{drone}");
        assert!(drone.thrust_to_weight() >= 1.95, "{drone}");
        // MT2213-class motors: hundreds of Kv on 3S.
        assert!(
            (500.0..1500.0).contains(&drone.motor.kv_rpm_per_volt),
            "{drone}"
        );
    }

    #[test]
    fn fixed_point_includes_motor_weight() {
        // Sizing must account for motors lifting themselves: the total
        // exceeds basic+battery by the electromechanical weight.
        let drone = spec_450().size().unwrap();
        let fixed = drone.spec.basic_weight() + drone.battery.weight;
        assert!(drone.total_weight.0 > fixed.0 + 50.0);
    }

    #[test]
    fn achieved_twr_close_to_target() {
        for twr in [2.0, 3.0, 4.0] {
            let drone = spec_450().with_twr(twr).size().expect("feasible");
            assert!(
                (drone.thrust_to_weight() - twr).abs() / twr < 0.05,
                "target {twr}, got {}",
                drone.thrust_to_weight()
            );
        }
    }

    #[test]
    fn higher_twr_needs_more_current() {
        let low = spec_450().with_twr(2.0).size().unwrap();
        let high = spec_450().with_twr(4.0).size().unwrap();
        assert!(high.max_motor_current() > low.max_motor_current() * 1.5);
    }

    #[test]
    fn heavier_payload_needs_more_current() {
        // Figure 9: current draw grows with basic weight.
        let base = spec_450().size().unwrap();
        let loaded = spec_450().with_payload(Grams(400.0)).size().unwrap();
        assert!(loaded.max_motor_current() > base.max_motor_current());
        assert!(loaded.total_weight.0 > base.total_weight.0 + 400.0);
    }

    #[test]
    fn higher_voltage_lowers_current_and_kv() {
        // Figure 9: more cells → lower per-motor current and lower Kv.
        let s3 = DesignSpec::new(450.0, CellCount::S3, MilliampHours(3000.0))
            .size()
            .unwrap();
        let s6 = DesignSpec::new(450.0, CellCount::S6, MilliampHours(3000.0))
            .size()
            .unwrap();
        assert!(s6.max_motor_current() < s3.max_motor_current());
        assert!(s6.motor.kv_rpm_per_volt < s3.motor.kv_rpm_per_volt);
    }

    #[test]
    fn small_frames_use_high_kv_motors() {
        // Figure 9a: 100 mm drones need tens of thousands of Kv on 1S.
        let micro = DesignSpec::new(100.0, CellCount::S1, MilliampHours(600.0))
            .size()
            .unwrap();
        assert!(micro.motor.kv_rpm_per_volt > 8000.0, "{micro}");
        assert!(micro.total_weight.0 < 400.0, "{micro}");
    }

    #[test]
    fn tiny_battery_rejects_big_motors() {
        // A 200 mAh pack cannot discharge fast enough for a 1 kg drone.
        let err = DesignSpec::new(450.0, CellCount::S3, MilliampHours(150.0))
            .with_payload(Grams(800.0))
            .size()
            .unwrap_err();
        assert!(
            matches!(err, DesignError::BatteryDischargeLimit { .. }),
            "{err}"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            spec_450().with_twr(0.5).size().unwrap_err(),
            DesignError::InvalidTwr(_)
        ));
        assert!(matches!(
            DesignSpec::new(10.0, CellCount::S1, MilliampHours(500.0))
                .size()
                .unwrap_err(),
            DesignError::InvalidWheelbase(_)
        ));
    }

    #[test]
    fn error_text_matches_the_legacy_wire_format() {
        // The typed variants must render byte-identically to the old
        // `InvalidParameter(String)` texts: serving-layer replies and
        // logs key off these strings.
        assert_eq!(
            spec_450().with_twr(0.5).size().unwrap_err().to_string(),
            "invalid design parameter: TWR 0.5"
        );
        assert_eq!(
            DesignSpec::new(10.0, CellCount::S1, MilliampHours(500.0))
                .size()
                .unwrap_err()
                .to_string(),
            "invalid design parameter: wheelbase 10 mm"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let drone = spec_450().size().unwrap();
        let sum: f64 = drone.weight_breakdown().iter().map(|(_, w)| w.0).sum();
        assert!((sum - drone.total_weight.0).abs() < 1e-9);
        // Heaviest-first ordering.
        let weights: Vec<f64> = drone.weight_breakdown().iter().map(|(_, w)| w.0).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn display_is_informative() {
        let s = spec_450().size().unwrap().to_string();
        assert!(s.contains("450"), "{s}");
        assert!(s.contains("3S"), "{s}");
    }
}
