//! Power and flight-time modelling — Equations 3 through 7.
//!
//! `PowerAvg = H(MotorCurrent·BattV, %FlyingLoad, P_compute, P_sensors)`
//! (Eq. 3), `BattCapacity = M(LiPoCapacity, %PowerEff, %LiPoDrainLimit)`
//! (Eq. 4), `FlightTime = N(BattCapacity, PowerAvg)` (Eq. 5),
//! `%PowerComputation = X(PowerAvg, PowerCompute)` (Eq. 6) and
//! `+FlightTimeCompute = Z(%PowerComputation, FlightTime)` (Eq. 7).

use crate::design::SizedDrone;
use drone_components::battery::LIPO_DRAIN_LIMIT;
use drone_components::units::{Minutes, WattHours, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Flying activity level, expressed as the paper does: a fraction of the
/// maximum motor current draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlyingLoad {
    /// Low-load hovering: 20–30 % of max draw (§3.2). We use the top of
    /// the band, which matches the physics of hovering at TWR 2
    /// (current fraction ≈ (1/TWR)^1.5 ≈ 0.35 of the design point,
    /// ≈ 0.31 of the 15 %-margined motor rating).
    Hover,
    /// Maneuvering: 60–70 % of max draw.
    Maneuver,
    /// An explicit fraction of max draw in `(0, 1]`.
    Custom(f64),
}

impl FlyingLoad {
    /// The fraction of maximum current this load draws.
    ///
    /// # Panics
    ///
    /// Panics for a `Custom` fraction outside `(0, 1]`.
    pub fn fraction(self) -> f64 {
        match self {
            FlyingLoad::Hover => 0.30,
            FlyingLoad::Maneuver => 0.65,
            FlyingLoad::Custom(f) => {
                assert!(f > 0.0 && f <= 1.0, "load fraction {f} out of range");
                f
            }
        }
    }
}

/// The paper's power-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Overall power-train efficiency (`%PowerEff` in Eq. 4): ESC
    /// switching losses, voltage sag, connector/wiring resistance.
    pub power_efficiency: f64,
    /// Usable battery fraction (`LiPoDrainLimit`): 85 %.
    pub drain_limit: f64,
}

impl PowerModel {
    /// The constants used for the Figure 10 sweeps.
    pub fn paper_defaults() -> PowerModel {
        PowerModel {
            power_efficiency: 0.78,
            drain_limit: LIPO_DRAIN_LIMIT,
        }
    }

    /// Equation 3: average electrical power at a flying load.
    pub fn average_power(&self, drone: &SizedDrone, load: FlyingLoad) -> PowerBreakdown {
        let propulsion = drone
            .voltage()
            .power(drone.max_total_current() * load.fraction());
        PowerBreakdown {
            propulsion,
            compute: drone.spec.compute_power,
            sensors: drone.spec.sensors_power,
        }
    }

    /// Equation 4: usable battery energy after drain limit and
    /// power-train efficiency.
    pub fn usable_energy(&self, drone: &SizedDrone) -> WattHours {
        WattHours(drone.battery.stored_energy().0 * self.drain_limit * self.power_efficiency)
    }

    /// Equation 5: flight time at a flying load.
    pub fn flight_time(&self, drone: &SizedDrone, load: FlyingLoad) -> Minutes {
        self.usable_energy(drone)
            .duration_at(self.average_power(drone, load).total())
    }

    /// Equation 6: computation share of total power at a flying load.
    pub fn compute_share(&self, drone: &SizedDrone, load: FlyingLoad) -> f64 {
        let breakdown = self.average_power(drone, load);
        breakdown.compute.0 / breakdown.total().0
    }

    /// Equation 7: flight time gained by eliminating `saved` watts of
    /// computation at the given flying load (first-order exact: the new
    /// flight time is computed, not linearized).
    pub fn gained_flight_time(
        &self,
        drone: &SizedDrone,
        load: FlyingLoad,
        saved: Watts,
    ) -> Minutes {
        let breakdown = self.average_power(drone, load);
        let before = self.usable_energy(drone).duration_at(breakdown.total());
        let new_total = Watts((breakdown.total().0 - saved.0).max(0.1));
        let after = self.usable_energy(drone).duration_at(new_total);
        after - before
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::paper_defaults()
    }
}

/// Where the power goes at a given activity level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Motor + ESC draw.
    pub propulsion: Watts,
    /// Computation draw.
    pub compute: Watts,
    /// Sensor draw.
    pub sensors: Watts,
}

impl PowerBreakdown {
    /// Total electrical power.
    pub fn total(&self) -> Watts {
        self.propulsion + self.compute + self.sensors
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} total ({} propulsion, {} compute, {} sensors)",
            self.total(),
            self.propulsion,
            self.compute,
            self.sensors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignSpec;
    use drone_components::battery::CellCount;
    use drone_components::units::MilliampHours;

    fn drone_450() -> SizedDrone {
        DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
            .with_compute_power(Watts(3.0))
            .size()
            .expect("feasible")
    }

    #[test]
    fn hover_power_matches_the_papers_drone() {
        // The paper's 450 mm drone averages ~130 W in gentle flight
        // (Figure 16b).
        let drone = drone_450();
        let p = PowerModel::paper_defaults().average_power(&drone, FlyingLoad::Hover);
        assert!((70.0..200.0).contains(&p.total().0), "{p}");
    }

    #[test]
    fn maneuvering_draws_roughly_double_hover() {
        let drone = drone_450();
        let model = PowerModel::paper_defaults();
        let hover = model.average_power(&drone, FlyingLoad::Hover).total();
        let maneuver = model.average_power(&drone, FlyingLoad::Maneuver).total();
        let ratio = maneuver.0 / hover.0;
        assert!((1.7..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flight_time_in_commercial_range() {
        // Mid-size drones fly ~10–30 minutes.
        let drone = drone_450();
        let ft = PowerModel::paper_defaults().flight_time(&drone, FlyingLoad::Hover);
        assert!((8.0..35.0).contains(&ft.0), "flight time {ft}");
    }

    #[test]
    fn compute_share_is_small_for_3w() {
        // §3.2: "the 3 W chips have less than 5 % contribution".
        let drone = drone_450();
        let share = PowerModel::paper_defaults().compute_share(&drone, FlyingLoad::Hover);
        assert!(share < 0.05, "share {share}");
    }

    #[test]
    fn compute_share_drops_when_maneuvering() {
        let drone = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
            .with_compute_power(Watts(20.0))
            .size()
            .unwrap();
        let model = PowerModel::paper_defaults();
        let hover = model.compute_share(&drone, FlyingLoad::Hover);
        let maneuver = model.compute_share(&drone, FlyingLoad::Maneuver);
        assert!(maneuver < hover, "hover {hover} vs maneuver {maneuver}");
    }

    #[test]
    fn gained_time_positive_for_savings() {
        let drone = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
            .with_compute_power(Watts(20.0))
            .size()
            .unwrap();
        let model = PowerModel::paper_defaults();
        let gained = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(10.0));
        assert!(gained.0 > 0.5, "gained {gained}");
        // Saving nothing gains nothing.
        let zero = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(0.0));
        assert!(zero.0.abs() < 1e-9);
        // Negative savings (adding load) costs time.
        let lost = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(-10.0));
        assert!(lost.0 < 0.0);
    }

    #[test]
    fn equations_compose_consistently() {
        // FlightTime × PowerAvg == usable energy (Eq. 4/5 consistency).
        let drone = drone_450();
        let model = PowerModel::paper_defaults();
        let p = model.average_power(&drone, FlyingLoad::Hover).total();
        let ft = model.flight_time(&drone, FlyingLoad::Hover);
        let energy = model.usable_energy(&drone);
        assert!((ft.0 / 60.0 * p.0 - energy.0).abs() < 1e-9);
    }

    #[test]
    fn load_fractions() {
        assert!((FlyingLoad::Hover.fraction() - 0.30).abs() < 1e-12);
        assert!((FlyingLoad::Maneuver.fraction() - 0.65).abs() < 1e-12);
        assert!((FlyingLoad::Custom(0.5).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_custom_load_panics() {
        let _ = FlyingLoad::Custom(1.5).fraction();
    }
}
