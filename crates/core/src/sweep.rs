//! Design-space sweeps — Figure 10.
//!
//! Per wheelbase (100 / 450 / 800 mm in the paper), sweep battery
//! capacity 1000–8000 mAh across cell configurations and record total
//! power vs take-off weight (Figures 10a–c) and the computation power
//! share for 3 W and 20 W chips at hover and maneuver (Figures 10d–f).

use crate::eval::{evaluate_many, DesignQuery};
use drone_components::battery::CellCount;
use drone_components::units::Minutes;
use serde::{Deserialize, Serialize};

/// One Figure 10a–c point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Battery cells.
    pub cells: CellCount,
    /// Battery capacity, mAh.
    pub capacity_mah: f64,
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Average hover power, W.
    pub hover_power_w: f64,
    /// Hover flight time, min.
    pub flight_time_min: f64,
}

/// One Figure 10d–f point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintPoint {
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Compute share with a 3 W chip while hovering.
    pub basic_hover: f64,
    /// Compute share with a 3 W chip while maneuvering.
    pub basic_maneuver: f64,
    /// Compute share with a 20 W chip while hovering.
    pub advanced_hover: f64,
    /// Compute share with a 20 W chip while maneuvering.
    pub advanced_maneuver: f64,
}

/// The sweep over one wheelbase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WheelbaseSweep {
    /// Wheelbase, mm.
    pub wheelbase_mm: f64,
    /// Power/weight curve points grouped by cell count (Figure 10a–c).
    pub points: Vec<SweepPoint>,
    /// Compute-footprint points (Figure 10d–f).
    pub footprint: Vec<FootprintPoint>,
}

impl WheelbaseSweep {
    /// Runs the sweep: capacities 1000–8000 mAh in `steps` steps across
    /// the given cell configurations (the paper plots 1S/3S/6S).
    ///
    /// Infeasible corners (battery can't discharge fast enough, sizing
    /// diverges) are skipped, exactly as the paper's plots leave gaps.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`.
    pub fn run(wheelbase_mm: f64, cells: &[CellCount], steps: usize) -> WheelbaseSweep {
        assert!(steps >= 2, "need at least two sweep steps");
        // One batched kernel call for the whole sweep: both chip
        // variants of every corner, interleaved (3 W at 2j, 20 W at
        // 2j+1). The single-wheelbase batch hoists the frame/propeller
        // geometry once for all `cells × steps × 2` points.
        let mut corners: Vec<(CellCount, f64)> = Vec::with_capacity(cells.len() * steps);
        let mut queries: Vec<DesignQuery> = Vec::with_capacity(cells.len() * steps * 2);
        for &cell in cells {
            for i in 0..steps {
                let capacity = 1000.0 + (8000.0 - 1000.0) * i as f64 / (steps - 1) as f64;
                let query = DesignQuery::new(wheelbase_mm, cell, capacity);
                corners.push((cell, capacity));
                queries.push(query.with_compute_power(3.0));
                queries.push(query.with_compute_power(20.0));
            }
        }
        let results = evaluate_many(&queries);
        let mut points = Vec::new();
        let mut footprint = Vec::new();
        for (j, &(cell, capacity)) in corners.iter().enumerate() {
            // Both chips must size before either vector grows: a corner
            // where only one sizes would otherwise desynchronize
            // `points` and `footprint`.
            let (Ok(basic), Ok(advanced)) = (&results[2 * j], &results[2 * j + 1]) else {
                continue;
            };
            points.push(SweepPoint {
                cells: cell,
                capacity_mah: capacity,
                weight_g: basic.weight_g,
                hover_power_w: basic.hover_power_w,
                flight_time_min: basic.flight_time_min,
            });
            footprint.push(FootprintPoint {
                weight_g: basic.weight_g,
                basic_hover: basic.compute_share_hover,
                basic_maneuver: basic.compute_share_maneuver,
                advanced_hover: advanced.compute_share_hover,
                advanced_maneuver: advanced.compute_share_maneuver,
            });
        }
        points.sort_by(|a, b| a.weight_g.total_cmp(&b.weight_g));
        footprint.sort_by(|a, b| a.weight_g.total_cmp(&b.weight_g));
        WheelbaseSweep {
            wheelbase_mm,
            points,
            footprint,
        }
    }

    /// The paper's three wheelbases with 1S/3S/6S batteries.
    pub fn paper_figure10() -> Vec<WheelbaseSweep> {
        let cells = [CellCount::S1, CellCount::S3, CellCount::S6];
        [100.0, 450.0, 800.0]
            .into_iter()
            .map(|wb| WheelbaseSweep::run(wb, &cells, 15))
            .collect()
    }

    /// The best (longest-hover) configuration in the sweep.
    pub fn best_configuration(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.flight_time_min.total_cmp(&b.flight_time_min))
    }

    /// Best flight time, if any design was feasible.
    pub fn best_flight_time(&self) -> Option<Minutes> {
        self.best_configuration()
            .map(|p| Minutes(p.flight_time_min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    #[test]
    fn sweep_produces_points() {
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 8);
        assert!(sweep.points.len() >= 6, "{} points", sweep.points.len());
        assert_eq!(sweep.points.len(), sweep.footprint.len());
    }

    #[test]
    fn points_and_footprint_stay_in_lockstep_when_20w_resize_fails() {
        // Regression: tiny 1S frames size fine with a 3 W chip but trip
        // the battery discharge limit once the 20 W chip's 90 g board is
        // added. The old loop kept the basic point and `continue`d past
        // the footprint row, desynchronizing the two vectors.
        let basic = evaluate(&DesignQuery::new(60.0, CellCount::S1, 1000.0));
        let advanced =
            evaluate(&DesignQuery::new(60.0, CellCount::S1, 1000.0).with_compute_power(20.0));
        assert!(basic.is_ok(), "scenario needs a feasible 3 W point");
        assert!(
            advanced.is_err(),
            "scenario needs an infeasible 20 W re-size"
        );

        let sweep = WheelbaseSweep::run(60.0, &[CellCount::S1], 8);
        assert_eq!(sweep.points.len(), sweep.footprint.len());
        assert!(
            !sweep.points.is_empty(),
            "some corners are feasible for both chips"
        );
        for (p, fp) in sweep.points.iter().zip(&sweep.footprint) {
            assert_eq!(
                p.weight_g, fp.weight_g,
                "rows must describe the same design"
            );
        }
    }

    #[test]
    fn power_grows_with_weight() {
        // Figure 10a–c: the power/weight curve rises.
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 10);
        let first = &sweep.points[0];
        let last = &sweep.points[sweep.points.len() - 1];
        assert!(last.weight_g > first.weight_g);
        assert!(last.hover_power_w > first.hover_power_w);
    }

    #[test]
    fn best_flight_times_match_paper_validation() {
        // §3.2: best configurations fly ~23 / 19 / 22 minutes for
        // 100 / 450 / 800 mm. Allow a generous band — we validate the
        // shape, not the authors' exact component catalog.
        // Our component catalog admits endurance-oriented 6S configs
        // the paper's best-config search apparently did not, so the
        // upper band is generous; EXPERIMENTS.md records the exact
        // model-vs-paper numbers.
        for (wb, expected) in [(100.0, 23.0), (450.0, 19.0), (800.0, 22.0)] {
            let sweep = WheelbaseSweep::run(wb, &[CellCount::S1, CellCount::S3, CellCount::S6], 10);
            let best = sweep.best_flight_time().expect("feasible designs exist").0;
            assert!(
                (expected - 12.0..=expected + 25.0).contains(&best),
                "{wb} mm: best {best:.1} min vs paper {expected}"
            );
        }
    }

    #[test]
    fn compute_share_ranges_match_section32() {
        // §3.2: 3 W < 5 %; 20 W drops toward ~10 % when maneuvering;
        // overall range 2–30 %.
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 10);
        for p in &sweep.footprint {
            assert!(p.basic_hover < 0.08, "3 W hover share {}", p.basic_hover);
            assert!(p.advanced_hover > p.advanced_maneuver);
            assert!(p.advanced_hover < 0.35);
            assert!(p.basic_maneuver < p.basic_hover);
        }
    }

    #[test]
    fn heavier_drones_have_smaller_compute_share() {
        let sweep = WheelbaseSweep::run(800.0, &[CellCount::S6], 10);
        let first = &sweep.footprint[0];
        let last = &sweep.footprint[sweep.footprint.len() - 1];
        assert!(last.advanced_hover < first.advanced_hover);
    }

    #[test]
    fn paper_figure10_covers_three_wheelbases() {
        let sweeps = WheelbaseSweep::paper_figure10();
        assert_eq!(sweeps.len(), 3);
        assert!(sweeps.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least two sweep steps")]
    fn one_step_panics() {
        let _ = WheelbaseSweep::run(450.0, &[CellCount::S3], 1);
    }
}
