//! Design-space sweeps — Figure 10.
//!
//! Per wheelbase (100 / 450 / 800 mm in the paper), sweep battery
//! capacity 1000–8000 mAh across cell configurations and record total
//! power vs take-off weight (Figures 10a–c) and the computation power
//! share for 3 W and 20 W chips at hover and maneuver (Figures 10d–f).

use crate::design::DesignSpec;
use crate::power::{FlyingLoad, PowerModel};
use drone_components::battery::CellCount;
use drone_components::units::{MilliampHours, Minutes, Watts};
use serde::{Deserialize, Serialize};

/// One Figure 10a–c point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Battery cells.
    pub cells: CellCount,
    /// Battery capacity, mAh.
    pub capacity_mah: f64,
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Average hover power, W.
    pub hover_power_w: f64,
    /// Hover flight time, min.
    pub flight_time_min: f64,
}

/// One Figure 10d–f point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintPoint {
    /// Take-off weight, g.
    pub weight_g: f64,
    /// Compute share with a 3 W chip while hovering.
    pub basic_hover: f64,
    /// Compute share with a 3 W chip while maneuvering.
    pub basic_maneuver: f64,
    /// Compute share with a 20 W chip while hovering.
    pub advanced_hover: f64,
    /// Compute share with a 20 W chip while maneuvering.
    pub advanced_maneuver: f64,
}

/// The sweep over one wheelbase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WheelbaseSweep {
    /// Wheelbase, mm.
    pub wheelbase_mm: f64,
    /// Power/weight curve points grouped by cell count (Figure 10a–c).
    pub points: Vec<SweepPoint>,
    /// Compute-footprint points (Figure 10d–f).
    pub footprint: Vec<FootprintPoint>,
}

impl WheelbaseSweep {
    /// Runs the sweep: capacities 1000–8000 mAh in `steps` steps across
    /// the given cell configurations (the paper plots 1S/3S/6S).
    ///
    /// Infeasible corners (battery can't discharge fast enough, sizing
    /// diverges) are skipped, exactly as the paper's plots leave gaps.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`.
    pub fn run(wheelbase_mm: f64, cells: &[CellCount], steps: usize) -> WheelbaseSweep {
        assert!(steps >= 2, "need at least two sweep steps");
        let model = PowerModel::paper_defaults();
        let mut points = Vec::new();
        let mut footprint = Vec::new();
        for &cell in cells {
            for i in 0..steps {
                let capacity = 1000.0 + (8000.0 - 1000.0) * i as f64 / (steps - 1) as f64;
                let spec = DesignSpec::new(wheelbase_mm, cell, MilliampHours(capacity))
                    .with_compute_power(Watts(3.0));
                let Ok(drone) = spec.size() else { continue };
                let hover = model.average_power(&drone, FlyingLoad::Hover);
                points.push(SweepPoint {
                    cells: cell,
                    capacity_mah: capacity,
                    weight_g: drone.total_weight.0,
                    hover_power_w: hover.total().0,
                    flight_time_min: model.flight_time(&drone, FlyingLoad::Hover).0,
                });
                // Footprint: re-size with the 20 W chip for its share.
                let Ok(advanced) = DesignSpec::new(wheelbase_mm, cell, MilliampHours(capacity))
                    .with_compute_power(Watts(20.0))
                    .size()
                else {
                    continue;
                };
                footprint.push(FootprintPoint {
                    weight_g: drone.total_weight.0,
                    basic_hover: model.compute_share(&drone, FlyingLoad::Hover),
                    basic_maneuver: model.compute_share(&drone, FlyingLoad::Maneuver),
                    advanced_hover: model.compute_share(&advanced, FlyingLoad::Hover),
                    advanced_maneuver: model.compute_share(&advanced, FlyingLoad::Maneuver),
                });
            }
        }
        points.sort_by(|a, b| a.weight_g.partial_cmp(&b.weight_g).expect("finite"));
        footprint.sort_by(|a, b| a.weight_g.partial_cmp(&b.weight_g).expect("finite"));
        WheelbaseSweep {
            wheelbase_mm,
            points,
            footprint,
        }
    }

    /// The paper's three wheelbases with 1S/3S/6S batteries.
    pub fn paper_figure10() -> Vec<WheelbaseSweep> {
        let cells = [CellCount::S1, CellCount::S3, CellCount::S6];
        [100.0, 450.0, 800.0]
            .into_iter()
            .map(|wb| WheelbaseSweep::run(wb, &cells, 15))
            .collect()
    }

    /// The best (longest-hover) configuration in the sweep.
    pub fn best_configuration(&self) -> Option<&SweepPoint> {
        self.points.iter().max_by(|a, b| {
            a.flight_time_min
                .partial_cmp(&b.flight_time_min)
                .expect("finite")
        })
    }

    /// Best flight time, if any design was feasible.
    pub fn best_flight_time(&self) -> Option<Minutes> {
        self.best_configuration()
            .map(|p| Minutes(p.flight_time_min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points() {
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 8);
        assert!(sweep.points.len() >= 6, "{} points", sweep.points.len());
        assert_eq!(sweep.points.len(), sweep.footprint.len());
    }

    #[test]
    fn power_grows_with_weight() {
        // Figure 10a–c: the power/weight curve rises.
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 10);
        let first = &sweep.points[0];
        let last = &sweep.points[sweep.points.len() - 1];
        assert!(last.weight_g > first.weight_g);
        assert!(last.hover_power_w > first.hover_power_w);
    }

    #[test]
    fn best_flight_times_match_paper_validation() {
        // §3.2: best configurations fly ~23 / 19 / 22 minutes for
        // 100 / 450 / 800 mm. Allow a generous band — we validate the
        // shape, not the authors' exact component catalog.
        // Our component catalog admits endurance-oriented 6S configs
        // the paper's best-config search apparently did not, so the
        // upper band is generous; EXPERIMENTS.md records the exact
        // model-vs-paper numbers.
        for (wb, expected) in [(100.0, 23.0), (450.0, 19.0), (800.0, 22.0)] {
            let sweep = WheelbaseSweep::run(wb, &[CellCount::S1, CellCount::S3, CellCount::S6], 10);
            let best = sweep.best_flight_time().expect("feasible designs exist").0;
            assert!(
                (expected - 12.0..=expected + 25.0).contains(&best),
                "{wb} mm: best {best:.1} min vs paper {expected}"
            );
        }
    }

    #[test]
    fn compute_share_ranges_match_section32() {
        // §3.2: 3 W < 5 %; 20 W drops toward ~10 % when maneuvering;
        // overall range 2–30 %.
        let sweep = WheelbaseSweep::run(450.0, &[CellCount::S3], 10);
        for p in &sweep.footprint {
            assert!(p.basic_hover < 0.08, "3 W hover share {}", p.basic_hover);
            assert!(p.advanced_hover > p.advanced_maneuver);
            assert!(p.advanced_hover < 0.35);
            assert!(p.basic_maneuver < p.basic_hover);
        }
    }

    #[test]
    fn heavier_drones_have_smaller_compute_share() {
        let sweep = WheelbaseSweep::run(800.0, &[CellCount::S6], 10);
        let first = &sweep.footprint[0];
        let last = &sweep.footprint[sweep.footprint.len() - 1];
        assert!(last.advanced_hover < first.advanced_hover);
    }

    #[test]
    fn paper_figure10_covers_three_wheelbases() {
        let sweeps = WheelbaseSweep::paper_figure10();
        assert_eq!(sweeps.len(), 3);
        assert!(sweeps.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least two sweep steps")]
    fn one_step_panics() {
        let _ = WheelbaseSweep::run(450.0, &[CellCount::S3], 1);
    }
}
