//! Property tests pinning the batched kernel's one non-negotiable
//! contract: `evaluate_many` is *bit-exactly* the per-point `evaluate`
//! loop — same `Ok` outputs down to the last mantissa bit, same typed
//! errors, over batches that mix every outcome class the kernel can
//! produce (feasible, invalid-TWR, invalid-wheelbase, diverging,
//! discharge-limited).

use drone_components::battery::CellCount;
use drone_dse::eval::{evaluate, evaluate_many, DesignQuery};
use proptest::prelude::*;

/// A random cell configuration across the full modelled range.
fn cells() -> impl Strategy<Value = CellCount> {
    (0usize..6).prop_map(|i| CellCount::ALL[i])
}

/// A random query whose parameters straddle the kernel's envelope:
/// wheelbases and TWRs both inside and outside the valid range, tiny
/// batteries that trip the discharge limit, heavy payloads and hungry
/// compute boards that push the sizing fixed point toward divergence.
fn query() -> impl Strategy<Value = DesignQuery> {
    (
        20.0f64..1600.0, // spills past the 30–1500 mm envelope
        cells(),
        200.0f64..9000.0, // small capacities hit the discharge gate
        0.5f64..60.0,     // compute board, W
        0.5f64..11.0,     // spills past the 1.05–10 TWR envelope
        0.0f64..1500.0,   // payload, g — large values diverge sizing
    )
        .prop_map(
            |(wheelbase_mm, cells, capacity_mah, compute, twr, payload)| {
                DesignQuery::new(wheelbase_mm, cells, capacity_mah)
                    .with_compute_power(compute)
                    .with_twr(twr)
                    .with_payload(payload)
            },
        )
}

fn batches() -> impl Strategy<Value = Vec<DesignQuery>> {
    prop::collection::vec(query(), 0..48)
}

/// Exact comparison: `Ok` fields by `to_bits`, errors by value.
fn assert_bit_identical(
    scalar: &Result<drone_dse::eval::DesignEval, drone_dse::design::DesignError>,
    batched: &Result<drone_dse::eval::DesignEval, drone_dse::design::DesignError>,
    i: usize,
) -> Result<(), proptest::test_runner::CaseError> {
    match (scalar, batched) {
        (Ok(s), Ok(b)) => {
            for (name, sv, bv) in [
                ("weight_g", s.weight_g, b.weight_g),
                ("hover_power_w", s.hover_power_w, b.hover_power_w),
                ("maneuver_power_w", s.maneuver_power_w, b.maneuver_power_w),
                ("flight_time_min", s.flight_time_min, b.flight_time_min),
                (
                    "compute_share_hover",
                    s.compute_share_hover,
                    b.compute_share_hover,
                ),
                (
                    "compute_share_maneuver",
                    s.compute_share_maneuver,
                    b.compute_share_maneuver,
                ),
            ] {
                prop_assert_eq!(
                    sv.to_bits(),
                    bv.to_bits(),
                    "point {}: {} differs — scalar {:?} vs batched {:?}",
                    i,
                    name,
                    sv,
                    bv
                );
            }
        }
        (s, b) => prop_assert_eq!(s, b, "point {}: outcome class differs", i),
    }
    Ok(())
}

proptest! {
    #[test]
    fn batched_kernel_is_bit_identical_to_the_scalar_loop(batch in batches()) {
        let batched = evaluate_many(&batch);
        prop_assert_eq!(batched.len(), batch.len());
        for (i, q) in batch.iter().enumerate() {
            assert_bit_identical(&evaluate(q), &batched[i], i)?;
        }
    }

    #[test]
    fn batch_results_do_not_depend_on_batchmates(batch in batches()) {
        // Splitting a batch anywhere — including singleton batches —
        // must not change a single bit: lanes are independent, and the
        // hoisted tables only cache what each point would compute.
        let whole = evaluate_many(&batch);
        let mid = batch.len() / 2;
        let mut split = evaluate_many(&batch[..mid]);
        split.extend(evaluate_many(&batch[mid..]));
        for (i, (w, s)) in whole.iter().zip(&split).enumerate() {
            assert_bit_identical(w, s, i)?;
        }
        for (i, q) in batch.iter().enumerate() {
            let singleton = evaluate_many(std::slice::from_ref(q));
            assert_bit_identical(&whole[i], &singleton[0], i)?;
        }
    }

    #[test]
    fn duplicate_points_get_duplicate_answers(q in query(), copies in 2usize..6) {
        // The wheelbase-keyed table must serve repeated points the same
        // answer it serves the first occurrence.
        let batch = vec![q; copies];
        let results = evaluate_many(&batch);
        for i in 1..copies {
            assert_bit_identical(&results[0], &results[i], i)?;
        }
    }
}
