//! Pins the kernel's allocation behaviour with a counting global
//! allocator: the scalar `evaluate` performs **zero** heap allocations
//! on every outcome class (the old string-carrying `DesignError` and
//! the redundant `DesignSpec` clone are gone), and the batched
//! `evaluate_many` allocates O(lanes + unique wheelbases), not
//! O(points) — the struct-of-arrays buffers amortize across the batch.

use drone_components::battery::CellCount;
use drone_dse::eval::{evaluate, evaluate_many, DesignQuery};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// One point per outcome class the kernel can produce.
fn class_representatives() -> [(&'static str, DesignQuery); 5] {
    [
        ("feasible", DesignQuery::new(450.0, CellCount::S3, 4000.0)),
        (
            "invalid twr",
            DesignQuery::new(450.0, CellCount::S3, 4000.0).with_twr(0.5),
        ),
        (
            "invalid wheelbase",
            DesignQuery::new(10.0, CellCount::S3, 4000.0),
        ),
        (
            "diverged",
            DesignQuery::new(1500.0, CellCount::S1, 8000.0)
                .with_twr(10.0)
                .with_payload(100_000.0),
        ),
        (
            "discharge limited",
            DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(800.0),
        ),
    ]
}

// A single test body: the counter is process-global and the test
// harness runs sibling tests on concurrent threads, so splitting these
// cases into separate `#[test]`s would race the deltas.
#[test]
fn kernel_allocation_budget() {
    let reps = class_representatives();

    // Warm up once: lazy runtime one-time costs (TLS, panic machinery)
    // must not be billed to the kernel.
    for (_, q) in &reps {
        let _ = evaluate(q);
    }
    let warm_batch: Vec<DesignQuery> = (0..64)
        .map(|i| DesignQuery::new(100.0 + i as f64, CellCount::S3, 4000.0))
        .collect();
    let _ = evaluate_many(&warm_batch);

    // Scalar evaluate: zero heap traffic on every outcome class.
    for (class, q) in &reps {
        let delta = allocations_during(|| {
            for _ in 0..100 {
                let _ = std::hint::black_box(evaluate(std::hint::black_box(q)));
            }
        });
        assert_eq!(
            delta, 0,
            "{class}: scalar evaluate allocated {delta} times in 100 calls"
        );
    }

    // Batched evaluate_many: the SoA lanes and the wheelbase table are
    // the only buffers, so a 512-point batch over 8 unique wheelbases
    // must allocate far fewer than once per point.
    let batch: Vec<DesignQuery> = (0..512)
        .map(|i| {
            DesignQuery::new(
                100.0 + (i % 8) as f64 * 100.0,
                CellCount::ALL[i % 6],
                1000.0 + (i % 16) as f64 * 400.0,
            )
        })
        .collect();
    let delta = allocations_during(|| {
        let _ = std::hint::black_box(evaluate_many(std::hint::black_box(&batch)));
    });
    assert!(
        delta < batch.len() as u64,
        "batched path allocated {delta} times for {} points — lanes are \
         supposed to amortize, not allocate per point",
        batch.len()
    );
    assert!(
        delta > 0,
        "counter wired up (the batch buffers do allocate)"
    );
}
