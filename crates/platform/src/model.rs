//! Compute-platform models for SLAM offload (paper §5.2, Table 5).
//!
//! The paper evaluates four execution targets for ORB-SLAM: the RPi 4
//! baseline, an Nvidia Jetson TX2, a ZYNQ XC7Z020 FPGA (Vivado HLS
//! implementation accelerating bundle adjustment, plus the eSLAM
//! feature-extraction design), and the Navion ASIC. Each reduces to
//! per-stage speedups plus power/weight/cost overheads.

use drone_components::units::{Grams, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad class of a compute platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// General-purpose embedded CPU (the RPi-class baseline).
    EmbeddedCpu,
    /// Embedded GPU system (Jetson-class).
    EmbeddedGpu,
    /// FPGA fabric with a tailored microarchitecture.
    Fpga,
    /// Fixed-function ASIC.
    Asic,
}

/// Qualitative cost level (Table 5's integration/fabrication rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CostLevel {
    /// Off-the-shelf.
    Low,
    /// Requires HDL/HLS engineering.
    Medium,
    /// Requires chip fabrication.
    High,
}

impl fmt::Display for CostLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CostLevel::Low => "low",
            CostLevel::Medium => "medium",
            CostLevel::High => "high",
        })
    }
}

/// Per-SLAM-stage speedups over the RPi baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSpeedups {
    /// Feature extraction + matching.
    pub feature_extraction: f64,
    /// Local bundle adjustment.
    pub local_ba: f64,
    /// Global bundle adjustment.
    pub global_ba: f64,
}

impl StageSpeedups {
    /// Uniform speedup across stages.
    pub fn uniform(factor: f64) -> StageSpeedups {
        StageSpeedups {
            feature_extraction: factor,
            local_ba: factor,
            global_ba: factor,
        }
    }
}

/// A SLAM execution platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Product/implementation name.
    pub name: String,
    /// Platform class.
    pub kind: PlatformKind,
    /// Per-stage speedups over the RPi baseline.
    pub speedups: StageSpeedups,
    /// Power drawn while running SLAM.
    pub power: Watts,
    /// Weight added to the airframe.
    pub weight: Grams,
    /// Integration (board/bring-up) cost.
    pub integration_cost: CostLevel,
    /// Fabrication cost.
    pub fabrication_cost: CostLevel,
}

impl Platform {
    /// The paper's baseline: ORB-SLAM on a dedicated Raspberry Pi 4
    /// (≈2 W SLAM power overhead, ≈50 g).
    pub fn raspberry_pi4() -> Platform {
        Platform {
            name: "RPi".to_owned(),
            kind: PlatformKind::EmbeddedCpu,
            speedups: StageSpeedups::uniform(1.0),
            power: Watts(2.0),
            weight: Grams(50.0),
            integration_cost: CostLevel::Low,
            fabrication_cost: CostLevel::Low,
        }
    }

    /// Nvidia Jetson TX2: the GPU pays off on data-parallel feature
    /// extraction but only ~2× on the irregular bundle adjustments —
    /// overall 2.16× (Figure 17 GMean) at 10 W / 85 g.
    pub fn jetson_tx2() -> Platform {
        Platform {
            name: "TX2".to_owned(),
            kind: PlatformKind::EmbeddedGpu,
            speedups: StageSpeedups {
                feature_extraction: 5.0,
                local_ba: 2.0,
                global_ba: 2.0,
            },
            power: Watts(10.0),
            weight: Grams(85.0),
            integration_cost: CostLevel::Low,
            fabrication_cost: CostLevel::Low,
        }
    }

    /// ZYNQ XC7Z020 FPGA (paper's Vivado HLS design): pipelined dense
    /// fixed-size matrix algebra accelerates the bundle adjustments
    /// (~90 % of RPi runtime) ~45×, plus the eSLAM feature-extraction
    /// engine ~8× — overall 30.7× at 417 mW / ~75 g.
    pub fn zynq_fpga() -> Platform {
        Platform {
            name: "FPGA".to_owned(),
            kind: PlatformKind::Fpga,
            speedups: StageSpeedups {
                feature_extraction: 8.0,
                local_ba: 45.0,
                global_ba: 45.0,
            },
            power: Watts(0.417),
            weight: Grams(75.0),
            integration_cost: CostLevel::Medium,
            fabrication_cost: CostLevel::Medium,
        }
    }

    /// Navion-class ASIC (Suleiman et al., 65 nm): 23.53× at 24 mW /
    /// ~20 g, but chip fabrication costs.
    pub fn navion_asic() -> Platform {
        Platform {
            name: "ASIC".to_owned(),
            kind: PlatformKind::Asic,
            speedups: StageSpeedups {
                feature_extraction: 10.0,
                local_ba: 28.0,
                global_ba: 28.0,
            },
            power: Watts(0.024),
            weight: Grams(20.0),
            integration_cost: CostLevel::High,
            fabrication_cost: CostLevel::High,
        }
    }

    /// All four Table 5 platforms in table order.
    pub fn table5_lineup() -> Vec<Platform> {
        vec![
            Platform::raspberry_pi4(),
            Platform::jetson_tx2(),
            Platform::zynq_fpga(),
            Platform::navion_asic(),
        ]
    }

    /// Overall speedup on a workload whose RPi time fractions are
    /// `feature` / `local_ba` / `global_ba` (Amdahl composition).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum to more than 1 + ε.
    pub fn overall_speedup(&self, feature: f64, local_ba: f64, global_ba: f64) -> f64 {
        assert!(
            feature >= 0.0 && local_ba >= 0.0 && global_ba >= 0.0,
            "stage fractions must be non-negative"
        );
        let total = feature + local_ba + global_ba;
        assert!(total <= 1.0 + 1e-9, "stage fractions sum to {total} > 1");
        let other = (1.0 - total).max(0.0); // unaccelerated remainder
        let new_time = feature / self.speedups.feature_extraction
            + local_ba / self.speedups.local_ba
            + global_ba / self.speedups.global_ba
            + other;
        1.0 / new_time
    }

    /// Power delta versus the RPi baseline (positive = costs power).
    pub fn power_overhead_vs_rpi(&self) -> Watts {
        Watts(self.power.0 - Platform::raspberry_pi4().power.0)
    }

    /// Weight delta versus the RPi baseline.
    pub fn weight_overhead_vs_rpi(&self) -> Grams {
        Grams(self.weight.0 - Platform::raspberry_pi4().weight.0)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {}, {})",
            self.name, self.kind, self.power, self.weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured RPi profile: ~10 % features, ~90 % BA.
    const PROFILE: (f64, f64, f64) = (0.10, 0.45, 0.45);

    #[test]
    fn tx2_overall_speedup_matches_table5() {
        let s = Platform::jetson_tx2().overall_speedup(PROFILE.0, PROFILE.1, PROFILE.2);
        assert!((s - 2.16).abs() < 0.25, "TX2 speedup {s}");
    }

    #[test]
    fn fpga_overall_speedup_matches_table5() {
        let s = Platform::zynq_fpga().overall_speedup(PROFILE.0, PROFILE.1, PROFILE.2);
        assert!((s - 30.7).abs() < 3.0, "FPGA speedup {s}");
    }

    #[test]
    fn asic_overall_speedup_matches_table5() {
        let s = Platform::navion_asic().overall_speedup(PROFILE.0, PROFILE.1, PROFILE.2);
        assert!((s - 23.53).abs() < 3.0, "ASIC speedup {s}");
    }

    #[test]
    fn baseline_speedup_is_one() {
        let s = Platform::raspberry_pi4().overall_speedup(PROFILE.0, PROFILE.1, PROFILE.2);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_ordering_matches_table5() {
        // TX2 > RPi > FPGA > ASIC in power.
        let [rpi, tx2, fpga, asic]: [Platform; 4] = Platform::table5_lineup().try_into().unwrap();
        assert!(tx2.power > rpi.power);
        assert!(rpi.power > fpga.power);
        assert!(fpga.power > asic.power);
        // Overheads vs RPi: TX2 positive, FPGA/ASIC negative.
        assert!(tx2.power_overhead_vs_rpi().0 > 0.0);
        assert!(fpga.power_overhead_vs_rpi().0 < 0.0);
        assert!(asic.power_overhead_vs_rpi().0 < 0.0);
    }

    #[test]
    fn cost_levels_match_table5() {
        let fpga = Platform::zynq_fpga();
        let asic = Platform::navion_asic();
        assert_eq!(fpga.integration_cost, CostLevel::Medium);
        assert_eq!(asic.fabrication_cost, CostLevel::High);
        assert!(asic.fabrication_cost > fpga.fabrication_cost);
    }

    #[test]
    fn amdahl_composition_sanity() {
        // With zero accelerated fraction the speedup collapses to 1.
        let fpga = Platform::zynq_fpga();
        assert!((fpga.overall_speedup(0.0, 0.0, 0.0) - 1.0).abs() < 1e-12);
        // Speedup is bounded by the best stage factor.
        let s = fpga.overall_speedup(0.0, 0.5, 0.5);
        assert!(s <= 45.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "stage fractions sum")]
    fn overfull_fractions_panic() {
        let _ = Platform::raspberry_pi4().overall_speedup(0.5, 0.5, 0.5);
    }
}
