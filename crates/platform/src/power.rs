//! Compute-board power-state machine (paper Figure 16a).
//!
//! The paper logs the RPi through five phases: disconnected → booted with
//! the autopilot running (3.39 W) → SLAM started but idle (4.05 W) → SLAM
//! actively processing during flight (4.56 W average, 5 W peak) →
//! shut down. [`BoardPowerModel`] reproduces that phase→power mapping
//! with noise-free nominal values plus a deterministic activity ripple.

use drone_components::units::Watts;
use drone_math::Pcg32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activity phase of the companion compute board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputePhase {
    /// Power disconnected.
    Off,
    /// Board on, idle (no autopilot).
    Idle,
    /// Autopilot software running.
    Autopilot,
    /// Autopilot + SLAM started but input-starved (not flying).
    AutopilotSlamIdle,
    /// Autopilot + SLAM actively processing camera frames in flight.
    AutopilotSlamActive,
}

impl fmt::Display for ComputePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ComputePhase::Off => "off",
            ComputePhase::Idle => "idle",
            ComputePhase::Autopilot => "autopilot",
            ComputePhase::AutopilotSlamIdle => "autopilot+slam(idle)",
            ComputePhase::AutopilotSlamActive => "autopilot+slam(flying)",
        })
    }
}

/// Phase→power model for a companion board.
///
/// # Example
///
/// ```
/// use drone_platform::{BoardPowerModel, ComputePhase};
/// let rpi = BoardPowerModel::rpi_figure16();
/// let p = rpi.nominal(ComputePhase::Autopilot);
/// assert!((p.0 - 3.39).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardPowerModel {
    idle: Watts,
    autopilot: Watts,
    slam_idle: Watts,
    slam_active: Watts,
    peak: Watts,
    ripple_fraction: f64,
}

impl BoardPowerModel {
    /// The paper's measured RPi levels (§5.1 / Figure 16a).
    pub fn rpi_figure16() -> BoardPowerModel {
        BoardPowerModel {
            idle: Watts(2.3),
            autopilot: Watts(3.39),
            slam_idle: Watts(4.05),
            slam_active: Watts(4.56),
            peak: Watts(5.0),
            ripple_fraction: 0.04,
        }
    }

    /// A custom model.
    ///
    /// # Panics
    ///
    /// Panics unless `idle ≤ autopilot ≤ slam_idle ≤ slam_active ≤ peak`.
    pub fn new(
        idle: Watts,
        autopilot: Watts,
        slam_idle: Watts,
        slam_active: Watts,
        peak: Watts,
    ) -> BoardPowerModel {
        assert!(
            idle.0 <= autopilot.0
                && autopilot.0 <= slam_idle.0
                && slam_idle.0 <= slam_active.0
                && slam_active.0 <= peak.0,
            "phase power levels must be non-decreasing"
        );
        BoardPowerModel {
            idle,
            autopilot,
            slam_idle,
            slam_active,
            peak,
            ripple_fraction: 0.04,
        }
    }

    /// Nominal power of a phase.
    pub fn nominal(&self, phase: ComputePhase) -> Watts {
        match phase {
            ComputePhase::Off => Watts::ZERO,
            ComputePhase::Idle => self.idle,
            ComputePhase::Autopilot => self.autopilot,
            ComputePhase::AutopilotSlamIdle => self.slam_idle,
            ComputePhase::AutopilotSlamActive => self.slam_active,
        }
    }

    /// Peak power (active SLAM bursts).
    pub fn peak(&self) -> Watts {
        self.peak
    }

    /// Instantaneous sample with activity ripple, deterministic per rng.
    /// Active-SLAM phases occasionally burst toward the peak.
    pub fn sample(&self, phase: ComputePhase, rng: &mut Pcg32) -> Watts {
        let nominal = self.nominal(phase);
        if nominal.0 == 0.0 {
            return Watts::ZERO;
        }
        let ripple = nominal.0 * self.ripple_fraction * rng.normal();
        let burst = if phase == ComputePhase::AutopilotSlamActive && rng.chance(0.05) {
            (self.peak.0 - nominal.0) * rng.next_f64()
        } else {
            0.0
        };
        Watts((nominal.0 + ripple + burst).clamp(0.0, self.peak.0))
    }

    /// Generates the Figure 16a-style trace: a list of
    /// `(phase, duration_s)` segments sampled at `rate_hz` →
    /// `(time, watts, phase)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive.
    pub fn trace(
        &self,
        segments: &[(ComputePhase, f64)],
        rate_hz: f64,
        seed: u64,
    ) -> Vec<(f64, Watts, ComputePhase)> {
        assert!(rate_hz > 0.0, "sample rate must be positive");
        let mut rng = Pcg32::seed_from(seed);
        let mut out = Vec::new();
        let mut t = 0.0;
        let dt = 1.0 / rate_hz;
        for &(phase, duration) in segments {
            let n = (duration * rate_hz).round() as usize;
            for _ in 0..n {
                out.push((t, self.sample(phase, &mut rng), phase));
                t += dt;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure16_levels() {
        let m = BoardPowerModel::rpi_figure16();
        assert_eq!(m.nominal(ComputePhase::Off), Watts::ZERO);
        assert!((m.nominal(ComputePhase::Autopilot).0 - 3.39).abs() < 1e-9);
        assert!((m.nominal(ComputePhase::AutopilotSlamIdle).0 - 4.05).abs() < 1e-9);
        assert!((m.nominal(ComputePhase::AutopilotSlamActive).0 - 4.56).abs() < 1e-9);
        assert!((m.peak().0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn phases_are_monotone() {
        let m = BoardPowerModel::rpi_figure16();
        let order = [
            ComputePhase::Off,
            ComputePhase::Idle,
            ComputePhase::Autopilot,
            ComputePhase::AutopilotSlamIdle,
            ComputePhase::AutopilotSlamActive,
        ];
        for pair in order.windows(2) {
            assert!(m.nominal(pair[0]).0 <= m.nominal(pair[1]).0);
        }
    }

    #[test]
    fn samples_stay_bounded_and_average_to_nominal() {
        let m = BoardPowerModel::rpi_figure16();
        let mut rng = Pcg32::seed_from(3);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let p = m.sample(ComputePhase::Autopilot, &mut rng);
            assert!(p.0 > 0.0 && p.0 <= m.peak().0);
            sum += p.0;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.39).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn active_slam_bursts_toward_peak() {
        let m = BoardPowerModel::rpi_figure16();
        let mut rng = Pcg32::seed_from(4);
        let mut max: f64 = 0.0;
        for _ in 0..5000 {
            max = max.max(m.sample(ComputePhase::AutopilotSlamActive, &mut rng).0);
        }
        assert!(max > 4.7, "never bursts: {max}");
    }

    #[test]
    fn trace_covers_segments_in_order() {
        let m = BoardPowerModel::rpi_figure16();
        let segs = [
            (ComputePhase::Autopilot, 2.0),
            (ComputePhase::AutopilotSlamIdle, 1.0),
            (ComputePhase::AutopilotSlamActive, 3.0),
        ];
        let trace = m.trace(&segs, 2.0, 7);
        assert_eq!(trace.len(), 12);
        assert_eq!(trace[0].2, ComputePhase::Autopilot);
        assert_eq!(trace[5].2, ComputePhase::AutopilotSlamIdle);
        assert_eq!(trace[11].2, ComputePhase::AutopilotSlamActive);
        // Time increases monotonically.
        for pair in trace.windows(2) {
            assert!(pair[1].0 > pair[0].0);
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unordered_levels_panic() {
        let _ = BoardPowerModel::new(Watts(5.0), Watts(1.0), Watts(2.0), Watts(3.0), Watts(4.0));
    }
}
