//! Synthetic instruction-trace workloads.
//!
//! The paper profiles two programs on the RPi with `perf`: the ArduPilot
//! autopilot (small, loop-heavy, predictable) and ORB-SLAM (large
//! working set, irregular data-dependent access over image pyramids and
//! map points). These generators produce instruction streams with those
//! *statistical* shapes; executed on the [`crate::uarch`] core they
//! reproduce the paper's Figure 15 counter picture.

use drone_math::Pcg32;
use serde::{Deserialize, Serialize};

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Register-only arithmetic.
    Alu,
    /// Load from a byte address.
    Load(u64),
    /// Store to a byte address.
    Store(u64),
    /// Conditional branch at `pc` with its resolved direction.
    Branch {
        /// Branch instruction address.
        pc: u64,
        /// Resolved direction.
        taken: bool,
    },
}

/// Statistical description of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Display name.
    pub name: String,
    /// Total data working-set size in bytes (hot + cold regions).
    pub working_set_bytes: u64,
    /// Size of the *hot* region — the data the program reuses constantly
    /// (state vectors, current image tile). Accesses outside it roam the
    /// full working set.
    pub hot_bytes: u64,
    /// Fraction of memory accesses that land in the hot region.
    pub hot_fraction: f64,
    /// Base of this workload's address space (keeps co-scheduled
    /// workloads from sharing data).
    pub base_address: u64,
    /// Fraction of *hot* accesses that stream sequentially (the rest
    /// are uniform-random within the hot region).
    pub sequential_fraction: f64,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Probability that a branch is data-dependent (50/50 random) rather
    /// than a predictable loop-style branch.
    pub branch_entropy: f64,
    /// Number of distinct branch sites (code footprint proxy).
    pub branch_sites: u64,
}

impl WorkloadSpec {
    /// Validates fractions.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or the instruction-mix
    /// fractions exceed 1 combined.
    pub fn validated(self) -> WorkloadSpec {
        for (label, v) in [
            ("sequential", self.sequential_fraction),
            ("hot", self.hot_fraction),
            ("load", self.load_fraction),
            ("store", self.store_fraction),
            ("branch", self.branch_fraction),
            ("entropy", self.branch_entropy),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{label} fraction {v} out of range"
            );
        }
        assert!(
            self.load_fraction + self.store_fraction + self.branch_fraction <= 1.0,
            "instruction mix exceeds 100 %"
        );
        assert!(self.working_set_bytes > 0, "working set must be non-empty");
        assert!(
            self.hot_bytes > 0 && self.hot_bytes <= self.working_set_bytes,
            "hot region must be non-empty and within the working set"
        );
        assert!(self.branch_sites > 0, "need at least one branch site");
        self
    }
}

/// A deterministic instruction-stream generator.
///
/// # Example
///
/// ```
/// use drone_platform::SyntheticWorkload;
/// let mut w = SyntheticWorkload::autopilot(1);
/// let ops: Vec<_> = (0..100).map(|_| w.next_op()).collect();
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    rng: Pcg32,
    stream_offset: u64,
    /// Per-site loop counters: real loop branches are periodic *per
    /// site*, which history-based predictors learn.
    loop_iterations: Vec<u16>,
}

impl SyntheticWorkload {
    /// Creates a generator from a spec and seed.
    pub fn new(spec: WorkloadSpec, seed: u64) -> SyntheticWorkload {
        let spec = spec.validated();
        let loop_iterations = vec![0; spec.branch_sites as usize];
        SyntheticWorkload {
            spec,
            rng: Pcg32::seed_from(seed),
            stream_offset: 0,
            loop_iterations,
        }
    }

    /// The ArduPilot-shaped workload: a hot ~28 KiB state (vectors,
    /// gains, filters) reused constantly, a ~320 KiB total footprint
    /// (parameter tables, logging buffers) visited occasionally, mostly
    /// streaming access, highly predictable loop branches.
    pub fn autopilot(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(
            WorkloadSpec {
                name: "autopilot".to_owned(),
                working_set_bytes: 280 * 1024,
                hot_bytes: 28 * 1024,
                hot_fraction: 0.97,
                base_address: 0x1000_0000,
                sequential_fraction: 0.85,
                load_fraction: 0.25,
                store_fraction: 0.10,
                branch_fraction: 0.15,
                branch_entropy: 0.02,
                branch_sites: 48,
            },
            seed,
        )
    }

    /// The ORB-SLAM-shaped workload: a hot ~512 KiB tile (current image
    /// pyramid level, active descriptors) inside an 8 MiB map/frame
    /// footprint, half-irregular access, data-dependent branching
    /// (matching, RANSAC, graph traversal).
    pub fn slam(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(
            WorkloadSpec {
                name: "slam".to_owned(),
                working_set_bytes: 8 * 1024 * 1024,
                hot_bytes: 2 * 1024 * 1024,
                hot_fraction: 0.97,
                base_address: 0x4000_0000,
                sequential_fraction: 0.98,
                load_fraction: 0.33,
                store_fraction: 0.12,
                branch_fraction: 0.15,
                branch_entropy: 0.20,
                branch_sites: 4096,
            },
            seed,
        )
    }

    /// The workload's spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_address(&mut self) -> u64 {
        let offset = if self.rng.chance(self.spec.hot_fraction) {
            let hot = self.spec.hot_bytes;
            if self.rng.chance(self.spec.sequential_fraction) {
                // Stream in 8-byte steps, wrapping the hot region.
                self.stream_offset = (self.stream_offset + 8) % hot;
                self.stream_offset
            } else {
                self.rng.next_u64() % hot
            }
        } else {
            // Cold access roams the full working set.
            self.rng.next_u64() % self.spec.working_set_bytes
        };
        self.spec.base_address + offset
    }

    /// Produces the next dynamic instruction.
    pub fn next_op(&mut self) -> Op {
        let r = self.rng.next_f64();
        let spec = &self.spec;
        if r < spec.load_fraction {
            Op::Load(self.next_address())
        } else if r < spec.load_fraction + spec.store_fraction {
            Op::Store(self.next_address())
        } else if r < spec.load_fraction + spec.store_fraction + spec.branch_fraction {
            let entropy = spec.branch_entropy;
            let site = (self.rng.next_u64() % spec.branch_sites) as usize;
            let pc = spec.base_address + 0x100_0000 + site as u64 * 4;
            let taken = if self.rng.chance(entropy) {
                self.rng.chance(0.5)
            } else {
                // Loop-style: this site is taken except every 32nd of
                // its own executions — a pattern gshare learns.
                let it = &mut self.loop_iterations[site];
                *it = it.wrapping_add(1);
                !it.is_multiple_of(32)
            };
            Op::Branch { pc, taken }
        } else {
            Op::Alu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SyntheticWorkload::slam(9);
        let mut b = SyntheticWorkload::slam(9);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn instruction_mix_matches_spec() {
        let mut w = SyntheticWorkload::autopilot(3);
        let n = 100_000;
        let (mut loads, mut stores, mut branches) = (0, 0, 0);
        for _ in 0..n {
            match w.next_op() {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                Op::Branch { .. } => branches += 1,
                Op::Alu => {}
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(loads) - 0.25).abs() < 0.01, "loads {}", f(loads));
        assert!((f(stores) - 0.10).abs() < 0.01, "stores {}", f(stores));
        assert!(
            (f(branches) - 0.15).abs() < 0.01,
            "branches {}",
            f(branches)
        );
    }

    #[test]
    fn addresses_stay_in_declared_space() {
        let mut w = SyntheticWorkload::slam(5);
        let spec = w.spec().clone();
        for _ in 0..50_000 {
            if let Op::Load(a) | Op::Store(a) = w.next_op() {
                assert!(a >= spec.base_address);
                assert!(a < spec.base_address + spec.working_set_bytes);
            }
        }
    }

    #[test]
    fn address_spaces_are_disjoint() {
        let a = SyntheticWorkload::autopilot(1);
        let s = SyntheticWorkload::slam(1);
        let a_end = a.spec().base_address + a.spec().working_set_bytes;
        assert!(a_end <= s.spec().base_address, "address spaces overlap");
    }

    #[test]
    fn slam_is_more_irregular_than_autopilot() {
        // Count distinct 4 KiB pages touched in a fixed window — the
        // SLAM stream must touch far more.
        let pages = |mut w: SyntheticWorkload| {
            let mut set = std::collections::HashSet::new();
            for _ in 0..50_000 {
                if let Op::Load(a) | Op::Store(a) = w.next_op() {
                    set.insert(a / 4096);
                }
            }
            set.len()
        };
        let ap = pages(SyntheticWorkload::autopilot(2));
        let sl = pages(SyntheticWorkload::slam(2));
        assert!(sl > 10 * ap, "autopilot {ap} pages vs slam {sl}");
    }

    #[test]
    #[should_panic(expected = "instruction mix exceeds")]
    fn overfull_mix_panics() {
        let _ = SyntheticWorkload::new(
            WorkloadSpec {
                name: "bad".into(),
                working_set_bytes: 1024,
                hot_bytes: 1024,
                hot_fraction: 1.0,
                base_address: 0,
                sequential_fraction: 0.5,
                load_fraction: 0.6,
                store_fraction: 0.3,
                branch_fraction: 0.2,
                branch_entropy: 0.0,
                branch_sites: 1,
            },
            0,
        );
    }
}
