//! Compute-platform models and the micro-architecture simulator.
//!
//! Two halves, matching how the paper treats hardware:
//!
//! 1. **Platform models** ([`model`], [`power`]): the paper reduces each
//!    SLAM offload target to a (per-stage speedup, power, weight,
//!    integration cost) tuple — Table 5. [`model::Platform`] encodes
//!    exactly that, with constructors calibrated to the paper's RPi 4,
//!    Jetson TX2, ZYNQ XC7Z020 FPGA and Navion ASIC numbers.
//!    [`power::BoardPowerModel`] is the Figure 16a phase→power state
//!    machine (autopilot 3.39 W → +SLAM idle 4.05 W → flying 4.56 W).
//!
//! 2. **Micro-architecture simulation** ([`uarch`], [`workload`]): the
//!    substitute for the paper's Linux `perf` measurements (Figure 15).
//!    Synthetic autopilot and SLAM workloads — differing in working-set
//!    size, access regularity and branch entropy — execute on a
//!    trace-driven in-order core with L1/LLC caches, a TLB and a gshare
//!    branch predictor. Co-scheduling them on one core reproduces the
//!    paper's observation: SLAM pollutes the shared structures, TLB
//!    misses multiply and autopilot IPC drops ~1.7×.
//!
//! # Example
//!
//! ```
//! use drone_platform::model::Platform;
//! let fpga = Platform::zynq_fpga();
//! // Paper Table 5: ~30.7× on a 10 % feature / 90 % BA profile.
//! let speedup = fpga.overall_speedup(0.10, 0.45, 0.45);
//! assert!(speedup > 25.0 && speedup < 36.0);
//! ```

pub mod model;
pub mod power;
pub mod uarch;
pub mod workload;

pub use model::{CostLevel, Platform, PlatformKind, StageSpeedups};
pub use power::{BoardPowerModel, ComputePhase};
pub use uarch::system::{CoreConfig, CoreSystem, WorkloadStats};
pub use workload::SyntheticWorkload;
