//! Set-associative LRU cache model.

use serde::{Deserialize, Serialize};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// RPi-class L1 data cache: 32 KiB, 4-way, 64 B lines.
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
        }
    }

    /// RPi-class shared last-level cache: 1 MiB, 16-way, 64 B lines.
    pub fn llc() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored with a per-way last-use stamp; the model tracks hits
/// and misses only (no dirty/writeback modelling — miss *rates* are what
/// Figure 15 compares).
///
/// # Example
///
/// ```
/// use drone_platform::uarch::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert!(!c.access(0x1000)); // cold miss
/// assert!(c.access(0x1000));  // now resident
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set][way]`; `u64::MAX` = invalid.
    tags: Vec<Vec<u64>>,
    /// Last-use stamps parallel to `tags`.
    stamps: Vec<Vec<u64>>,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or capacity not divisible into sets).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line_bytes.is_power_of_two() && config.line_bytes > 0,
            "bad line size"
        );
        assert!(config.ways > 0, "need at least one way");
        assert!(
            config
                .size_bytes
                .is_multiple_of(config.line_bytes * config.ways)
                && config.sets() > 0,
            "capacity must divide into sets"
        );
        let sets = config.sets();
        Cache {
            config,
            tags: vec![vec![u64::MAX; config.ways]; sets],
            stamps: vec![vec![0; config.ways]; sets],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses a byte address; returns `true` on hit. Misses install the
    /// line, evicting the set's LRU way.
    pub fn access(&mut self, address: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = address / self.config.line_bytes as u64;
        let set = (line % self.config.sets() as u64) as usize;
        let tag = line / self.config.sets() as u64;

        if let Some(way) = self.tags[set].iter().position(|&t| t == tag) {
            self.stamps[set][way] = self.clock;
            return true;
        }
        self.misses += 1;
        // Install over the LRU (or first invalid) way.
        let victim = (0..self.config.ways)
            .min_by_key(|&w| {
                if self.tags[set][w] == u64::MAX {
                    0
                } else {
                    self.stamps[set][w]
                }
            })
            .expect("at least one way");
        self.tags[set][victim] = tag;
        self.stamps[set][victim] = self.clock;
        false
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]` (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears counters but keeps contents (for per-phase accounting).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets*line = 256).
        c.access(0); // A
        c.access(256); // B
        c.access(0); // A again → A is MRU
        assert!(!c.access(512)); // C evicts LRU = B
        assert!(c.access(0), "A must survive");
        assert!(!c.access(256), "B must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        let lines = 32 * 1024 / 64 / 2; // half capacity
                                        // Two passes: first cold, second fully resident.
        for pass in 0..2 {
            for i in 0..lines {
                let hit = c.access(i as u64 * 64);
                if pass == 1 {
                    assert!(hit, "line {i} missed on second pass");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        });
        // 4× capacity streamed repeatedly with LRU → always misses.
        let lines = 4 * 1024 / 64;
        for _ in 0..3 {
            for i in 0..lines {
                c.access(i as u64 * 64);
            }
        }
        assert!(c.miss_rate() > 0.99, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert!(c.access(0), "contents preserved");
    }

    #[test]
    fn standard_configs() {
        assert_eq!(CacheConfig::l1d().sets(), 128);
        assert_eq!(CacheConfig::llc().sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "bad line size")]
    fn non_power_of_two_line_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 48,
            ways: 2,
        });
    }
}
