//! The trace-driven core: executes workload instruction streams through
//! L1 → LLC caches, a TLB and a branch predictor, producing the per-
//! workload counter picture of the paper's Figure 15.
//!
//! Co-scheduling is modelled the way the paper's RPi runs it: time-shared
//! quanta on one core, so the workloads contend for every shared
//! structure. Per-workload stats are attributed by counter deltas around
//! each quantum.

use crate::uarch::branch::GsharePredictor;
use crate::uarch::cache::{Cache, CacheConfig};
use crate::uarch::tlb::Tlb;
use crate::workload::{Op, SyntheticWorkload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Core configuration: structures and penalty model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// Data-TLB entries.
    pub tlb_entries: usize,
    /// Branch-predictor index bits.
    pub predictor_bits: u32,
    /// Extra cycles on an L1 miss that hits LLC.
    pub l1_miss_penalty: u64,
    /// Extra cycles on an LLC miss (DRAM access).
    pub llc_miss_penalty: u64,
    /// Extra cycles on a TLB miss (page-walk).
    pub tlb_miss_penalty: u64,
    /// Extra cycles on a branch mispredict (flush).
    pub branch_penalty: u64,
}

impl Default for CoreConfig {
    /// An RPi-class in-order core.
    fn default() -> Self {
        CoreConfig {
            l1: CacheConfig::l1d(),
            llc: CacheConfig::llc(),
            tlb_entries: 64,
            predictor_bits: 12,
            l1_miss_penalty: 12,
            llc_miss_penalty: 120,
            tlb_miss_penalty: 40,
            branch_penalty: 14,
        }
    }
}

/// Per-workload performance counters (the Figure 15 vocabulary).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Workload name.
    pub name: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Memory instructions executed.
    pub memory_ops: u64,
    /// Branches executed.
    pub branches: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// LLC accesses (i.e. L1 misses).
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
}

impl WorkloadStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC miss rate as misses per data reference (the shape `perf`'s
    /// `LLC-load-misses / loads` reports in Figure 15). Misses *per LLC
    /// access* would be misleading for cache-resident workloads whose
    /// handful of cold misses all reach DRAM.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.memory_ops == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.memory_ops as f64
        }
    }

    /// Branch misprediction rate.
    pub fn branch_miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// TLB misses per kilo-instruction (the §5.1 "4.5× as many TLB
    /// misses" comparison basis).
    pub fn tlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.tlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: IPC {:.3}, LLC miss {:.1}%, branch miss {:.1}%, TLB {:.2} MPKI",
            self.name,
            self.ipc(),
            self.llc_miss_rate() * 100.0,
            self.branch_miss_rate() * 100.0,
            self.tlb_mpki()
        )
    }
}

/// One simulated core with its memory-side structures.
#[derive(Debug, Clone)]
pub struct CoreSystem {
    config: CoreConfig,
    l1: Cache,
    llc: Cache,
    tlb: Tlb,
    predictor: GsharePredictor,
}

impl CoreSystem {
    /// Creates a core from a configuration.
    pub fn new(config: CoreConfig) -> CoreSystem {
        CoreSystem {
            config,
            l1: Cache::new(config.l1),
            llc: Cache::new(config.llc),
            tlb: Tlb::new(config.tlb_entries),
            predictor: GsharePredictor::new(config.predictor_bits),
        }
    }

    /// Executes one instruction, returning the cycles it consumed and
    /// updating `stats`.
    fn execute(&mut self, op: Op, stats: &mut WorkloadStats) {
        stats.instructions += 1;
        let mut cycles = 1;
        match op {
            Op::Alu => {}
            Op::Load(addr) | Op::Store(addr) => {
                stats.memory_ops += 1;
                if !self.tlb.access(addr) {
                    stats.tlb_misses += 1;
                    cycles += self.config.tlb_miss_penalty;
                }
                if self.l1.access(addr) {
                    // L1 hit: single-cycle.
                } else {
                    stats.l1_misses += 1;
                    stats.llc_accesses += 1;
                    cycles += self.config.l1_miss_penalty;
                    if !self.llc.access(addr) {
                        stats.llc_misses += 1;
                        cycles += self.config.llc_miss_penalty;
                    }
                }
            }
            Op::Branch { pc, taken } => {
                stats.branches += 1;
                if !self.predictor.predict_and_update(pc, taken) {
                    stats.branch_mispredicts += 1;
                    cycles += self.config.branch_penalty;
                }
            }
        }
        stats.cycles += cycles;
    }

    /// Runs a single workload alone for `instructions` instructions.
    pub fn run_alone(
        &mut self,
        workload: &mut SyntheticWorkload,
        instructions: u64,
    ) -> WorkloadStats {
        let mut stats = WorkloadStats {
            name: workload.spec().name.clone(),
            ..Default::default()
        };
        for _ in 0..instructions {
            let op = workload.next_op();
            self.execute(op, &mut stats);
        }
        stats
    }

    /// Time-shares the core between workloads in round-robin quanta
    /// (`quanta[i]` instructions per turn for workload `i` — real
    /// schedules are asymmetric: the autopilot runs short real-time
    /// bursts between long SLAM frame computations).
    ///
    /// Workload 0 is the **subject**: rounds continue until it retires
    /// `subject_instructions`; the background workloads keep running
    /// their full quanta every round (a co-located SLAM never stops just
    /// because the autopilot had a short tick). Returns per-workload
    /// stats in input order.
    ///
    /// # Panics
    ///
    /// Panics if any quantum is zero, no workloads are given, or the
    /// slice lengths disagree.
    pub fn run_coscheduled(
        &mut self,
        workloads: &mut [SyntheticWorkload],
        quanta: &[u64],
        subject_instructions: u64,
    ) -> Vec<WorkloadStats> {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert_eq!(workloads.len(), quanta.len(), "one quantum per workload");
        assert!(quanta.iter().all(|&q| q > 0), "quantum must be positive");
        let mut stats: Vec<WorkloadStats> = workloads
            .iter()
            .map(|w| WorkloadStats {
                name: w.spec().name.clone(),
                ..Default::default()
            })
            .collect();
        let mut subject_remaining = subject_instructions;
        while subject_remaining > 0 {
            for (i, workload) in workloads.iter_mut().enumerate() {
                let burst = if i == 0 {
                    quanta[0].min(subject_remaining)
                } else {
                    quanta[i]
                };
                for _ in 0..burst {
                    let op = workload.next_op();
                    self.execute(op, &mut stats[i]);
                }
                if i == 0 {
                    subject_remaining -= burst;
                }
            }
        }
        stats
    }
}

impl Default for CoreSystem {
    fn default() -> Self {
        CoreSystem::new(CoreConfig::default())
    }
}

/// Runs the full Figure 15 experiment: autopilot alone, SLAM alone, and
/// autopilot co-scheduled with SLAM, each on a fresh core. Returns
/// `(autopilot_alone, slam_alone, autopilot_shared, slam_shared)`.
pub fn figure15_experiment(
    instructions: u64,
    seed: u64,
) -> (WorkloadStats, WorkloadStats, WorkloadStats, WorkloadStats) {
    let mut core = CoreSystem::default();
    let autopilot_alone = core.run_alone(&mut SyntheticWorkload::autopilot(seed), instructions);

    let mut core = CoreSystem::default();
    let slam_alone = core.run_alone(&mut SyntheticWorkload::slam(seed), instructions);

    let mut core = CoreSystem::default();
    let mut both = [
        SyntheticWorkload::autopilot(seed),
        SyntheticWorkload::slam(seed),
    ];
    // The autopilot runs short real-time bursts between long SLAM frame
    // computations; each SLAM turn walks enough of its 8 MiB working set
    // to flush the shared L1/LLC/TLB, so every autopilot burst restarts
    // cold — the mechanism behind the paper's Figure 15 degradation.
    let mut shared = core.run_coscheduled(&mut both, &[80_000, 600_000], instructions);
    let slam_shared = shared.pop().expect("two workloads in, two stats out");
    let autopilot_shared = shared.pop().expect("two workloads in, two stats out");
    (autopilot_alone, slam_alone, autopilot_shared, slam_shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 400_000;

    #[test]
    fn autopilot_alone_is_healthy() {
        let mut core = CoreSystem::default();
        let stats = core.run_alone(&mut SyntheticWorkload::autopilot(1), N);
        assert!(stats.ipc() > 0.38, "{stats}");
        assert!(stats.llc_miss_rate() < 0.05, "{stats}");
        assert!(stats.tlb_mpki() < 2.0, "{stats}");
    }

    #[test]
    fn slam_alone_is_memory_bound() {
        let mut core = CoreSystem::default();
        let stats = core.run_alone(&mut SyntheticWorkload::slam(1), N);
        assert!(stats.ipc() < 0.2, "{stats}");
        assert!(stats.llc_miss_rate() > 0.08, "{stats}");
        assert!(stats.branch_miss_rate() > 0.10, "{stats}");
    }

    #[test]
    fn coscheduling_degrades_the_autopilot() {
        // The paper's Figure 15 directions: co-located SLAM raises the
        // autopilot's TLB misses (×4.5 reported), LLC and branch miss
        // rates, and costs it ~1.7× IPC.
        let (ap_alone, _slam_alone, ap_shared, _slam_shared) = figure15_experiment(N, 2);
        let ipc_drop = ap_alone.ipc() / ap_shared.ipc();
        assert!(
            ipc_drop > 1.2,
            "IPC drop only {ipc_drop:.2}: {ap_alone} vs {ap_shared}"
        );
        // The autopilot's own TLB misses rise (the system-level 4.5x
        // figure is dominated by SLAM's absolute misses and is reported
        // by the fig15 experiment).
        let tlb_blowup = ap_shared.tlb_mpki() / ap_alone.tlb_mpki().max(1e-9);
        assert!(tlb_blowup > 1.2, "TLB blow-up only {tlb_blowup:.2}");
        assert!(ap_shared.llc_miss_rate() > ap_alone.llc_miss_rate());
    }

    #[test]
    fn stats_attribution_is_per_workload() {
        let mut core = CoreSystem::default();
        let mut both = [SyntheticWorkload::autopilot(3), SyntheticWorkload::slam(3)];
        let stats = core.run_coscheduled(&mut both, &[10_000, 10_000], 100_000);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "autopilot");
        assert_eq!(stats[1].name, "slam");
        assert_eq!(stats[0].instructions, 100_000);
        // Background workload runs a full quantum per round.
        assert_eq!(stats[1].instructions, 100_000);
        // SLAM's misses must not be billed to the autopilot: slam keeps a
        // much higher absolute LLC miss count.
        assert!(stats[1].llc_misses > stats[0].llc_misses);
    }

    #[test]
    fn cycles_are_consistent() {
        let mut core = CoreSystem::default();
        let stats = core.run_alone(&mut SyntheticWorkload::autopilot(4), 50_000);
        // Cycles ≥ instructions (base CPI 1) and bounded by worst case.
        assert!(stats.cycles >= stats.instructions);
        let cfg = CoreConfig::default();
        let worst = stats.instructions
            * (1 + cfg.llc_miss_penalty
                + cfg.l1_miss_penalty
                + cfg.tlb_miss_penalty
                + cfg.branch_penalty);
        assert!(stats.cycles < worst);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a1, s1, x1, y1) = figure15_experiment(100_000, 7);
        let (a2, s2, x2, y2) = figure15_experiment(100_000, 7);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn rate_helpers_handle_zero() {
        let empty = WorkloadStats::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.llc_miss_rate(), 0.0);
        assert_eq!(empty.branch_miss_rate(), 0.0);
        assert_eq!(empty.tlb_mpki(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        let mut core = CoreSystem::default();
        let mut w = [SyntheticWorkload::autopilot(1)];
        let _ = core.run_coscheduled(&mut w, &[0], 10);
    }
}
