//! Trace-driven micro-architecture simulation.
//!
//! A deliberately small in-order core model — enough to reproduce the
//! *relative* performance-counter picture of the paper's Figure 15
//! (`perf` on an RPi): cache miss rates, TLB miss rates, branch
//! mispredictions, and the IPC they imply, for workloads run alone and
//! co-scheduled.

pub mod branch;
pub mod cache;
pub mod system;
pub mod tlb;

pub use branch::GsharePredictor;
pub use cache::{Cache, CacheConfig};
pub use system::{CoreConfig, CoreSystem, WorkloadStats};
pub use tlb::Tlb;
