//! Gshare branch predictor: global history XOR PC indexing a table of
//! 2-bit saturating counters.

use serde::{Deserialize, Serialize};

/// A gshare predictor.
///
/// # Example
///
/// ```
/// use drone_platform::uarch::branch::GsharePredictor;
/// let mut bp = GsharePredictor::new(12);
/// // A loop branch taken 500× becomes near-perfectly predicted.
/// for _ in 0..500 { bp.predict_and_update(0x400, true); }
/// assert!(bp.miss_rate() < 0.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GsharePredictor {
    table: Vec<u8>,
    index_bits: u32,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl GsharePredictor {
    /// Creates a predictor with `2^index_bits` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ index_bits ≤ 24`.
    pub fn new(index_bits: u32) -> GsharePredictor {
        assert!((1..=24).contains(&index_bits), "index bits out of range");
        GsharePredictor {
            table: vec![1; 1 << index_bits], // weakly not-taken
            index_bits,
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `pc`, then updates with the actual
    /// `taken` outcome. Returns `true` when the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        // Saturating 2-bit update.
        self.table[idx] = match (counter, taken) {
            (c, true) if c < 3 => c + 1,
            (c, false) if c > 0 => c - 1,
            (c, _) => c,
        };
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.index_bits) - 1);
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Clears counters, keeps learned state.
    pub fn reset_stats(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Pcg32;

    #[test]
    fn learns_always_taken() {
        let mut bp = GsharePredictor::new(10);
        for _ in 0..1000 {
            bp.predict_and_update(0x1000, true);
        }
        // The first ~index_bits outcomes walk the history register
        // through fresh table entries; after that it is perfect.
        assert!(bp.miss_rate() < 0.03, "{}", bp.miss_rate());
    }

    #[test]
    fn learns_loop_pattern() {
        // taken 7×, not-taken once (8-iteration loop): gshare with
        // history should get close to the 1/8 floor or better.
        let mut bp = GsharePredictor::new(12);
        for _ in 0..500 {
            for i in 0..8 {
                bp.predict_and_update(0x2000, i != 7);
            }
        }
        assert!(bp.miss_rate() < 0.10, "{}", bp.miss_rate());
    }

    #[test]
    fn random_branches_are_hard() {
        let mut bp = GsharePredictor::new(12);
        let mut rng = Pcg32::seed_from(1);
        for _ in 0..20_000 {
            bp.predict_and_update(0x3000, rng.chance(0.5));
        }
        assert!(bp.miss_rate() > 0.35, "{}", bp.miss_rate());
    }

    #[test]
    fn biased_branches_are_easier_than_random() {
        let mut coin = GsharePredictor::new(12);
        let mut biased = GsharePredictor::new(12);
        let mut rng = Pcg32::seed_from(2);
        for _ in 0..20_000 {
            coin.predict_and_update(0x10, rng.chance(0.5));
            biased.predict_and_update(0x10, rng.chance(0.9));
        }
        assert!(biased.miss_rate() < coin.miss_rate());
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut bp = GsharePredictor::new(14);
        for _ in 0..2000 {
            bp.predict_and_update(0x100, true);
            bp.predict_and_update(0x204, false);
        }
        assert!(bp.miss_rate() < 0.05, "{}", bp.miss_rate());
    }

    #[test]
    #[should_panic(expected = "index bits out of range")]
    fn zero_bits_panics() {
        let _ = GsharePredictor::new(0);
    }
}
