//! Translation lookaside buffer model: fully associative, LRU, 4 KiB
//! pages — the structure whose 4.5× miss blow-up the paper measures when
//! SLAM joins the autopilot (Figure 15 discussion, §5.1).

use serde::{Deserialize, Serialize};

/// Page size assumed by the model (4 KiB, Linux default).
pub const PAGE_BYTES: u64 = 4096;

/// A fully associative data TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use drone_platform::uarch::tlb::Tlb;
/// let mut tlb = Tlb::new(64);
/// assert!(!tlb.access(0x1000)); // cold
/// assert!(tlb.access(0x1fff));  // same page
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, stamp)
    capacity: usize,
    clock: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, address: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let page = address / PAGE_BYTES;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.clock;
            return true;
        }
        self.misses += 1;
        if self.entries.len() < self.capacity {
            self.entries.push((page, self.clock));
        } else {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries[lru] = (page, self.clock);
        }
        false
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Clears counters, keeps translations.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0); // page 0
        t.access(PAGE_BYTES); // page 1
        t.access(0); // refresh page 0
        t.access(2 * PAGE_BYTES); // evicts page 1
        assert!(t.access(0));
        assert!(!t.access(PAGE_BYTES));
    }

    #[test]
    fn small_working_set_hits() {
        let mut t = Tlb::new(64);
        for _ in 0..10 {
            for p in 0..32u64 {
                t.access(p * PAGE_BYTES);
            }
        }
        // 32 cold misses out of 320 accesses.
        assert_eq!(t.misses(), 32);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let mut t = Tlb::new(16);
        for _ in 0..5 {
            for p in 0..64u64 {
                t.access(p * PAGE_BYTES);
            }
        }
        assert!(t.miss_rate() > 0.95, "{}", t.miss_rate());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
