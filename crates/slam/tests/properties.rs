//! Property-based tests on the SLAM building blocks.

use drone_math::{Pcg32, Quat, Vec3};
use drone_slam::camera::{rotation_matrix_to_quat, CameraIntrinsics, CameraPose, Pixel};
use drone_slam::descriptor::Descriptor;
use proptest::prelude::*;

fn arb_quat() -> impl Strategy<Value = Quat> {
    (-3.0f64..3.0, -1.4f64..1.4, -3.0f64..3.0).prop_map(|(r, p, y)| Quat::from_euler(r, p, y))
}

fn arb_vec(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn hamming_is_a_metric(seed in 0u64..5000) {
        let mut rng = Pcg32::seed_from(seed);
        let a = Descriptor::random(&mut rng);
        let b = Descriptor::random(&mut rng);
        let c = Descriptor::random(&mut rng);
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn corruption_distance_bounded_by_flips(seed in 0u64..5000, p in 0.0f64..0.2) {
        let mut rng = Pcg32::seed_from(seed);
        let d = Descriptor::random(&mut rng);
        let c = d.corrupted(p, &mut rng);
        prop_assert!(d.hamming(&c) <= 256);
    }

    #[test]
    fn world_camera_roundtrip(q in arb_quat(), pos in arb_vec(20.0), point in arb_vec(50.0)) {
        let pose = CameraPose::new(pos, q);
        let back = pose.camera_to_world(pose.world_to_camera(point));
        prop_assert!((back - point).norm() < 1e-9 * (1.0 + point.norm()));
    }

    #[test]
    fn projection_unprojection_consistent(u in 1.0f64..750.0, v in 1.0f64..478.0, depth in 0.2f64..30.0) {
        let cam = CameraIntrinsics::euroc();
        let p = cam.unproject(Pixel::new(u, v), depth);
        let pix = cam.project(p).expect("unprojected point is in view");
        prop_assert!((pix.u - u).abs() < 1e-9);
        prop_assert!((pix.v - v).abs() < 1e-9);
    }

    #[test]
    fn rotation_matrix_quat_roundtrip(q in arb_quat()) {
        let q2 = rotation_matrix_to_quat(&q.to_rotation_matrix());
        prop_assert!(q.angle_to(q2) < 1e-6);
    }

    #[test]
    fn pose_perturbation_composes(q in arb_quat(), pos in arb_vec(5.0),
                                  d in prop::array::uniform6(-0.1f64..0.1)) {
        let pose = CameraPose::new(pos, q);
        let moved = pose.perturbed(&d);
        // Inverting the translation gets the position back exactly.
        let back = moved.perturbed(&[0.0, 0.0, 0.0, -d[3], -d[4], -d[5]]);
        prop_assert!((back.position - pose.position).norm() < 1e-12);
        // Small rotations have magnitude ≈ ‖ω‖.
        let omega = Vec3::new(d[0], d[1], d[2]).norm();
        prop_assert!((pose.angle_to(&moved) - omega).abs() < 1e-6 + omega * 1e-3);
    }

    #[test]
    fn looking_at_always_faces_the_target(pos in arb_vec(10.0), target in arb_vec(10.0)) {
        prop_assume!((target - pos).norm() > 0.5);
        let pose = CameraPose::looking_at(pos, target);
        let t_cam = pose.world_to_camera(target);
        prop_assert!(t_cam.z > 0.0, "target behind the camera: {t_cam}");
        // Target sits on the optical axis.
        prop_assert!(t_cam.x.abs() < 1e-6 * (1.0 + t_cam.z));
        prop_assert!(t_cam.y.abs() < 1e-6 * (1.0 + t_cam.z));
    }
}
