//! 256-bit binary feature descriptors (BRIEF/ORB-style) with Hamming
//! matching and Lowe-style ratio testing.

use drone_math::Pcg32;
use serde::{Deserialize, Serialize};

/// Number of 64-bit words in a descriptor (256 bits, like ORB).
pub const DESCRIPTOR_WORDS: usize = 4;

/// A 256-bit binary descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Descriptor(pub [u64; DESCRIPTOR_WORDS]);

impl Descriptor {
    /// A uniformly random descriptor.
    pub fn random(rng: &mut Pcg32) -> Descriptor {
        Descriptor(std::array::from_fn(|_| rng.next_u64()))
    }

    /// Hamming distance (0–256).
    pub fn hamming(&self, other: &Descriptor) -> u32 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// A copy with each bit independently flipped with probability `p`
    /// (sensor noise / viewpoint change).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn corrupted(&self, p: f64, rng: &mut Pcg32) -> Descriptor {
        assert!((0.0..=1.0).contains(&p), "flip probability out of range");
        let mut out = *self;
        if p <= 0.0 {
            return out;
        }
        for word in &mut out.0 {
            for bit in 0..64 {
                if rng.chance(p) {
                    *word ^= 1 << bit;
                }
            }
        }
        out
    }
}

/// Outcome of matching one query descriptor against a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the best candidate.
    pub index: usize,
    /// Hamming distance of the best candidate.
    pub distance: u32,
}

/// Brute-force nearest-neighbour matcher with a ratio test.
///
/// A match is accepted when the best distance is below
/// `max_distance` **and** clearly better than the second best
/// (`best < ratio · second_best`), rejecting ambiguous matches the way
/// ORB-SLAM's matcher does.
///
/// # Example
///
/// ```
/// use drone_slam::descriptor::{match_descriptor, Descriptor};
/// use drone_math::Pcg32;
/// let mut rng = Pcg32::seed_from(1);
/// let set: Vec<Descriptor> = (0..50).map(|_| Descriptor::random(&mut rng)).collect();
/// let query = set[7].corrupted(0.02, &mut rng);
/// let m = match_descriptor(&query, &set, 64, 0.8).expect("should match");
/// assert_eq!(m.index, 7);
/// ```
pub fn match_descriptor(
    query: &Descriptor,
    candidates: &[Descriptor],
    max_distance: u32,
    ratio: f64,
) -> Option<Match> {
    let mut best: Option<Match> = None;
    let mut second_best = u32::MAX;
    for (index, c) in candidates.iter().enumerate() {
        let d = query.hamming(c);
        match best {
            None => best = Some(Match { index, distance: d }),
            Some(b) if d < b.distance => {
                second_best = b.distance;
                best = Some(Match { index, distance: d });
            }
            Some(_) if d < second_best => second_best = d,
            _ => {}
        }
    }
    let b = best?;
    if b.distance > max_distance {
        return None;
    }
    if second_best != u32::MAX && f64::from(b.distance) >= ratio * f64::from(second_best) {
        return None;
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        let zero = Descriptor([0; 4]);
        let ones = Descriptor([u64::MAX; 4]);
        assert_eq!(zero.hamming(&zero), 0);
        assert_eq!(zero.hamming(&ones), 256);
        let one_bit = Descriptor([1, 0, 0, 0]);
        assert_eq!(zero.hamming(&one_bit), 1);
    }

    #[test]
    fn hamming_is_symmetric() {
        let mut rng = Pcg32::seed_from(2);
        for _ in 0..50 {
            let a = Descriptor::random(&mut rng);
            let b = Descriptor::random(&mut rng);
            assert_eq!(a.hamming(&b), b.hamming(&a));
        }
    }

    #[test]
    fn random_pairs_are_far() {
        // Expected distance 128, σ = 8: anything below 90 is essentially
        // impossible for random pairs.
        let mut rng = Pcg32::seed_from(3);
        for _ in 0..200 {
            let a = Descriptor::random(&mut rng);
            let b = Descriptor::random(&mut rng);
            assert!(a.hamming(&b) > 80, "{}", a.hamming(&b));
        }
    }

    #[test]
    fn corruption_rate_matches_p() {
        let mut rng = Pcg32::seed_from(4);
        let d = Descriptor::random(&mut rng);
        let mut total = 0;
        let trials = 200;
        for _ in 0..trials {
            total += d.hamming(&d.corrupted(0.05, &mut rng));
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 256.0 * 0.05).abs() < 2.0, "mean flips {mean}");
        assert_eq!(d.hamming(&d.corrupted(0.0, &mut rng)), 0);
    }

    #[test]
    fn matcher_finds_corrupted_twin() {
        let mut rng = Pcg32::seed_from(5);
        let set: Vec<Descriptor> = (0..500).map(|_| Descriptor::random(&mut rng)).collect();
        let mut hits = 0;
        for i in (0..500).step_by(7) {
            let query = set[i].corrupted(0.03, &mut rng);
            if let Some(m) = match_descriptor(&query, &set, 64, 0.8) {
                assert_eq!(m.index, i, "matched the wrong descriptor");
                hits += 1;
            }
        }
        assert!(hits > 60, "only {hits} matches");
    }

    #[test]
    fn matcher_rejects_unrelated_query() {
        let mut rng = Pcg32::seed_from(6);
        let set: Vec<Descriptor> = (0..100).map(|_| Descriptor::random(&mut rng)).collect();
        let stranger = Descriptor::random(&mut rng);
        assert!(match_descriptor(&stranger, &set, 64, 0.8).is_none());
    }

    #[test]
    fn ratio_test_rejects_ambiguity() {
        let mut rng = Pcg32::seed_from(7);
        let a = Descriptor::random(&mut rng);
        // Two identical candidates: perfectly ambiguous.
        let set = vec![a, a];
        assert!(match_descriptor(&a, &set, 64, 0.8).is_none());
    }

    #[test]
    fn empty_candidate_set() {
        let mut rng = Pcg32::seed_from(8);
        let q = Descriptor::random(&mut rng);
        assert!(match_descriptor(&q, &[], 64, 0.8).is_none());
    }

    #[test]
    fn single_candidate_skips_ratio_test() {
        let mut rng = Pcg32::seed_from(9);
        let a = Descriptor::random(&mut rng);
        let m = match_descriptor(&a, &[a], 64, 0.8).expect("exact match accepted");
        assert_eq!(m.distance, 0);
    }
}
