//! Bundle adjustment — the stage the paper's FPGA design accelerates
//! (~90 % of ORB-SLAM's RPi runtime, §5.2).
//!
//! Local BA refines the recent keyframe window and its covisible
//! landmarks; global BA periodically refines a subsampled version of the
//! whole map. Both minimize Huber-weighted reprojection error with the
//! workspace Levenberg–Marquardt over a delta parameterization
//! `[pose deltas (6 each) | landmark deltas (3 each)]`, first pose fixed
//! as the gauge.

use crate::camera::{CameraIntrinsics, CameraPose, Pixel};
use crate::map::{KeyframeId, LandmarkId, Map};
use drone_math::optimize::{LeastSquaresProblem, LevenbergMarquardt};
use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// Result of one bundle-adjustment run (also feeds the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaReport {
    /// Cost before optimization (½‖r‖²).
    pub initial_cost: f64,
    /// Cost after optimization.
    pub final_cost: f64,
    /// LM iterations performed.
    pub iterations: usize,
    /// Number of scalar residuals.
    pub residual_count: usize,
    /// Number of free parameters.
    pub parameter_count: usize,
}

impl BaReport {
    /// Fraction of initial cost eliminated.
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            0.0
        } else {
            (1.0 - self.final_cost / self.initial_cost).max(0.0)
        }
    }
}

struct BaProblem<'a> {
    intrinsics: &'a CameraIntrinsics,
    base_poses: Vec<CameraPose>,
    /// `true` = pose is fixed (gauge), carries no parameters.
    fixed: Vec<bool>,
    base_landmarks: Vec<Vec3>,
    /// `(pose index, landmark index, observed pixel)`.
    observations: Vec<(usize, usize, Pixel)>,
    /// IRLS weights, one per observation, held fixed during LM.
    weights: Vec<f64>,
}

impl BaProblem<'_> {
    fn free_pose_count(&self) -> usize {
        self.fixed.iter().filter(|&&f| !f).count()
    }

    fn decode(&self, x: &[f64]) -> (Vec<CameraPose>, Vec<Vec3>) {
        let mut poses = self.base_poses.clone();
        let mut cursor = 0;
        for (i, pose) in poses.iter_mut().enumerate() {
            if self.fixed[i] {
                continue;
            }
            let d = [
                x[cursor],
                x[cursor + 1],
                x[cursor + 2],
                x[cursor + 3],
                x[cursor + 4],
                x[cursor + 5],
            ];
            *pose = pose.perturbed(&d);
            cursor += 6;
        }
        let mut landmarks = self.base_landmarks.clone();
        for lm in landmarks.iter_mut() {
            *lm += Vec3::new(x[cursor], x[cursor + 1], x[cursor + 2]);
            cursor += 3;
        }
        (poses, landmarks)
    }
}

impl LeastSquaresProblem for BaProblem<'_> {
    fn num_params(&self) -> usize {
        self.free_pose_count() * 6 + self.base_landmarks.len() * 3
    }
    fn num_residuals(&self) -> usize {
        self.observations.len() * 2
    }
    fn residuals(&self, x: &[f64]) -> Vec<f64> {
        let (poses, landmarks) = self.decode(x);
        let mut out = Vec::with_capacity(self.num_residuals());
        for (&(pi, li, pixel), &w) in self.observations.iter().zip(&self.weights) {
            let (eu, ev) = reprojection_error(self.intrinsics, &poses[pi], landmarks[li], pixel);
            out.push(eu * w);
            out.push(ev * w);
        }
        out
    }
}

/// Signed reprojection error of one observation; points behind the
/// camera get a large smooth penalty to keep LM differentiable.
fn reprojection_error(
    intrinsics: &CameraIntrinsics,
    pose: &CameraPose,
    landmark: Vec3,
    pixel: Pixel,
) -> (f64, f64) {
    let p_cam = pose.world_to_camera(landmark);
    if p_cam.z <= 0.05 {
        (40.0 + p_cam.z.abs() * 5.0, 40.0 + p_cam.z.abs() * 5.0)
    } else {
        (
            intrinsics.fx * p_cam.x / p_cam.z + intrinsics.cx - pixel.u,
            intrinsics.fy * p_cam.y / p_cam.z + intrinsics.cy - pixel.v,
        )
    }
}

/// Shared driver for local/global BA over an explicit keyframe/landmark
/// selection. Optimized values are written back into the map.
fn bundle_adjust(
    map: &mut Map,
    intrinsics: &CameraIntrinsics,
    keyframe_ids: &[KeyframeId],
    landmark_ids: &[LandmarkId],
    max_iterations: usize,
) -> Option<BaReport> {
    if keyframe_ids.is_empty() || landmark_ids.is_empty() {
        return None;
    }
    // Dense index maps.
    let mut landmark_index = vec![usize::MAX; map.landmark_count()];
    for (dense, &id) in landmark_ids.iter().enumerate() {
        landmark_index[id] = dense;
    }
    let base_poses: Vec<CameraPose> = keyframe_ids
        .iter()
        .map(|&k| map.keyframes()[k].pose)
        .collect();
    let base_landmarks: Vec<Vec3> = landmark_ids
        .iter()
        .map(|&l| map.landmarks()[l].position)
        .collect();
    let mut observations = Vec::new();
    for (pi, &kf) in keyframe_ids.iter().enumerate() {
        for obs in &map.keyframes()[kf].observations {
            let li = landmark_index[obs.landmark];
            if li != usize::MAX {
                observations.push((pi, li, obs.pixel));
            }
        }
    }
    if observations.len() < 8 {
        return None;
    }
    // Gauge: fix the first TWO keyframes. One fixed pose still leaves a
    // scale freedom in reprojection-only BA (the window can shrink or
    // grow around that camera's centre, and the drift compounds across
    // sliding windows); a fixed two-camera baseline pins scale the way
    // stereo residuals would.
    let mut fixed = vec![false; keyframe_ids.len()];
    fixed[0] = true;
    if fixed.len() > 1 {
        fixed[1] = true;
    }

    // Two IRLS rounds: unweighted, then Huber-reweighted from the first
    // round's residuals (weights stay fixed inside each LM run).
    let huber_px = 3.0;
    let mut poses = base_poses;
    let mut landmarks = base_landmarks;
    let mut initial_cost = f64::NAN;
    let mut final_cost = f64::NAN;
    let mut iterations = 0usize;
    let n_obs = observations.len();
    let mut weights = vec![1.0; n_obs];
    let mut n_params = 0;
    for round in 0..2 {
        if round > 0 {
            for (i, &(pi, li, pixel)) in observations.iter().enumerate() {
                let (eu, ev) = reprojection_error(intrinsics, &poses[pi], landmarks[li], pixel);
                weights[i] = {
                    let e = (eu * eu + ev * ev).sqrt();
                    if e <= huber_px {
                        1.0
                    } else {
                        (huber_px / e).sqrt()
                    }
                };
            }
        }
        let problem = BaProblem {
            intrinsics,
            base_poses: poses.clone(),
            fixed: fixed.clone(),
            base_landmarks: landmarks.clone(),
            observations: observations.clone(),
            weights: weights.clone(),
        };
        n_params = problem.num_params();
        let report = LevenbergMarquardt::new()
            .with_max_iterations(max_iterations)
            .with_cost_tolerance(1e-6)
            .minimize(&problem, &vec![0.0; n_params]);
        if !report.params.iter().all(|p| p.is_finite()) {
            return None;
        }
        let (p, l) = problem.decode(&report.params);
        poses = p;
        landmarks = l;
        if round == 0 {
            initial_cost = report.initial_cost;
        }
        final_cost = report.cost;
        iterations += report.iterations;
    }
    // Write back.
    for (pi, &kf) in keyframe_ids.iter().enumerate() {
        map.keyframe_mut(kf).pose = poses[pi];
    }
    for (li, &lm) in landmark_ids.iter().enumerate() {
        map.landmark_mut(lm).position = landmarks[li];
    }
    Some(BaReport {
        initial_cost,
        final_cost,
        iterations,
        residual_count: n_obs * 2,
        parameter_count: n_params,
    })
}

/// Local bundle adjustment over the most recent `window` keyframes and
/// up to `max_landmarks` of their best-observed covisible landmarks.
pub fn local_bundle_adjustment(
    map: &mut Map,
    intrinsics: &CameraIntrinsics,
    window: usize,
    max_landmarks: usize,
) -> Option<BaReport> {
    let keyframes = map.recent_keyframes(window);
    let mut landmarks = map.covisible_landmarks(&keyframes);
    // Prefer well-observed landmarks.
    landmarks.sort_by_key(|&l| std::cmp::Reverse(map.landmarks()[l].observation_count));
    landmarks.truncate(max_landmarks);
    bundle_adjust(map, intrinsics, &keyframes, &landmarks, 10)
}

/// Global bundle adjustment over a subsampled map: every keyframe up to
/// a stride-derived cap of `max_keyframes` poses, and up to
/// `max_landmarks` best-observed landmarks.
pub fn global_bundle_adjustment(
    map: &mut Map,
    intrinsics: &CameraIntrinsics,
    max_keyframes: usize,
    max_landmarks: usize,
) -> Option<BaReport> {
    let total = map.keyframe_count();
    if total == 0 {
        return None;
    }
    let stride = total.div_ceil(max_keyframes);
    let keyframes: Vec<KeyframeId> = (0..total).step_by(stride.max(1)).collect();
    let mut landmarks = map.covisible_landmarks(&keyframes);
    landmarks.sort_by_key(|&l| std::cmp::Reverse(map.landmarks()[l].observation_count));
    landmarks.truncate(max_landmarks);
    bundle_adjust(map, intrinsics, &keyframes, &landmarks, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use crate::map::{Keyframe, KeyframeObservation};
    use drone_math::{Pcg32, Quat};

    /// Build a map with `n_kf` keyframes observing `n_lm` landmarks,
    /// with configurable corruption of initial estimates.
    fn noisy_map(
        n_kf: usize,
        n_lm: usize,
        pose_err: f64,
        lm_err: f64,
        rng: &mut Pcg32,
    ) -> (Map, Vec<CameraPose>, Vec<Vec3>, CameraIntrinsics) {
        let cam = CameraIntrinsics::euroc();
        let truth_landmarks: Vec<Vec3> = (0..n_lm)
            .map(|_| {
                Vec3::new(
                    rng.uniform(-4.0, 4.0),
                    rng.uniform(-3.0, 3.0),
                    rng.uniform(5.0, 12.0),
                )
            })
            .collect();
        let truth_poses: Vec<CameraPose> = (0..n_kf)
            .map(|i| {
                CameraPose::new(
                    Vec3::new(i as f64 * 0.3, 0.0, 0.0),
                    Quat::from_euler(0.0, 0.0, rng.uniform(-0.05, 0.05)),
                )
            })
            .collect();
        let mut map = Map::new();
        let ids: Vec<_> = truth_landmarks
            .iter()
            .map(|&p| {
                let noisy = p + Vec3::new(
                    rng.normal_with(0.0, lm_err),
                    rng.normal_with(0.0, lm_err),
                    rng.normal_with(0.0, lm_err),
                );
                map.add_landmark(noisy, Descriptor::random(rng))
            })
            .collect();
        for (i, truth_pose) in truth_poses.iter().enumerate() {
            let observations: Vec<KeyframeObservation> = truth_landmarks
                .iter()
                .enumerate()
                .filter_map(|(li, &lm)| {
                    let pix = cam.project(truth_pose.world_to_camera(lm))?;
                    Some(KeyframeObservation {
                        landmark: ids[li],
                        pixel: pix,
                    })
                })
                .collect();
            // First two poses exact (the scale-pinning gauge pair),
            // later ones corrupted.
            let noisy_pose = if i <= 1 {
                *truth_pose
            } else {
                CameraPose::new(
                    truth_pose.position
                        + Vec3::new(
                            rng.normal_with(0.0, pose_err),
                            rng.normal_with(0.0, pose_err),
                            rng.normal_with(0.0, pose_err),
                        ),
                    truth_pose.orientation,
                )
            };
            map.add_keyframe(Keyframe {
                pose: noisy_pose,
                timestamp: i as f64,
                observations,
            });
        }
        (map, truth_poses, truth_landmarks, cam)
    }

    #[test]
    fn local_ba_reduces_cost_substantially() {
        let mut rng = Pcg32::seed_from(1);
        let (mut map, _, _, cam) = noisy_map(4, 30, 0.10, 0.10, &mut rng);
        let report = local_bundle_adjustment(&mut map, &cam, 4, 30).expect("ran");
        assert!(
            report.improvement() > 0.9,
            "improvement {}",
            report.improvement()
        );
        assert!(report.final_cost < report.initial_cost);
    }

    #[test]
    fn local_ba_recovers_truth() {
        let mut rng = Pcg32::seed_from(2);
        let (mut map, truth_poses, truth_landmarks, cam) = noisy_map(4, 30, 0.08, 0.08, &mut rng);
        local_bundle_adjustment(&mut map, &cam, 4, 30).expect("ran");
        for (i, tp) in truth_poses.iter().enumerate() {
            let err = map.keyframes()[i].pose.distance_to(tp);
            assert!(err < 0.02, "keyframe {i} error {err}");
        }
        for (i, tl) in truth_landmarks.iter().enumerate() {
            let err = (map.landmarks()[i].position - *tl).norm();
            assert!(err < 0.05, "landmark {i} error {err}");
        }
    }

    #[test]
    fn gauge_keyframe_stays_fixed() {
        let mut rng = Pcg32::seed_from(3);
        let (mut map, truth_poses, _, cam) = noisy_map(3, 25, 0.1, 0.1, &mut rng);
        let before = map.keyframes()[0].pose;
        local_bundle_adjustment(&mut map, &cam, 3, 25).expect("ran");
        let after = map.keyframes()[0].pose;
        assert!(before.distance_to(&after) < 1e-12);
        // angle_to has an acos precision floor near zero (~1e-7).
        assert!(before.angle_to(&after) < 1e-6);
        // And it equals the truth (we seeded it exactly).
        assert!(after.distance_to(&truth_poses[0]) < 1e-12);
    }

    #[test]
    fn global_ba_handles_larger_maps() {
        let mut rng = Pcg32::seed_from(4);
        let (mut map, _, _, cam) = noisy_map(10, 40, 0.06, 0.06, &mut rng);
        let report = global_bundle_adjustment(&mut map, &cam, 6, 40).expect("ran");
        assert!(
            report.improvement() > 0.5,
            "improvement {}",
            report.improvement()
        );
        // Subsampling: no more than 6 poses optimized.
        assert!(report.parameter_count <= (6 - 1) * 6 + 40 * 3);
    }

    #[test]
    fn empty_map_returns_none() {
        let mut map = Map::new();
        let cam = CameraIntrinsics::euroc();
        assert!(local_bundle_adjustment(&mut map, &cam, 5, 50).is_none());
        assert!(global_bundle_adjustment(&mut map, &cam, 5, 50).is_none());
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut rng = Pcg32::seed_from(5);
        let (mut map, _, _, cam) = noisy_map(3, 20, 0.05, 0.05, &mut rng);
        let report = local_bundle_adjustment(&mut map, &cam, 3, 20).expect("ran");
        // 1 free pose × 6 (two of three are the gauge pair) + 20
        // landmarks × 3.
        assert_eq!(report.parameter_count, 6 + 20 * 3);
        assert!(report.residual_count >= 8);
        assert!(report.iterations >= 1);
    }
}
