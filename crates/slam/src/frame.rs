//! Worlds, frames and observations.
//!
//! A [`World`] is a cloud of landmarks with ground-truth positions and
//! descriptors. Rendering a frame from a camera pose projects the visible
//! landmarks, then corrupts the result the way a real detector would:
//! pixel noise, stereo-depth noise that grows with range, descriptor bit
//! flips, dropped detections, and spurious clutter observations.

use crate::camera::{CameraIntrinsics, CameraPose, Pixel};
use crate::descriptor::Descriptor;
use drone_math::{Pcg32, Vec3};
use serde::{Deserialize, Serialize};

/// A ground-truth world landmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Landmark {
    /// True position, world frame (m).
    pub position: Vec3,
    /// True appearance descriptor.
    pub descriptor: Descriptor,
}

/// The static world the drone flies through.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// All landmarks.
    pub landmarks: Vec<Landmark>,
}

impl World {
    /// Generates a room-like world: landmarks scattered over the walls,
    /// floor and ceiling of a box centred on the origin.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the half-extents are not positive.
    pub fn room(count: usize, half_extent: Vec3, rng: &mut Pcg32) -> World {
        assert!(count > 0, "world needs landmarks");
        assert!(
            half_extent.x > 0.0 && half_extent.y > 0.0 && half_extent.z > 0.0,
            "half extents must be positive"
        );
        let mut landmarks = Vec::with_capacity(count);
        for _ in 0..count {
            // Pick a wall (one axis pinned to ±extent), scatter the rest.
            let axis = rng.below(3) as usize;
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            let mut p = Vec3::new(
                rng.uniform(-half_extent.x, half_extent.x),
                rng.uniform(-half_extent.y, half_extent.y),
                rng.uniform(-half_extent.z, half_extent.z),
            );
            p[axis] = sign * half_extent[axis];
            landmarks.push(Landmark {
                position: p,
                descriptor: Descriptor::random(rng),
            });
        }
        World { landmarks }
    }
}

/// One detected feature in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Measured pixel position (noisy).
    pub pixel: Pixel,
    /// Measured stereo depth (noisy), metres.
    pub depth: f64,
    /// Measured descriptor (corrupted).
    pub descriptor: Descriptor,
    /// Ground-truth landmark index, or `None` for clutter. Hidden from
    /// the pipeline; used only for evaluation.
    pub truth_landmark: Option<usize>,
}

/// A rendered camera frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Frame {
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// Detected features.
    pub observations: Vec<Observation>,
    /// Ground-truth camera pose (for evaluation only).
    pub truth_pose: CameraPose,
}

/// Sensor corruption levels used when rendering frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorNoise {
    /// Pixel measurement noise σ.
    pub pixel_sigma: f64,
    /// Relative depth noise σ (multiplied by depth).
    pub depth_rel_sigma: f64,
    /// Descriptor bit-flip probability.
    pub descriptor_flip: f64,
    /// Probability a visible landmark goes undetected.
    pub dropout: f64,
    /// Number of clutter (false) detections per frame.
    pub clutter: usize,
    /// Maximum detection range, metres.
    pub max_range: f64,
}

impl SensorNoise {
    /// A well-lit, slow sequence.
    pub fn easy() -> SensorNoise {
        SensorNoise {
            pixel_sigma: 0.4,
            depth_rel_sigma: 0.01,
            descriptor_flip: 0.015,
            dropout: 0.05,
            clutter: 5,
            max_range: 18.0,
        }
    }

    /// Faster motion, more blur.
    pub fn medium() -> SensorNoise {
        SensorNoise {
            pixel_sigma: 0.8,
            depth_rel_sigma: 0.02,
            descriptor_flip: 0.03,
            dropout: 0.12,
            clutter: 12,
            max_range: 15.0,
        }
    }

    /// Aggressive motion, low light.
    pub fn difficult() -> SensorNoise {
        SensorNoise {
            pixel_sigma: 1.4,
            depth_rel_sigma: 0.04,
            descriptor_flip: 0.05,
            dropout: 0.22,
            clutter: 25,
            max_range: 12.0,
        }
    }
}

/// Renders the world from a pose into a corrupted frame.
pub fn render_frame(
    world: &World,
    intrinsics: &CameraIntrinsics,
    pose: &CameraPose,
    noise: &SensorNoise,
    timestamp: f64,
    rng: &mut Pcg32,
) -> Frame {
    let mut observations = Vec::new();
    for (i, lm) in world.landmarks.iter().enumerate() {
        let p_cam = pose.world_to_camera(lm.position);
        if p_cam.z > noise.max_range {
            continue;
        }
        let Some(pixel) = intrinsics.project(p_cam) else {
            continue;
        };
        if rng.chance(noise.dropout) {
            continue;
        }
        let noisy_pixel = Pixel::new(
            pixel.u + rng.normal_with(0.0, noise.pixel_sigma),
            pixel.v + rng.normal_with(0.0, noise.pixel_sigma),
        );
        let depth = (p_cam.z * (1.0 + rng.normal_with(0.0, noise.depth_rel_sigma))).max(0.1);
        observations.push(Observation {
            pixel: noisy_pixel,
            depth,
            descriptor: lm.descriptor.corrupted(noise.descriptor_flip, rng),
            truth_landmark: Some(i),
        });
    }
    // Clutter: random pixels with random descriptors and depths.
    for _ in 0..noise.clutter {
        observations.push(Observation {
            pixel: Pixel::new(
                rng.uniform(0.0, f64::from(intrinsics.width)),
                rng.uniform(0.0, f64::from(intrinsics.height)),
            ),
            depth: rng.uniform(0.5, noise.max_range),
            descriptor: Descriptor::random(rng),
            truth_landmark: None,
        });
    }
    Frame {
        timestamp,
        observations,
        truth_pose: *pose,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (World, CameraIntrinsics, Pcg32) {
        let mut rng = Pcg32::seed_from(11);
        let world = World::room(800, Vec3::new(8.0, 6.0, 3.0), &mut rng);
        (world, CameraIntrinsics::euroc(), rng)
    }

    #[test]
    fn room_landmarks_sit_on_walls() {
        let (world, _, _) = setup();
        for lm in &world.landmarks {
            let p = lm.position;
            let on_wall = (p.x.abs() - 8.0).abs() < 1e-9
                || (p.y.abs() - 6.0).abs() < 1e-9
                || (p.z.abs() - 3.0).abs() < 1e-9;
            assert!(on_wall, "{p} floats in mid-air");
        }
    }

    #[test]
    fn frame_sees_a_reasonable_feature_count() {
        let (world, cam, mut rng) = setup();
        let pose = CameraPose::looking_at(Vec3::ZERO, Vec3::new(8.0, 0.0, 0.0));
        let frame = render_frame(&world, &cam, &pose, &SensorNoise::easy(), 0.0, &mut rng);
        let real = frame
            .observations
            .iter()
            .filter(|o| o.truth_landmark.is_some())
            .count();
        assert!((30..500).contains(&real), "{real} features");
    }

    #[test]
    fn observations_have_accurate_geometry() {
        let (world, cam, mut rng) = setup();
        let pose = CameraPose::looking_at(Vec3::ZERO, Vec3::new(8.0, 0.0, 0.0));
        let frame = render_frame(&world, &cam, &pose, &SensorNoise::easy(), 0.0, &mut rng);
        for obs in frame
            .observations
            .iter()
            .filter(|o| o.truth_landmark.is_some())
        {
            let lm = world.landmarks[obs.truth_landmark.unwrap()];
            // Back-project through the truth pose: should land near the
            // true landmark.
            let p = pose.camera_to_world(cam.unproject(obs.pixel, obs.depth));
            let err = (p - lm.position).norm();
            assert!(err < 1.5, "reconstruction error {err} m");
        }
    }

    #[test]
    fn clutter_has_no_truth() {
        let (world, cam, mut rng) = setup();
        let pose = CameraPose::identity();
        let noise = SensorNoise::difficult();
        let frame = render_frame(&world, &cam, &pose, &noise, 0.0, &mut rng);
        let clutter = frame
            .observations
            .iter()
            .filter(|o| o.truth_landmark.is_none())
            .count();
        assert_eq!(clutter, noise.clutter);
    }

    #[test]
    fn difficulty_monotonic_in_noise() {
        let e = SensorNoise::easy();
        let m = SensorNoise::medium();
        let d = SensorNoise::difficult();
        assert!(e.pixel_sigma < m.pixel_sigma && m.pixel_sigma < d.pixel_sigma);
        assert!(e.dropout < m.dropout && m.dropout < d.dropout);
        assert!(e.clutter < m.clutter && m.clutter < d.clutter);
    }

    #[test]
    fn deterministic_rendering() {
        let (world, cam, _) = setup();
        let pose = CameraPose::looking_at(Vec3::ZERO, Vec3::new(8.0, 0.0, 0.0));
        let mut r1 = Pcg32::seed_from(77);
        let mut r2 = Pcg32::seed_from(77);
        let f1 = render_frame(&world, &cam, &pose, &SensorNoise::easy(), 0.0, &mut r1);
        let f2 = render_frame(&world, &cam, &pose, &SensorNoise::easy(), 0.0, &mut r2);
        assert_eq!(f1.observations, f2.observations);
    }

    #[test]
    #[should_panic(expected = "world needs landmarks")]
    fn empty_world_panics() {
        let mut rng = Pcg32::seed_from(0);
        let _ = World::room(0, Vec3::splat(1.0), &mut rng);
    }
}
