//! Trajectory accuracy metrics ("while confirming SLAM key metrics",
//! paper §5): absolute trajectory error and relative pose error.

use crate::camera::CameraPose;

/// Absolute trajectory error: RMS of position differences between the
/// estimated and ground-truth trajectories (both anchored at the first
/// pose, which is how the pipeline initializes).
///
/// # Panics
///
/// Panics if the trajectories differ in length or are empty.
pub fn absolute_trajectory_error(estimate: &[CameraPose], truth: &[CameraPose]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "trajectory lengths differ");
    assert!(!estimate.is_empty(), "empty trajectory");
    let n = estimate.len() as f64;
    let sq: f64 = estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e.position - t.position).norm_squared())
        .sum();
    (sq / n).sqrt()
}

/// Relative pose error over `delta`-step windows: RMS of the translation
/// drift per window, a local-consistency measure insensitive to global
/// drift.
///
/// # Panics
///
/// Panics if lengths differ, the trajectory is shorter than `delta + 1`,
/// or `delta` is zero.
pub fn relative_pose_error(estimate: &[CameraPose], truth: &[CameraPose], delta: usize) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "trajectory lengths differ");
    assert!(delta > 0, "delta must be positive");
    assert!(estimate.len() > delta, "trajectory shorter than delta");
    let mut sq = 0.0;
    let mut n = 0usize;
    for i in 0..(estimate.len() - delta) {
        let est_step = estimate[i + delta].position - estimate[i].position;
        let truth_step = truth[i + delta].position - truth[i].position;
        sq += (est_step - truth_step).norm_squared();
        n += 1;
    }
    (sq / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Vec3;

    fn line(n: usize, step: Vec3) -> Vec<CameraPose> {
        (0..n)
            .map(|i| CameraPose::new(step * i as f64, Default::default()))
            .collect()
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let t = line(20, Vec3::new(0.1, 0.0, 0.0));
        assert!(absolute_trajectory_error(&t, &t) < 1e-15);
        assert!(relative_pose_error(&t, &t, 5) < 1e-15);
    }

    #[test]
    fn constant_offset_shows_in_ate_not_rpe() {
        let truth = line(20, Vec3::new(0.1, 0.0, 0.0));
        let mut est = truth.clone();
        for p in &mut est {
            p.position += Vec3::new(0.0, 0.5, 0.0);
        }
        assert!((absolute_trajectory_error(&est, &truth) - 0.5).abs() < 1e-12);
        assert!(relative_pose_error(&est, &truth, 3) < 1e-12);
    }

    #[test]
    fn growing_drift_shows_in_both() {
        let truth = line(50, Vec3::new(0.1, 0.0, 0.0));
        let est: Vec<CameraPose> = truth
            .iter()
            .enumerate()
            .map(|(i, p)| {
                CameraPose::new(
                    p.position + Vec3::new(0.0, 0.01 * i as f64, 0.0),
                    p.orientation,
                )
            })
            .collect();
        assert!(absolute_trajectory_error(&est, &truth) > 0.1);
        assert!(relative_pose_error(&est, &truth, 10) > 0.05);
    }

    #[test]
    fn ate_known_value() {
        let truth = line(2, Vec3::ZERO);
        let est = vec![
            CameraPose::new(Vec3::new(3.0, 0.0, 0.0), Default::default()),
            CameraPose::new(Vec3::new(0.0, 4.0, 0.0), Default::default()),
        ];
        // RMS of (3, 4) = √((9+16)/2).
        let expect = (25.0f64 / 2.0).sqrt();
        assert!((absolute_trajectory_error(&est, &truth) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let a = line(5, Vec3::ZERO);
        let b = line(6, Vec3::ZERO);
        let _ = absolute_trajectory_error(&a, &b);
    }

    #[test]
    #[should_panic(expected = "shorter than delta")]
    fn rpe_delta_too_large_panics() {
        let a = line(5, Vec3::ZERO);
        let _ = relative_pose_error(&a, &a, 5);
    }
}
