//! The SLAM tracker: frame in, pose out, map maintained — with a virtual
//! RPi-time cost model per stage.
//!
//! The paper's Figure 17 splits ORB-SLAM runtime into *feature
//! extraction/matching*, *local bundle adjustment* and *global bundle
//! adjustment*, with the BA stages ≈90 % of the RPi total. The pipeline
//! accumulates modelled RPi-seconds per stage from the actual work it
//! performs (descriptor comparisons, LM iterations × problem sizes), so
//! platform models can be applied per stage to reproduce Figure 17 and
//! Table 5.

use crate::ba::{global_bundle_adjustment, local_bundle_adjustment};
use crate::camera::CameraPose;
use crate::descriptor::match_descriptor;
use crate::euroc::Dataset;
use crate::map::{Keyframe, KeyframeObservation, Map};
use crate::metrics::{absolute_trajectory_error, relative_pose_error};
use crate::pose::{absolute_orientation, estimate_pose, Correspondence, PointPair};
use drone_telemetry::{Clock, Counter, Registry, SharedHistogram};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Translation from the last keyframe that triggers a new one, m.
    pub keyframe_translation: f64,
    /// Rotation from the last keyframe that triggers a new one, rad.
    pub keyframe_rotation: f64,
    /// Match count below which a keyframe is forced.
    pub keyframe_min_matches: usize,
    /// Local-BA keyframe window.
    pub local_ba_window: usize,
    /// Local-BA landmark cap.
    pub local_ba_landmarks: usize,
    /// Run global BA every this many keyframes.
    pub global_ba_every: usize,
    /// Global-BA pose cap (subsampled).
    pub global_ba_keyframes: usize,
    /// Global-BA landmark cap.
    pub global_ba_landmarks: usize,
    /// Hamming acceptance threshold for matching.
    pub match_max_distance: u32,
    /// Ratio-test threshold.
    pub match_ratio: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            keyframe_translation: 0.25,
            keyframe_rotation: 0.20,
            keyframe_min_matches: 25,
            local_ba_window: 4,
            local_ba_landmarks: 40,
            global_ba_every: 8,
            global_ba_keyframes: 10,
            global_ba_landmarks: 60,
            match_max_distance: 64,
            match_ratio: 0.8,
        }
    }
}

/// Virtual RPi-seconds per pipeline stage (Figure 17 categories).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageProfile {
    /// Feature extraction + matching + tracking pose optimization.
    pub feature_matching_s: f64,
    /// Local bundle adjustment.
    pub local_ba_s: f64,
    /// Global bundle adjustment.
    pub global_ba_s: f64,
}

impl StageProfile {
    /// Total modelled time.
    pub fn total(&self) -> f64 {
        self.feature_matching_s + self.local_ba_s + self.global_ba_s
    }

    /// Stage fractions `(feature, local BA, global BA)`; zeros if empty.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.feature_matching_s / t,
                self.local_ba_s / t,
                self.global_ba_s / t,
            )
        }
    }

    /// Combined bundle-adjustment share of the total.
    pub fn ba_fraction(&self) -> f64 {
        let (_, l, g) = self.fractions();
        l + g
    }
}

impl fmt::Display for StageProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (fe, l, g) = self.fractions();
        write!(
            f,
            "{:.2} s (feature/match {:.0}%, local BA {:.0}%, global BA {:.0}%)",
            self.total(),
            fe * 100.0,
            l * 100.0,
            g * 100.0
        )
    }
}

/// RPi cost-model constants, calibrated so the stage split lands near the
/// paper's ~10 % feature / ~90 % BA and the RPi runs a few FPS.
mod cost {
    /// Fixed per-frame FAST/ORB extraction cost, s.
    pub const EXTRACT_FRAME: f64 = 0.028;
    /// Per-detected-feature descriptor cost, s.
    pub const EXTRACT_PER_FEATURE: f64 = 2.0e-5;
    /// Per Hamming comparison, s.
    pub const MATCH_PER_COMPARISON: f64 = 2.0e-8;
    /// Per pose-LM iteration × correspondence, s.
    pub const POSE_PER_ITER_MATCH: f64 = 1.0e-6;
    /// Per BA iteration × residual × parameter, s (dense matrix algebra
    /// on the RPi — exactly what the paper's FPGA pipeline replaces).
    pub const BA_PER_ITER_RES_PARAM: f64 = 2.5e-6;
}

/// Result of running the pipeline over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Estimated pose per frame.
    pub trajectory: Vec<CameraPose>,
    /// Absolute trajectory error vs ground truth, m.
    pub ate_meters: f64,
    /// Relative pose error (20-frame windows), m.
    pub rpe_meters: f64,
    /// Modelled RPi stage profile.
    pub profile: StageProfile,
    /// Keyframes created.
    pub keyframes: usize,
    /// Landmarks mapped.
    pub landmarks: usize,
    /// Frames processed.
    pub frames: usize,
    /// Frames with successful pose tracking.
    pub tracked_frames: usize,
}

/// The SLAM tracker.
///
/// # Example
///
/// ```
/// use drone_slam::euroc::Sequence;
/// use drone_slam::pipeline::{Pipeline, PipelineConfig};
/// let dataset = Sequence::MH01.generate_with_frames(60);
/// let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
/// assert_eq!(result.frames, 60);
/// assert!(result.ate_meters.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    map: Map,
    current_pose: CameraPose,
    last_keyframe_pose: CameraPose,
    profile: StageProfile,
    keyframes_since_global_ba: usize,
    consecutive_failures: usize,
    relocalizations: usize,
    telemetry: Option<SlamTelemetry>,
}

/// Per-stage metrics the pipeline records into once attached via
/// [`Pipeline::attach_telemetry`]: real wall time per frame plus the
/// modelled RPi-seconds each Figure 17 stage contributed.
#[derive(Debug, Clone)]
struct SlamTelemetry {
    clock: Clock,
    frame_seconds: Arc<SharedHistogram>,
    feature: Arc<SharedHistogram>,
    local_ba: Arc<SharedHistogram>,
    global_ba: Arc<SharedHistogram>,
    relocalizations: Arc<Counter>,
}

impl Pipeline {
    /// Creates an idle pipeline.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline {
            config,
            map: Map::new(),
            current_pose: CameraPose::identity(),
            last_keyframe_pose: CameraPose::identity(),
            profile: StageProfile::default(),
            keyframes_since_global_ba: 0,
            consecutive_failures: 0,
            relocalizations: 0,
            telemetry: None,
        }
    }

    /// Attaches telemetry: every frame processed by [`Pipeline::run`]
    /// then records its real wall time (`slam.frame.seconds`), the
    /// modelled RPi-seconds added per stage (`slam.feature.rpi_s`,
    /// `slam.local_ba.rpi_s`, `slam.global_ba.rpi_s` — the Figure 17
    /// categories) and relocalization recoveries
    /// (`slam.relocalizations`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(SlamTelemetry {
            clock: registry.clock().clone(),
            frame_seconds: registry.histogram("slam.frame.seconds"),
            feature: registry.histogram("slam.feature.rpi_s"),
            local_ba: registry.histogram("slam.local_ba.rpi_s"),
            global_ba: registry.histogram("slam.global_ba.rpi_s"),
            relocalizations: registry.counter("slam.relocalizations"),
        });
    }

    /// How many times tracking was recovered by relocalization.
    pub fn relocalizations(&self) -> usize {
        self.relocalizations
    }

    /// The map built so far.
    pub fn map(&self) -> &Map {
        &self.map
    }

    /// Accumulated stage profile.
    pub fn profile(&self) -> StageProfile {
        self.profile
    }

    /// Runs the full dataset, returning trajectory, accuracy and profile.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no frames.
    pub fn run(&mut self, dataset: &Dataset) -> RunResult {
        assert!(!dataset.frames.is_empty(), "dataset has no frames");
        let mut trajectory = Vec::with_capacity(dataset.frames.len());
        let mut tracked = 0usize;
        for (i, frame) in dataset.frames.iter().enumerate() {
            let frame_start = self.telemetry.as_ref().map(|t| t.clock.now());
            let before = self.profile;
            let relocs_before = self.relocalizations;
            if i == 0 {
                // Anchor the estimate frame at the first camera pose (the
                // usual dataset convention) and bootstrap the map from
                // the stereo depths.
                self.current_pose = frame.truth_pose;
                self.last_keyframe_pose = frame.truth_pose;
                self.bootstrap(dataset, frame);
                trajectory.push(self.current_pose);
                tracked += 1;
            } else {
                if self.track(dataset, frame) {
                    tracked += 1;
                }
                trajectory.push(self.current_pose);
            }
            if let (Some(start), Some(tel)) = (frame_start, &self.telemetry) {
                tel.frame_seconds.record(tel.clock.now() - start);
                tel.feature
                    .record(self.profile.feature_matching_s - before.feature_matching_s);
                if self.profile.local_ba_s > before.local_ba_s {
                    tel.local_ba
                        .record(self.profile.local_ba_s - before.local_ba_s);
                }
                if self.profile.global_ba_s > before.global_ba_s {
                    tel.global_ba
                        .record(self.profile.global_ba_s - before.global_ba_s);
                }
                tel.relocalizations
                    .add((self.relocalizations - relocs_before) as u64);
            }
        }
        let truth = dataset.truth_trajectory();
        let ate = absolute_trajectory_error(&trajectory, &truth);
        let rpe = if trajectory.len() > 20 {
            relative_pose_error(&trajectory, &truth, 20)
        } else {
            0.0
        };
        RunResult {
            ate_meters: ate,
            rpe_meters: rpe,
            profile: self.profile,
            keyframes: self.map.keyframe_count(),
            landmarks: self.map.landmark_count(),
            frames: dataset.frames.len(),
            tracked_frames: tracked,
            trajectory,
        }
    }

    fn bootstrap(&mut self, dataset: &Dataset, frame: &crate::frame::Frame) {
        self.profile.feature_matching_s +=
            cost::EXTRACT_FRAME + cost::EXTRACT_PER_FEATURE * frame.observations.len() as f64;
        let mut observations = Vec::new();
        for obs in &frame.observations {
            let world = self
                .current_pose
                .camera_to_world(dataset.intrinsics.unproject(obs.pixel, obs.depth));
            let id = self.map.add_landmark(world, obs.descriptor);
            observations.push(KeyframeObservation {
                landmark: id,
                pixel: obs.pixel,
            });
        }
        self.map.add_keyframe(Keyframe {
            pose: self.current_pose,
            timestamp: frame.timestamp,
            observations,
        });
    }

    /// Tracks one frame; returns whether pose estimation succeeded.
    fn track(&mut self, dataset: &Dataset, frame: &crate::frame::Frame) -> bool {
        // --- Feature extraction (modelled) + map matching. ---
        self.profile.feature_matching_s +=
            cost::EXTRACT_FRAME + cost::EXTRACT_PER_FEATURE * frame.observations.len() as f64;
        let descriptors = self.map.landmark_descriptors();
        let comparisons = frame.observations.len() * descriptors.len();
        self.profile.feature_matching_s += cost::MATCH_PER_COMPARISON * comparisons as f64;

        let mut correspondences = Vec::new();
        let mut matched_landmarks = Vec::new();
        for obs in &frame.observations {
            if let Some(m) = match_descriptor(
                &obs.descriptor,
                &descriptors,
                self.config.match_max_distance,
                self.config.match_ratio,
            ) {
                correspondences.push(Correspondence {
                    world: self.map.landmarks()[m.index].position,
                    pixel: obs.pixel,
                });
                matched_landmarks.push((m.index, obs));
            }
        }

        // --- Pose optimization (tracking). ---
        let mut tracked =
            match estimate_pose(&dataset.intrinsics, &self.current_pose, &correspondences) {
                Some(est) => {
                    self.profile.feature_matching_s +=
                        cost::POSE_PER_ITER_MATCH * (est.iterations * correspondences.len()) as f64;
                    self.current_pose = est.pose;
                    self.consecutive_failures = 0;
                    true
                }
                None => {
                    self.consecutive_failures += 1;
                    false // constant-pose motion model carries on
                }
            };

        // --- Relocalization (ORB-SLAM's recovery path): after repeated
        // tracking losses, recover the pose prior-free from 3D-3D
        // correspondences (stereo depth vs map) via Horn's closed form.
        if !tracked && self.consecutive_failures >= 2 {
            let pairs: Vec<PointPair> = matched_landmarks
                .iter()
                .map(|(id, obs)| PointPair {
                    camera: dataset.intrinsics.unproject(obs.pixel, obs.depth),
                    world: self.map.landmarks()[*id].position,
                })
                .collect();
            // Modelled cost: one alignment pass over the pairs.
            self.profile.feature_matching_s += cost::POSE_PER_ITER_MATCH * pairs.len() as f64 * 4.0;
            if pairs.len() >= 6 {
                if let Some(pose) = absolute_orientation(&pairs) {
                    // Accept only when the recovered pose re-tracks.
                    if let Some(est) = estimate_pose(&dataset.intrinsics, &pose, &correspondences) {
                        self.current_pose = est.pose;
                        self.consecutive_failures = 0;
                        self.relocalizations += 1;
                        tracked = true;
                    }
                }
            }
        }

        // --- Keyframe decision. ---
        let need_keyframe = self.current_pose.distance_to(&self.last_keyframe_pose)
            > self.config.keyframe_translation
            || self.current_pose.angle_to(&self.last_keyframe_pose) > self.config.keyframe_rotation
            || correspondences.len() < self.config.keyframe_min_matches;
        if tracked && need_keyframe {
            self.insert_keyframe(dataset, frame, &matched_landmarks);
        }
        tracked
    }

    fn insert_keyframe(
        &mut self,
        dataset: &Dataset,
        frame: &crate::frame::Frame,
        matched: &[(usize, &crate::frame::Observation)],
    ) {
        let mut observations: Vec<KeyframeObservation> = matched
            .iter()
            .map(|(id, obs)| KeyframeObservation {
                landmark: *id,
                pixel: obs.pixel,
            })
            .collect();
        // New landmarks from unmatched observations — but only those whose
        // descriptor is far from every existing landmark. A re-observation
        // that merely failed the ratio test must NOT become a duplicate
        // landmark: duplicates make every future match of that feature
        // ambiguous and the match count collapses over time.
        let matched_pixels: Vec<_> = matched.iter().map(|(_, o)| o.pixel).collect();
        let descriptors = self.map.landmark_descriptors();
        for obs in &frame.observations {
            let is_matched = matched_pixels.iter().any(|p| p.distance(obs.pixel) < 1e-9);
            if is_matched {
                continue;
            }
            let near_duplicate = descriptors
                .iter()
                .any(|d| d.hamming(&obs.descriptor) <= self.config.match_max_distance + 16);
            if near_duplicate {
                continue;
            }
            let world = self
                .current_pose
                .camera_to_world(dataset.intrinsics.unproject(obs.pixel, obs.depth));
            let id = self.map.add_landmark(world, obs.descriptor);
            observations.push(KeyframeObservation {
                landmark: id,
                pixel: obs.pixel,
            });
        }
        self.map.add_keyframe(Keyframe {
            pose: self.current_pose,
            timestamp: frame.timestamp,
            observations,
        });
        self.last_keyframe_pose = self.current_pose;
        self.keyframes_since_global_ba += 1;

        // --- Local bundle adjustment. ---
        if let Some(report) = local_bundle_adjustment(
            &mut self.map,
            &dataset.intrinsics,
            self.config.local_ba_window,
            self.config.local_ba_landmarks,
        ) {
            self.profile.local_ba_s += cost::BA_PER_ITER_RES_PARAM
                * (report.iterations * report.residual_count * report.parameter_count) as f64;
            // Tracking continues from the refined latest keyframe.
            if let Some(&kf) = self.map.recent_keyframes(1).first() {
                self.current_pose = self.map.keyframes()[kf].pose;
            }
        }

        // --- Periodic global bundle adjustment. ---
        if self.keyframes_since_global_ba >= self.config.global_ba_every {
            self.keyframes_since_global_ba = 0;
            if let Some(report) = global_bundle_adjustment(
                &mut self.map,
                &dataset.intrinsics,
                self.config.global_ba_keyframes,
                self.config.global_ba_landmarks,
            ) {
                self.profile.global_ba_s += cost::BA_PER_ITER_RES_PARAM
                    * (report.iterations * report.residual_count * report.parameter_count) as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euroc::Sequence;

    #[test]
    fn tracks_easy_sequence_accurately() {
        let dataset = Sequence::V101.generate_with_frames(120);
        let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
        assert!(result.ate_meters < 0.5, "ATE {}", result.ate_meters);
        assert!(
            result.tracked_frames as f64 / result.frames as f64 > 0.9,
            "tracked {}/{}",
            result.tracked_frames,
            result.frames
        );
        assert!(result.keyframes >= 3, "{} keyframes", result.keyframes);
    }

    #[test]
    fn ba_dominates_the_profile() {
        // Paper §5.2: bundle adjustments ≈ 90 % of RPi execution time.
        let dataset = Sequence::MH01.generate_with_frames(150);
        let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
        let ba = result.profile.ba_fraction();
        assert!(
            (0.75..1.0).contains(&ba),
            "BA fraction {ba:.2}: {}",
            result.profile
        );
    }

    #[test]
    fn difficult_sequences_are_less_accurate() {
        let easy =
            Pipeline::new(PipelineConfig::default()).run(&Sequence::V101.generate_with_frames(100));
        let hard =
            Pipeline::new(PipelineConfig::default()).run(&Sequence::V103.generate_with_frames(100));
        assert!(
            hard.ate_meters > easy.ate_meters * 0.8,
            "difficulty had no effect: easy {} vs hard {}",
            easy.ate_meters,
            hard.ate_meters
        );
        assert!(
            hard.ate_meters < 3.0,
            "hard sequence diverged: {}",
            hard.ate_meters
        );
    }

    #[test]
    fn map_grows_with_exploration() {
        let dataset = Sequence::MH02.generate_with_frames(120);
        let mut pipeline = Pipeline::new(PipelineConfig::default());
        let result = pipeline.run(&dataset);
        assert!(result.landmarks > 200, "{} landmarks", result.landmarks);
        assert_eq!(pipeline.map().keyframe_count(), result.keyframes);
    }

    #[test]
    fn relocalizes_after_occlusion() {
        // Blind the camera for 15 frames mid-flight (lens flare / dirt):
        // tracking must drop, then recover via relocalization instead of
        // staying lost.
        let mut dataset = Sequence::V101.generate_with_frames(120);
        for frame in dataset.frames.iter_mut().skip(40).take(15) {
            frame.observations.clear();
        }
        let mut pipeline = Pipeline::new(PipelineConfig::default());
        let result = pipeline.run(&dataset);
        assert!(
            result.tracked_frames < result.frames,
            "occlusion must cost some frames"
        );
        assert!(
            result.tracked_frames > result.frames - 25,
            "never recovered: {}/{} tracked",
            result.tracked_frames,
            result.frames
        );
        assert!(
            result.ate_meters < 1.0,
            "post-recovery ATE {}",
            result.ate_meters
        );
    }

    #[test]
    fn attached_telemetry_splits_the_stage_profile() {
        use drone_telemetry::Registry;
        let registry = Registry::with_wall_clock();
        let dataset = Sequence::MH01.generate_with_frames(120);
        let mut pipeline = Pipeline::new(PipelineConfig::default());
        pipeline.attach_telemetry(&registry);
        let result = pipeline.run(&dataset);
        // One wall-time sample and one feature-stage sample per frame.
        let frames = registry.histogram("slam.frame.seconds").count();
        assert_eq!(frames as usize, result.frames);
        let feature = registry.histogram("slam.feature.rpi_s").snapshot();
        assert_eq!(feature.count() as usize, result.frames);
        // The per-frame stage samples sum back to the aggregate profile.
        assert!((feature.sum() - result.profile.feature_matching_s).abs() < 1e-9);
        let local = registry.histogram("slam.local_ba.rpi_s").snapshot();
        assert!((local.sum() - result.profile.local_ba_s).abs() < 1e-9);
        let global = registry.histogram("slam.global_ba.rpi_s").snapshot();
        assert!((global.sum() - result.profile.global_ba_s).abs() < 1e-9);
        assert!(local.count() > 0, "local BA must run on this sequence");
    }

    #[test]
    fn deterministic_runs() {
        let dataset = Sequence::V201.generate_with_frames(60);
        let a = Pipeline::new(PipelineConfig::default()).run(&dataset);
        let b = Pipeline::new(PipelineConfig::default()).run(&dataset);
        assert_eq!(a.ate_meters, b.ate_meters);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn profile_display() {
        let p = StageProfile {
            feature_matching_s: 1.0,
            local_ba_s: 4.5,
            global_ba_s: 4.5,
        };
        let s = p.to_string();
        assert!(s.contains("10%"), "{s}");
        assert!((p.ba_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dataset has no frames")]
    fn empty_dataset_panics() {
        let dataset = crate::euroc::Dataset {
            sequence: Sequence::MH01,
            intrinsics: crate::camera::CameraIntrinsics::euroc(),
            world: crate::frame::World {
                landmarks: vec![crate::frame::Landmark {
                    position: drone_math::Vec3::ZERO,
                    descriptor: crate::descriptor::Descriptor([0; 4]),
                }],
            },
            noise: crate::frame::SensorNoise::easy(),
            frames: vec![],
        };
        let _ = Pipeline::new(PipelineConfig::default()).run(&dataset);
    }
}
