//! Pinhole camera model and camera poses.

use drone_math::{Quat, Vec3};
use serde::{Deserialize, Serialize};

/// A pixel coordinate (u right, v down).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pixel {
    /// Horizontal coordinate, pixels.
    pub u: f64,
    /// Vertical coordinate, pixels.
    pub v: f64,
}

impl Pixel {
    /// Creates a pixel coordinate.
    pub fn new(u: f64, v: f64) -> Pixel {
        Pixel { u, v }
    }

    /// Euclidean distance to another pixel.
    pub fn distance(self, other: Pixel) -> f64 {
        ((self.u - other.u).powi(2) + (self.v - other.v).powi(2)).sqrt()
    }
}

/// Pinhole intrinsics (the EuRoC sensor is a 752×480 global-shutter
/// camera with ~460 px focal length).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraIntrinsics {
    /// Focal length in x, pixels.
    pub fx: f64,
    /// Focal length in y, pixels.
    pub fy: f64,
    /// Principal point x, pixels.
    pub cx: f64,
    /// Principal point y, pixels.
    pub cy: f64,
    /// Image width, pixels.
    pub width: u32,
    /// Image height, pixels.
    pub height: u32,
}

impl CameraIntrinsics {
    /// EuRoC-like intrinsics.
    pub fn euroc() -> CameraIntrinsics {
        CameraIntrinsics {
            fx: 460.0,
            fy: 460.0,
            cx: 376.0,
            cy: 240.0,
            width: 752,
            height: 480,
        }
    }

    /// Projects a camera-frame point (+Z forward) to a pixel.
    ///
    /// Returns `None` when the point is behind the camera or projects
    /// outside the image.
    pub fn project(&self, p_cam: Vec3) -> Option<Pixel> {
        if p_cam.z <= 0.05 {
            return None;
        }
        let u = self.fx * p_cam.x / p_cam.z + self.cx;
        let v = self.fy * p_cam.y / p_cam.z + self.cy;
        if u < 0.0 || v < 0.0 || u >= f64::from(self.width) || v >= f64::from(self.height) {
            return None;
        }
        Some(Pixel::new(u, v))
    }

    /// Back-projects a pixel at the given depth (camera frame, metres).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not positive.
    pub fn unproject(&self, pixel: Pixel, depth: f64) -> Vec3 {
        assert!(depth > 0.0, "depth must be positive");
        Vec3::new(
            (pixel.u - self.cx) / self.fx * depth,
            (pixel.v - self.cy) / self.fy * depth,
            depth,
        )
    }

    /// Horizontal field of view, radians.
    pub fn fov_x(&self) -> f64 {
        2.0 * (f64::from(self.width) / (2.0 * self.fx)).atan()
    }
}

/// A camera pose: position and orientation in the world frame.
///
/// The rotation maps camera-frame vectors to world-frame vectors; the
/// camera looks along its +Z axis.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CameraPose {
    /// Camera centre in the world, metres.
    pub position: Vec3,
    /// Camera-to-world rotation.
    pub orientation: Quat,
}

impl CameraPose {
    /// A pose at the origin looking along world +Z.
    pub fn identity() -> CameraPose {
        CameraPose::default()
    }

    /// Creates a pose.
    pub fn new(position: Vec3, orientation: Quat) -> CameraPose {
        CameraPose {
            position,
            orientation,
        }
    }

    /// A pose at `position` whose +Z axis looks toward `target`
    /// (with world +Z used to define "up"; `target` must not coincide
    /// with `position`).
    pub fn looking_at(position: Vec3, target: Vec3) -> CameraPose {
        let forward = (target - position).normalized().unwrap_or(Vec3::X);
        // Build an orthonormal basis with +Z = forward.
        let world_up = if forward.cross(Vec3::Z).norm() < 1e-6 {
            Vec3::X
        } else {
            Vec3::Z
        };
        let right = forward
            .cross(world_up)
            .normalized()
            .expect("non-degenerate basis");
        let down = forward
            .cross(right)
            .normalized()
            .expect("non-degenerate basis");
        // Camera axes in world coordinates: X=right, Y=down, Z=forward.
        let m = drone_math::Mat3::from_rows(
            Vec3::new(right.x, down.x, forward.x),
            Vec3::new(right.y, down.y, forward.y),
            Vec3::new(right.z, down.z, forward.z),
        );
        CameraPose {
            position,
            orientation: rotation_matrix_to_quat(&m),
        }
    }

    /// Transforms a world point into the camera frame.
    pub fn world_to_camera(&self, p_world: Vec3) -> Vec3 {
        self.orientation.rotate_inverse(p_world - self.position)
    }

    /// Transforms a camera-frame point into the world frame.
    pub fn camera_to_world(&self, p_cam: Vec3) -> Vec3 {
        self.orientation.rotate(p_cam) + self.position
    }

    /// Translation distance to another pose, metres.
    pub fn distance_to(&self, other: &CameraPose) -> f64 {
        (self.position - other.position).norm()
    }

    /// Rotation angle to another pose, radians.
    pub fn angle_to(&self, other: &CameraPose) -> f64 {
        self.orientation.angle_to(other.orientation)
    }

    /// Applies a small pose increment `[ω, t]` (axis-angle rotation in
    /// the camera frame, world translation) — the parameterization the
    /// optimizers step in.
    pub fn perturbed(&self, delta: &[f64; 6]) -> CameraPose {
        let omega = Vec3::new(delta[0], delta[1], delta[2]);
        let dq = Quat::from_axis_angle(omega, omega.norm());
        CameraPose {
            position: self.position + Vec3::new(delta[3], delta[4], delta[5]),
            orientation: (self.orientation * dq).normalized(),
        }
    }
}

/// Converts an orthonormal rotation matrix to a quaternion
/// (Shepperd's method, branch on the largest diagonal term).
pub fn rotation_matrix_to_quat(m: &drone_math::Mat3) -> Quat {
    let t = m.trace();
    let q = if t > 0.0 {
        let s = (t + 1.0).sqrt() * 2.0;
        Quat::new(
            0.25 * s,
            (m.m[2][1] - m.m[1][2]) / s,
            (m.m[0][2] - m.m[2][0]) / s,
            (m.m[1][0] - m.m[0][1]) / s,
        )
    } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
        let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
        Quat::new(
            (m.m[2][1] - m.m[1][2]) / s,
            0.25 * s,
            (m.m[0][1] + m.m[1][0]) / s,
            (m.m[0][2] + m.m[2][0]) / s,
        )
    } else if m.m[1][1] > m.m[2][2] {
        let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
        Quat::new(
            (m.m[0][2] - m.m[2][0]) / s,
            (m.m[0][1] + m.m[1][0]) / s,
            0.25 * s,
            (m.m[1][2] + m.m[2][1]) / s,
        )
    } else {
        let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
        Quat::new(
            (m.m[1][0] - m.m[0][1]) / s,
            (m.m[0][2] + m.m[2][0]) / s,
            (m.m[1][2] + m.m[2][1]) / s,
            0.25 * s,
        )
    };
    q.normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Pcg32;

    #[test]
    fn project_unproject_roundtrip() {
        let cam = CameraIntrinsics::euroc();
        let p = Vec3::new(0.4, -0.2, 3.0);
        let pix = cam.project(p).expect("in view");
        let back = cam.unproject(pix, 3.0);
        assert!((back - p).norm() < 1e-9);
    }

    #[test]
    fn behind_camera_is_none() {
        let cam = CameraIntrinsics::euroc();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(cam.project(Vec3::new(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn out_of_frame_is_none() {
        let cam = CameraIntrinsics::euroc();
        // Far to the side at shallow depth.
        assert!(cam.project(Vec3::new(10.0, 0.0, 1.0)).is_none());
    }

    #[test]
    fn centre_projects_to_principal_point() {
        let cam = CameraIntrinsics::euroc();
        let pix = cam.project(Vec3::new(0.0, 0.0, 2.0)).unwrap();
        assert!((pix.u - cam.cx).abs() < 1e-9);
        assert!((pix.v - cam.cy).abs() < 1e-9);
    }

    #[test]
    fn fov_is_plausible() {
        let fov = CameraIntrinsics::euroc().fov_x().to_degrees();
        assert!((60.0..100.0).contains(&fov), "fov {fov}");
    }

    #[test]
    fn world_camera_roundtrip() {
        let pose = CameraPose::new(Vec3::new(1.0, 2.0, 3.0), Quat::from_euler(0.2, -0.4, 0.9));
        let p = Vec3::new(-2.0, 0.5, 7.0);
        let back = pose.camera_to_world(pose.world_to_camera(p));
        assert!((back - p).norm() < 1e-12);
    }

    #[test]
    fn looking_at_points_forward() {
        let pose = CameraPose::looking_at(Vec3::new(0.0, 0.0, 1.0), Vec3::new(5.0, 0.0, 1.0));
        let target_cam = pose.world_to_camera(Vec3::new(5.0, 0.0, 1.0));
        assert!(target_cam.z > 4.9, "target not in front: {target_cam}");
        assert!(target_cam.x.abs() < 1e-9 && target_cam.y.abs() < 1e-9);
    }

    #[test]
    fn rotation_matrix_quat_roundtrip() {
        let mut rng = Pcg32::seed_from(5);
        for _ in 0..100 {
            let q = Quat::from_euler(
                rng.uniform(-3.0, 3.0),
                rng.uniform(-1.4, 1.4),
                rng.uniform(-3.0, 3.0),
            );
            let m = q.to_rotation_matrix();
            let q2 = rotation_matrix_to_quat(&m);
            // angle_to has an acos precision floor near zero (~1e-7).
            assert!(q.angle_to(q2) < 1e-6, "roundtrip failed: {q} vs {q2}");
        }
    }

    #[test]
    fn perturbed_identity_is_noop() {
        let pose = CameraPose::new(Vec3::new(1.0, 1.0, 1.0), Quat::from_euler(0.1, 0.2, 0.3));
        let same = pose.perturbed(&[0.0; 6]);
        assert!(pose.distance_to(&same) < 1e-12);
        assert!(pose.angle_to(&same) < 1e-12);
    }

    #[test]
    fn perturbed_translation() {
        let pose = CameraPose::identity();
        let moved = pose.perturbed(&[0.0, 0.0, 0.0, 1.0, -2.0, 0.5]);
        assert!((moved.position - Vec3::new(1.0, -2.0, 0.5)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn unproject_zero_depth_panics() {
        CameraIntrinsics::euroc().unproject(Pixel::new(0.0, 0.0), 0.0);
    }
}
