//! PnP-style pose refinement: given 3D landmark positions and their 2D
//! pixel observations, find the camera pose minimizing reprojection
//! error with Levenberg–Marquardt (robustified by a Huber-style weight).

use crate::camera::{CameraIntrinsics, CameraPose, Pixel};
use drone_math::optimize::{LeastSquaresProblem, LevenbergMarquardt};
use drone_math::Vec3;

/// One 3D→2D correspondence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Landmark position estimate, world frame.
    pub world: Vec3,
    /// Observed pixel.
    pub pixel: Pixel,
}

/// Result of a pose estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseEstimate {
    /// Refined pose.
    pub pose: CameraPose,
    /// RMS reprojection error over inliers, pixels.
    pub rms_reprojection: f64,
    /// Number of inlier correspondences (below the Huber threshold).
    pub inliers: usize,
    /// LM iterations performed (feeds the stage cost model).
    pub iterations: usize,
}

struct PnpProblem<'a> {
    intrinsics: &'a CameraIntrinsics,
    base: CameraPose,
    correspondences: &'a [Correspondence],
    /// IRLS weights, one per correspondence, held fixed during LM.
    weights: Vec<f64>,
}

impl PnpProblem<'_> {
    fn reprojection(&self, pose: &CameraPose, c: &Correspondence) -> (f64, f64) {
        let p_cam = pose.world_to_camera(c.world);
        // Penalize points behind the camera with a large, smooth residual
        // instead of dropping them (keeps LM differentiable).
        if p_cam.z <= 0.05 {
            return (50.0 + p_cam.z.abs() * 10.0, 50.0 + p_cam.z.abs() * 10.0);
        }
        let u = self.intrinsics.fx * p_cam.x / p_cam.z + self.intrinsics.cx;
        let v = self.intrinsics.fy * p_cam.y / p_cam.z + self.intrinsics.cy;
        (u - c.pixel.u, v - c.pixel.v)
    }
}

impl LeastSquaresProblem for PnpProblem<'_> {
    fn num_params(&self) -> usize {
        6
    }
    fn num_residuals(&self) -> usize {
        self.correspondences.len() * 2
    }
    fn residuals(&self, x: &[f64]) -> Vec<f64> {
        let delta = [x[0], x[1], x[2], x[3], x[4], x[5]];
        let pose = self.base.perturbed(&delta);
        let mut out = Vec::with_capacity(self.num_residuals());
        for (c, &w) in self.correspondences.iter().zip(&self.weights) {
            let (eu, ev) = self.reprojection(&pose, c);
            out.push(eu * w);
            out.push(ev * w);
        }
        out
    }
}

/// Huber IRLS weight for a residual magnitude.
fn huber_weight(error: f64, threshold: f64) -> f64 {
    let a = error.abs();
    if a <= threshold {
        1.0
    } else {
        (threshold / a).sqrt()
    }
}

/// Refines `initial` against the correspondences via iteratively
/// reweighted least squares: each outer round fixes Huber weights from
/// the current pose's residuals and runs an inner Levenberg–Marquardt —
/// the weights stay constant inside the LM so the inner problem remains
/// genuinely quadratic near the optimum.
///
/// Returns `None` with fewer than 4 correspondences (the PnP minimum
/// with margin), on divergence, or when fewer than 4 inliers remain.
pub fn estimate_pose(
    intrinsics: &CameraIntrinsics,
    initial: &CameraPose,
    correspondences: &[Correspondence],
) -> Option<PoseEstimate> {
    if correspondences.len() < 4 {
        return None;
    }
    let huber_px = 3.0;
    let mut pose = *initial;
    let mut total_iterations = 0;
    for round in 0..3 {
        let mut problem = PnpProblem {
            intrinsics,
            base: pose,
            correspondences,
            weights: vec![1.0; correspondences.len()],
        };
        if round > 0 {
            // Reweight from the current pose's residuals.
            for (i, c) in correspondences.iter().enumerate() {
                let (eu, ev) = problem.reprojection(&pose, c);
                problem.weights[i] = huber_weight((eu * eu + ev * ev).sqrt(), huber_px);
            }
        }
        let report = LevenbergMarquardt::new()
            .with_max_iterations(15)
            .with_cost_tolerance(1e-8)
            .minimize(&problem, &[0.0; 6]);
        let delta = [
            report.params[0],
            report.params[1],
            report.params[2],
            report.params[3],
            report.params[4],
            report.params[5],
        ];
        pose = problem.base.perturbed(&delta);
        total_iterations += report.iterations;
        if !pose.position.is_finite() {
            return None;
        }
    }
    // Inlier accounting at the refined pose.
    let accounting = PnpProblem {
        intrinsics,
        base: pose,
        correspondences,
        weights: vec![1.0; correspondences.len()],
    };
    let mut inliers = 0;
    let mut sq_sum = 0.0;
    for c in correspondences {
        let (eu, ev) = accounting.reprojection(&pose, c);
        let e = (eu * eu + ev * ev).sqrt();
        if e < 6.0 {
            inliers += 1;
            sq_sum += e * e;
        }
    }
    if inliers < 4 {
        return None;
    }
    Some(PoseEstimate {
        pose,
        rms_reprojection: (sq_sum / inliers as f64).sqrt(),
        inliers,
        iterations: total_iterations,
    })
}

/// A 3D–3D correspondence for absolute-orientation recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointPair {
    /// Point in the camera frame (from stereo depth).
    pub camera: Vec3,
    /// The same point in the world frame (from the map).
    pub world: Vec3,
}

/// Horn's closed-form absolute orientation: the camera pose aligning
/// camera-frame points onto their world positions. Used for
/// relocalization after tracking loss, where no pose prior exists.
///
/// The optimal rotation is the maximal eigenvector of Horn's 4×4 `N`
/// matrix, found by power iteration (shifted to guarantee positive
/// semidefiniteness).
///
/// Returns `None` with fewer than 3 pairs or degenerate geometry.
pub fn absolute_orientation(pairs: &[PointPair]) -> Option<CameraPose> {
    if pairs.len() < 3 {
        return None;
    }
    let n = pairs.len() as f64;
    let c_cam: Vec3 = pairs.iter().map(|p| p.camera).sum::<Vec3>() / n;
    let c_world: Vec3 = pairs.iter().map(|p| p.world).sum::<Vec3>() / n;

    // Cross-covariance M = Σ (cam − c̄)(world − w̄)ᵀ.
    let mut m = [[0.0f64; 3]; 3];
    for p in pairs {
        let a = p.camera - c_cam;
        let b = p.world - c_world;
        let (av, bv) = (a.to_array(), b.to_array());
        for (r, &ar) in av.iter().enumerate() {
            for (c, &bc) in bv.iter().enumerate() {
                m[r][c] += ar * bc;
            }
        }
    }
    // Horn's N matrix.
    let (sxx, sxy, sxz) = (m[0][0], m[0][1], m[0][2]);
    let (syx, syy, syz) = (m[1][0], m[1][1], m[1][2]);
    let (szx, szy, szz) = (m[2][0], m[2][1], m[2][2]);
    let n_mat = drone_math::Matrix::from_rows(&[
        &[sxx + syy + szz, syz - szy, szx - sxz, sxy - syx],
        &[syz - szy, sxx - syy - szz, sxy + syx, szx + sxz],
        &[szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy],
        &[sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz],
    ]);
    // Shift to PSD and power-iterate for the dominant eigenvector.
    let shift = 4.0 * (sxx.abs() + syy.abs() + szz.abs()) + 1.0;
    let shifted = n_mat.add_diagonal(shift);
    let mut v = drone_math::Matrix::column(&[1.0, 0.1, 0.1, 0.1]);
    for _ in 0..200 {
        let next = shifted.matmul(&v);
        let norm = next.frobenius_norm();
        if norm < 1e-12 {
            return None;
        }
        v = next.scale(1.0 / norm);
    }
    let q = drone_math::Quat::new(v[(0, 0)], v[(1, 0)], v[(2, 0)], v[(3, 0)]);
    if q.norm() < 1e-9 {
        return None;
    }
    let orientation = q.normalized();
    // t = w̄ − R·c̄.
    let position = c_world - orientation.rotate(c_cam);
    let pose = CameraPose::new(position, orientation);
    // Reject degenerate alignments (colinear points leave rotation
    // under-determined; check the residual).
    let rms: f64 = (pairs
        .iter()
        .map(|p| (pose.camera_to_world(p.camera) - p.world).norm_squared())
        .sum::<f64>()
        / n)
        .sqrt();
    let spread = pairs
        .iter()
        .map(|p| (p.world - c_world).norm())
        .fold(0.0f64, f64::max);
    if rms > 0.5 * spread.max(1e-3) {
        return None;
    }
    Some(pose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::CameraIntrinsics;
    use drone_math::{Pcg32, Quat};

    fn scene(n: usize, rng: &mut Pcg32) -> Vec<Vec3> {
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.uniform(-4.0, 4.0),
                    rng.uniform(-3.0, 3.0),
                    rng.uniform(4.0, 12.0),
                )
            })
            .collect()
    }

    fn observe(
        cam: &CameraIntrinsics,
        pose: &CameraPose,
        points: &[Vec3],
        noise_px: f64,
        rng: &mut Pcg32,
    ) -> Vec<Correspondence> {
        points
            .iter()
            .filter_map(|&w| {
                let pix = cam.project(pose.world_to_camera(w))?;
                Some(Correspondence {
                    world: w,
                    pixel: Pixel::new(
                        pix.u + rng.normal_with(0.0, noise_px),
                        pix.v + rng.normal_with(0.0, noise_px),
                    ),
                })
            })
            .collect()
    }

    #[test]
    fn recovers_exact_pose_from_clean_data() {
        let cam = CameraIntrinsics::euroc();
        let mut rng = Pcg32::seed_from(1);
        let points = scene(40, &mut rng);
        let truth = CameraPose::new(
            Vec3::new(0.3, -0.2, 0.5),
            Quat::from_euler(0.05, -0.03, 0.1),
        );
        let corr = observe(&cam, &truth, &points, 0.0, &mut rng);
        let initial = CameraPose::identity();
        let est = estimate_pose(&cam, &initial, &corr).expect("pose found");
        assert!(
            est.pose.distance_to(&truth) < 1e-4,
            "pos err {}",
            est.pose.distance_to(&truth)
        );
        assert!(est.pose.angle_to(&truth) < 1e-4);
        assert!(est.rms_reprojection < 1e-3);
    }

    #[test]
    fn tolerates_pixel_noise() {
        let cam = CameraIntrinsics::euroc();
        let mut rng = Pcg32::seed_from(2);
        let points = scene(60, &mut rng);
        let truth = CameraPose::new(
            Vec3::new(-0.4, 0.1, 0.2),
            Quat::from_euler(0.0, 0.08, -0.05),
        );
        let corr = observe(&cam, &truth, &points, 1.0, &mut rng);
        let est = estimate_pose(&cam, &CameraPose::identity(), &corr).expect("pose found");
        assert!(
            est.pose.distance_to(&truth) < 0.05,
            "pos err {}",
            est.pose.distance_to(&truth)
        );
        assert!(est.rms_reprojection < 3.0);
    }

    #[test]
    fn huber_rejects_outliers() {
        let cam = CameraIntrinsics::euroc();
        let mut rng = Pcg32::seed_from(3);
        let points = scene(60, &mut rng);
        let truth = CameraPose::new(Vec3::new(0.2, 0.0, 0.0), Quat::IDENTITY);
        let mut corr = observe(&cam, &truth, &points, 0.5, &mut rng);
        // 15 % gross outliers.
        let n_out = corr.len() / 7;
        for c in corr.iter_mut().take(n_out) {
            c.pixel = Pixel::new(rng.uniform(0.0, 752.0), rng.uniform(0.0, 480.0));
        }
        let est = estimate_pose(&cam, &CameraPose::identity(), &corr).expect("pose found");
        assert!(
            est.pose.distance_to(&truth) < 0.08,
            "pos err {}",
            est.pose.distance_to(&truth)
        );
        assert!(est.inliers >= corr.len() - n_out - 8);
    }

    #[test]
    fn too_few_points_is_none() {
        let cam = CameraIntrinsics::euroc();
        let corr = vec![
            Correspondence {
                world: Vec3::new(0.0, 0.0, 5.0),
                pixel: Pixel::new(376.0, 240.0)
            };
            3
        ];
        assert!(estimate_pose(&cam, &CameraPose::identity(), &corr).is_none());
    }

    #[test]
    fn absolute_orientation_recovers_known_pose() {
        let mut rng = Pcg32::seed_from(9);
        let truth = CameraPose::new(Vec3::new(2.0, -1.0, 3.0), Quat::from_euler(0.4, -0.3, 1.2));
        let pairs: Vec<PointPair> = (0..30)
            .map(|_| {
                let world = Vec3::new(
                    rng.uniform(-5.0, 5.0),
                    rng.uniform(-5.0, 5.0),
                    rng.uniform(-5.0, 5.0),
                );
                PointPair {
                    camera: truth.world_to_camera(world),
                    world,
                }
            })
            .collect();
        let pose = absolute_orientation(&pairs).expect("aligned");
        assert!(
            pose.distance_to(&truth) < 1e-6,
            "pos err {}",
            pose.distance_to(&truth)
        );
        assert!(
            pose.angle_to(&truth) < 1e-6,
            "rot err {}",
            pose.angle_to(&truth)
        );
    }

    #[test]
    fn absolute_orientation_tolerates_noise() {
        let mut rng = Pcg32::seed_from(10);
        let truth = CameraPose::new(Vec3::new(-1.0, 0.5, 2.0), Quat::from_euler(0.1, 0.2, -0.8));
        let pairs: Vec<PointPair> = (0..60)
            .map(|_| {
                let world = Vec3::new(
                    rng.uniform(-6.0, 6.0),
                    rng.uniform(-6.0, 6.0),
                    rng.uniform(2.0, 10.0),
                );
                let noisy_cam = truth.world_to_camera(world)
                    + Vec3::new(
                        rng.normal_with(0.0, 0.05),
                        rng.normal_with(0.0, 0.05),
                        rng.normal_with(0.0, 0.05),
                    );
                PointPair {
                    camera: noisy_cam,
                    world,
                }
            })
            .collect();
        let pose = absolute_orientation(&pairs).expect("aligned");
        assert!(
            pose.distance_to(&truth) < 0.1,
            "pos err {}",
            pose.distance_to(&truth)
        );
        assert!(
            pose.angle_to(&truth) < 0.05,
            "rot err {}",
            pose.angle_to(&truth)
        );
    }

    #[test]
    fn absolute_orientation_rejects_tiny_sets() {
        assert!(absolute_orientation(&[]).is_none());
        let p = PointPair {
            camera: Vec3::X,
            world: Vec3::Y,
        };
        assert!(absolute_orientation(&[p, p]).is_none());
    }

    #[test]
    fn iterations_are_reported() {
        let cam = CameraIntrinsics::euroc();
        let mut rng = Pcg32::seed_from(4);
        let points = scene(30, &mut rng);
        let truth = CameraPose::new(Vec3::new(0.1, 0.1, 0.1), Quat::IDENTITY);
        let corr = observe(&cam, &truth, &points, 0.2, &mut rng);
        let est = estimate_pose(&cam, &CameraPose::identity(), &corr).unwrap();
        assert!(est.iterations >= 1 && est.iterations <= 25);
    }
}
