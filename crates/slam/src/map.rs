//! The keyframe / landmark map.
//!
//! The map stores estimated landmark positions with reference
//! descriptors, and keyframes holding the observations used by bundle
//! adjustment. Covisibility (shared landmarks) defines the local-BA
//! window, mirroring ORB-SLAM's structure.

use crate::camera::{CameraPose, Pixel};
use crate::descriptor::Descriptor;
use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// Identifier of a map landmark.
pub type LandmarkId = usize;

/// Identifier of a keyframe.
pub type KeyframeId = usize;

/// An estimated landmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapLandmark {
    /// Estimated world position.
    pub position: Vec3,
    /// Reference descriptor (from the first observation).
    pub descriptor: Descriptor,
    /// How many keyframes observe it.
    pub observation_count: usize,
}

/// One keyframe observation of a map landmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyframeObservation {
    /// Which landmark.
    pub landmark: LandmarkId,
    /// Measured pixel.
    pub pixel: Pixel,
}

/// A keyframe: estimated pose plus its landmark observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keyframe {
    /// Estimated camera pose.
    pub pose: CameraPose,
    /// Frame timestamp, seconds.
    pub timestamp: f64,
    /// Observations of map landmarks.
    pub observations: Vec<KeyframeObservation>,
}

/// The SLAM map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Map {
    landmarks: Vec<MapLandmark>,
    keyframes: Vec<Keyframe>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Landmarks slice.
    pub fn landmarks(&self) -> &[MapLandmark] {
        &self.landmarks
    }

    /// Keyframes slice.
    pub fn keyframes(&self) -> &[Keyframe] {
        &self.keyframes
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of keyframes.
    pub fn keyframe_count(&self) -> usize {
        self.keyframes.len()
    }

    /// Adds a landmark, returning its id.
    pub fn add_landmark(&mut self, position: Vec3, descriptor: Descriptor) -> LandmarkId {
        self.landmarks.push(MapLandmark {
            position,
            descriptor,
            observation_count: 0,
        });
        self.landmarks.len() - 1
    }

    /// Adds a keyframe, bumping the observation counts of the landmarks
    /// it sees. Returns the keyframe id.
    ///
    /// # Panics
    ///
    /// Panics if an observation references a nonexistent landmark.
    pub fn add_keyframe(&mut self, keyframe: Keyframe) -> KeyframeId {
        for obs in &keyframe.observations {
            self.landmarks
                .get_mut(obs.landmark)
                .expect("keyframe references unknown landmark")
                .observation_count += 1;
        }
        self.keyframes.push(keyframe);
        self.keyframes.len() - 1
    }

    /// Mutable landmark access (bundle adjustment writes back).
    pub fn landmark_mut(&mut self, id: LandmarkId) -> &mut MapLandmark {
        &mut self.landmarks[id]
    }

    /// Mutable keyframe access (bundle adjustment writes back).
    pub fn keyframe_mut(&mut self, id: KeyframeId) -> &mut Keyframe {
        &mut self.keyframes[id]
    }

    /// The ids of the most recent `window` keyframes (the local-BA set).
    pub fn recent_keyframes(&self, window: usize) -> Vec<KeyframeId> {
        let start = self.keyframes.len().saturating_sub(window);
        (start..self.keyframes.len()).collect()
    }

    /// Landmarks observed by any of the given keyframes.
    pub fn covisible_landmarks(&self, keyframes: &[KeyframeId]) -> Vec<LandmarkId> {
        let mut seen = vec![false; self.landmarks.len()];
        for &kf in keyframes {
            for obs in &self.keyframes[kf].observations {
                seen[obs.landmark] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect()
    }

    /// Descriptor table of all landmarks (for frame-to-map matching).
    pub fn landmark_descriptors(&self) -> Vec<Descriptor> {
        self.landmarks.iter().map(|l| l.descriptor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_math::Pcg32;

    fn descriptor(rng: &mut Pcg32) -> Descriptor {
        Descriptor::random(rng)
    }

    #[test]
    fn add_and_count() {
        let mut rng = Pcg32::seed_from(1);
        let mut map = Map::new();
        let a = map.add_landmark(Vec3::new(1.0, 0.0, 0.0), descriptor(&mut rng));
        let b = map.add_landmark(Vec3::new(0.0, 1.0, 0.0), descriptor(&mut rng));
        assert_eq!(map.landmark_count(), 2);
        let kf = Keyframe {
            pose: CameraPose::identity(),
            timestamp: 0.0,
            observations: vec![
                KeyframeObservation {
                    landmark: a,
                    pixel: Pixel::new(10.0, 10.0),
                },
                KeyframeObservation {
                    landmark: b,
                    pixel: Pixel::new(20.0, 20.0),
                },
            ],
        };
        map.add_keyframe(kf);
        assert_eq!(map.keyframe_count(), 1);
        assert_eq!(map.landmarks()[a].observation_count, 1);
        assert_eq!(map.landmarks()[b].observation_count, 1);
    }

    #[test]
    fn recent_keyframes_window() {
        let mut map = Map::new();
        for i in 0..10 {
            map.add_keyframe(Keyframe {
                pose: CameraPose::identity(),
                timestamp: i as f64,
                observations: vec![],
            });
        }
        assert_eq!(map.recent_keyframes(3), vec![7, 8, 9]);
        assert_eq!(map.recent_keyframes(100).len(), 10);
    }

    #[test]
    fn covisibility() {
        let mut rng = Pcg32::seed_from(2);
        let mut map = Map::new();
        let ids: Vec<_> = (0..5)
            .map(|i| map.add_landmark(Vec3::splat(i as f64), descriptor(&mut rng)))
            .collect();
        map.add_keyframe(Keyframe {
            pose: CameraPose::identity(),
            timestamp: 0.0,
            observations: vec![
                KeyframeObservation {
                    landmark: ids[0],
                    pixel: Pixel::default(),
                },
                KeyframeObservation {
                    landmark: ids[1],
                    pixel: Pixel::default(),
                },
            ],
        });
        map.add_keyframe(Keyframe {
            pose: CameraPose::identity(),
            timestamp: 1.0,
            observations: vec![KeyframeObservation {
                landmark: ids[3],
                pixel: Pixel::default(),
            }],
        });
        let cov = map.covisible_landmarks(&[0]);
        assert_eq!(cov, vec![ids[0], ids[1]]);
        let cov_all = map.covisible_landmarks(&[0, 1]);
        assert_eq!(cov_all, vec![ids[0], ids[1], ids[3]]);
    }

    #[test]
    #[should_panic(expected = "unknown landmark")]
    fn bad_observation_panics() {
        let mut map = Map::new();
        map.add_keyframe(Keyframe {
            pose: CameraPose::identity(),
            timestamp: 0.0,
            observations: vec![KeyframeObservation {
                landmark: 42,
                pixel: Pixel::default(),
            }],
        });
    }
}
