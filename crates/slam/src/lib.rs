//! A from-scratch sparse visual SLAM system (the paper's §5 workload).
//!
//! The paper offloads **ORB-SLAM** \[72\] onto RPi / TX2 / FPGA / ASIC and
//! reports per-stage speedups over the EuRoC MAV sequences (Figure 17,
//! Table 5). This crate rebuilds the workload itself:
//!
//! * [`camera`] — pinhole projection and camera poses.
//! * [`descriptor`] — 256-bit binary (BRIEF-like) descriptors with
//!   Hamming matching and a ratio test.
//! * [`euroc`] — a synthetic EuRoC-like dataset generator: the eleven
//!   sequences (MH01–MH05, V101–V203) as trajectory + landmark worlds
//!   with difficulty-scaled speed, clutter and noise.
//! * [`frame`] — stereo-style frames: noisy pixel observations with
//!   depth, descriptor corruption and outlier clutter.
//! * [`pose`] — PnP-style pose refinement by Levenberg–Marquardt on
//!   reprojection error.
//! * [`map`] — the keyframe/landmark map.
//! * [`ba`] — local and global bundle adjustment.
//! * [`pipeline`] — the tracker tying it together, with the virtual
//!   RPi-time cost model that yields the paper's ~10 % feature / ~90 %
//!   bundle-adjustment profile.
//! * [`metrics`] — absolute trajectory error (ATE) for accuracy checks.
//!
//! # Example
//!
//! ```
//! use drone_slam::euroc::Sequence;
//! use drone_slam::pipeline::{Pipeline, PipelineConfig};
//!
//! let dataset = Sequence::V101.generate_with_frames(120);
//! let mut slam = Pipeline::new(PipelineConfig::default());
//! let result = slam.run(&dataset);
//! assert!(result.ate_meters < 0.5, "ATE {}", result.ate_meters);
//! ```

pub mod ba;
pub mod camera;
pub mod descriptor;
pub mod euroc;
pub mod frame;
pub mod map;
pub mod metrics;
pub mod pipeline;
pub mod pose;

pub use camera::{CameraIntrinsics, CameraPose, Pixel};
pub use descriptor::Descriptor;
pub use euroc::{Difficulty, Sequence};
pub use pipeline::{Pipeline, PipelineConfig, RunResult, StageProfile};
