//! Synthetic EuRoC-like MAV datasets.
//!
//! The paper evaluates on the eleven EuRoC micro-aerial-vehicle
//! sequences \[79\]: five "machine hall" runs (MH01–MH05) and six
//! "Vicon room" runs (V101–V203), in rising difficulty bands. We cannot
//! ship the real imagery, so each sequence becomes a synthetic
//! (trajectory, landmark-world, noise-level) triple whose difficulty
//! scaling mirrors the original: later sequences fly faster, see fewer
//! reliable features and suffer more clutter.

use crate::camera::{CameraIntrinsics, CameraPose};
use crate::frame::{render_frame, Frame, SensorNoise, World};
use drone_math::{Pcg32, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// EuRoC difficulty band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Difficulty {
    /// Slow, well-lit.
    Easy,
    /// Moderate speed.
    Medium,
    /// Fast, aggressive, poorly lit.
    Difficult,
}

/// The eleven EuRoC sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Sequence {
    MH01,
    MH02,
    MH03,
    MH04,
    MH05,
    V101,
    V102,
    V103,
    V201,
    V202,
    V203,
}

impl Sequence {
    /// All sequences in the paper's Figure 17 order.
    pub const ALL: [Sequence; 11] = [
        Sequence::MH01,
        Sequence::MH02,
        Sequence::MH03,
        Sequence::MH04,
        Sequence::MH05,
        Sequence::V101,
        Sequence::V102,
        Sequence::V103,
        Sequence::V201,
        Sequence::V202,
        Sequence::V203,
    ];

    /// Sequence name as the dataset spells it.
    pub fn name(self) -> &'static str {
        match self {
            Sequence::MH01 => "MH01",
            Sequence::MH02 => "MH02",
            Sequence::MH03 => "MH03",
            Sequence::MH04 => "MH04",
            Sequence::MH05 => "MH05",
            Sequence::V101 => "V101",
            Sequence::V102 => "V102",
            Sequence::V103 => "V103",
            Sequence::V201 => "V201",
            Sequence::V202 => "V202",
            Sequence::V203 => "V203",
        }
    }

    /// Difficulty band (EuRoC's own labels).
    pub fn difficulty(self) -> Difficulty {
        match self {
            Sequence::MH01 | Sequence::MH02 | Sequence::V101 | Sequence::V201 => Difficulty::Easy,
            Sequence::MH03 | Sequence::V102 | Sequence::V202 => Difficulty::Medium,
            Sequence::MH04 | Sequence::MH05 | Sequence::V103 | Sequence::V203 => {
                Difficulty::Difficult
            }
        }
    }

    /// Whether this is a machine-hall (large environment) sequence.
    pub fn is_machine_hall(self) -> bool {
        matches!(
            self,
            Sequence::MH01 | Sequence::MH02 | Sequence::MH03 | Sequence::MH04 | Sequence::MH05
        )
    }

    /// Deterministic per-sequence RNG seed.
    fn seed(self) -> u64 {
        0xE0_00 + self as u64
    }

    /// Generates the sequence at its standard length (300 frames).
    pub fn generate(self) -> Dataset {
        self.generate_with_frames(300)
    }

    /// Generates the sequence with a custom frame count (shorter runs
    /// for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn generate_with_frames(self, frames: usize) -> Dataset {
        assert!(frames > 0, "need at least one frame");
        let mut rng = Pcg32::seed_from(self.seed());
        let (half_extent, landmark_count) = if self.is_machine_hall() {
            (Vec3::new(12.0, 9.0, 4.0), 1400)
        } else {
            (Vec3::new(5.0, 4.0, 2.5), 900)
        };
        let world = World::room(landmark_count, half_extent, &mut rng);
        let noise = match self.difficulty() {
            Difficulty::Easy => SensorNoise::easy(),
            Difficulty::Medium => SensorNoise::medium(),
            Difficulty::Difficult => SensorNoise::difficult(),
        };
        // Speed scales with difficulty, like the real sequences
        // (MH01 ~0.4 m/s up to V203 ~2+ m/s).
        let speed = match self.difficulty() {
            Difficulty::Easy => 0.5,
            Difficulty::Medium => 1.0,
            Difficulty::Difficult => 2.0,
        };
        let intrinsics = CameraIntrinsics::euroc();
        let fps = 20.0; // the paper's Navion comparison runs EuRoC at 20 FPS
        let radius = Vec3::new(
            half_extent.x * 0.45,
            half_extent.y * 0.45,
            half_extent.z * 0.25,
        );
        let mut frames_out = Vec::with_capacity(frames);
        for k in 0..frames {
            let t = k as f64 / fps;
            let pose = lissajous_pose(t, speed, radius);
            frames_out.push(render_frame(
                &world,
                &intrinsics,
                &pose,
                &noise,
                t,
                &mut rng,
            ));
        }
        Dataset {
            sequence: self,
            intrinsics,
            world,
            noise,
            frames: frames_out,
        }
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A Lissajous-style survey trajectory looking toward the walls ahead:
/// smooth, bounded, covers the room.
fn lissajous_pose(t: f64, speed: f64, radius: Vec3) -> CameraPose {
    let w = 0.25 * speed;
    let position = Vec3::new(
        radius.x * (w * t).sin(),
        radius.y * (0.7 * w * t).sin(),
        radius.z * (0.5 * w * t).sin(),
    );
    // Look ahead along the direction of travel (finite difference).
    let eps = 0.05;
    let next = Vec3::new(
        radius.x * (w * (t + eps)).sin(),
        radius.y * (0.7 * w * (t + eps)).sin(),
        radius.z * (0.5 * w * (t + eps)).sin(),
    );
    let mut dir = next - position;
    if dir.norm() < 1e-9 {
        dir = Vec3::X;
    }
    // Look toward a point well ahead so plenty of wall is visible.
    let target = position + dir.normalized().unwrap_or(Vec3::X) * 10.0;
    CameraPose::looking_at(position, target)
}

/// A generated dataset: world + rendered frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Which sequence this is.
    pub sequence: Sequence,
    /// Camera intrinsics.
    pub intrinsics: CameraIntrinsics,
    /// The ground-truth world.
    pub world: World,
    /// Noise profile used in rendering.
    pub noise: SensorNoise,
    /// Rendered frames in time order.
    pub frames: Vec<Frame>,
}

impl Dataset {
    /// Ground-truth trajectory (one pose per frame).
    pub fn truth_trajectory(&self) -> Vec<CameraPose> {
        self.frames.iter().map(|f| f.truth_pose).collect()
    }

    /// Mean true features (non-clutter observations) per frame.
    pub fn mean_features_per_frame(&self) -> f64 {
        let total: usize = self
            .frames
            .iter()
            .map(|f| {
                f.observations
                    .iter()
                    .filter(|o| o.truth_landmark.is_some())
                    .count()
            })
            .sum();
        total as f64 / self.frames.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_sequences_in_figure17_order() {
        assert_eq!(Sequence::ALL.len(), 11);
        assert_eq!(Sequence::ALL[0].name(), "MH01");
        assert_eq!(Sequence::ALL[10].name(), "V203");
    }

    #[test]
    fn difficulty_labels_match_euroc() {
        assert_eq!(Sequence::MH01.difficulty(), Difficulty::Easy);
        assert_eq!(Sequence::MH03.difficulty(), Difficulty::Medium);
        assert_eq!(Sequence::MH05.difficulty(), Difficulty::Difficult);
        assert_eq!(Sequence::V101.difficulty(), Difficulty::Easy);
        assert_eq!(Sequence::V203.difficulty(), Difficulty::Difficult);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Sequence::V101.generate_with_frames(10);
        let b = Sequence::V101.generate_with_frames(10);
        assert_eq!(a.frames[5].observations, b.frames[5].observations);
    }

    #[test]
    fn sequences_have_usable_feature_counts() {
        for seq in [Sequence::MH01, Sequence::V101, Sequence::V203] {
            let d = seq.generate_with_frames(40);
            let mean = d.mean_features_per_frame();
            assert!(mean > 25.0, "{seq}: only {mean:.0} features/frame");
        }
    }

    #[test]
    fn harder_sequences_fly_faster() {
        let easy = Sequence::V101.generate_with_frames(100);
        let hard = Sequence::V103.generate_with_frames(100);
        let dist = |d: &Dataset| {
            d.truth_trajectory()
                .windows(2)
                .map(|w| w[1].distance_to(&w[0]))
                .sum::<f64>()
        };
        assert!(
            dist(&hard) > 1.5 * dist(&easy),
            "speeds: {} vs {}",
            dist(&hard),
            dist(&easy)
        );
    }

    #[test]
    fn trajectory_stays_inside_the_room() {
        let d = Sequence::MH03.generate_with_frames(200);
        for pose in d.truth_trajectory() {
            let p = pose.position;
            assert!(
                p.x.abs() < 12.0 && p.y.abs() < 9.0 && p.z.abs() < 4.0,
                "{p} escaped"
            );
        }
    }

    #[test]
    fn machine_hall_is_bigger_than_vicon_room() {
        let mh = Sequence::MH01.generate_with_frames(5);
        let v = Sequence::V101.generate_with_frames(5);
        assert!(mh.world.landmarks.len() > v.world.landmarks.len());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = Sequence::MH01.generate_with_frames(0);
    }
}
