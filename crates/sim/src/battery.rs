//! LiPo discharge simulation.
//!
//! Tracks state of charge by integrating electrical power, applies the
//! paper's 85 % drain limit (`LiPoDrainLimit`), and models the mild
//! voltage sag of a LiPo across its discharge curve.

use drone_components::battery::Battery;
use drone_components::units::{Volts, WattHours, Watts};
use serde::{Deserialize, Serialize};

/// A battery with live state of charge.
///
/// # Example
///
/// ```
/// use drone_sim::BatterySim;
/// use drone_components::battery::{Battery, CellCount};
/// use drone_components::units::{Grams, MilliampHours, Watts};
///
/// let pack = Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0));
/// let mut sim = BatterySim::new(pack);
/// sim.drain(Watts(130.0), 60.0); // one minute at 130 W
/// assert!(sim.remaining_fraction() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatterySim {
    battery: Battery,
    consumed: WattHours,
}

impl BatterySim {
    /// Creates a fully charged battery simulation.
    pub fn new(battery: Battery) -> BatterySim {
        BatterySim { battery, consumed: WattHours::ZERO }
    }

    /// The underlying pack.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Energy consumed so far.
    pub fn consumed(&self) -> WattHours {
        self.consumed
    }

    /// Remaining fraction of *total* stored energy, `0.0..=1.0`.
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.consumed.0 / self.battery.stored_energy().0).clamp(0.0, 1.0)
    }

    /// Whether the pack has hit the 85 % safe-drain limit — the flight
    /// must end here even though charge physically remains.
    pub fn at_drain_limit(&self) -> bool {
        self.consumed.0 >= self.battery.usable_energy().0
    }

    /// Usable energy still available before the drain limit.
    pub fn usable_remaining(&self) -> WattHours {
        WattHours((self.battery.usable_energy().0 - self.consumed.0).max(0.0))
    }

    /// Present terminal voltage: full packs sit ~8 % above nominal,
    /// sagging roughly linearly to ~8 % below nominal at the drain limit.
    pub fn voltage(&self) -> Volts {
        let depth = (self.consumed.0 / self.battery.usable_energy().0).clamp(0.0, 1.2);
        Volts(self.battery.nominal_voltage().0 * (1.08 - 0.16 * depth))
    }

    /// Integrates a power draw over `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or `dt` is negative.
    pub fn drain(&mut self, power: Watts, dt: f64) {
        assert!(power.0 >= 0.0, "power must be non-negative");
        assert!(dt >= 0.0, "dt must be non-negative");
        self.consumed += WattHours(power.0 * dt / 3600.0);
    }

    /// Predicted remaining flight minutes at a constant power draw.
    ///
    /// # Panics
    ///
    /// Panics if `power` is zero or negative.
    pub fn minutes_remaining_at(&self, power: Watts) -> f64 {
        self.usable_remaining().duration_at(power).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_components::battery::{CellCount, LIPO_DRAIN_LIMIT};
    use drone_components::units::{Grams, MilliampHours};

    fn pack() -> Battery {
        Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0))
    }

    #[test]
    fn fresh_pack_is_full() {
        let sim = BatterySim::new(pack());
        assert!((sim.remaining_fraction() - 1.0).abs() < 1e-12);
        assert!(!sim.at_drain_limit());
    }

    #[test]
    fn drain_accounts_energy() {
        let mut sim = BatterySim::new(pack());
        // 33.3 Wh pack: 33.3 W for half an hour consumes half.
        sim.drain(Watts(33.3), 1800.0);
        assert!((sim.remaining_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drain_limit_hits_at_85_percent() {
        let mut sim = BatterySim::new(pack());
        let usable = sim.battery().usable_energy().0;
        sim.drain(Watts(usable * 3600.0 / 100.0), 99.0);
        assert!(!sim.at_drain_limit());
        sim.drain(Watts(usable * 3600.0 / 100.0), 1.5);
        assert!(sim.at_drain_limit());
        assert!((sim.remaining_fraction() - (1.0 - LIPO_DRAIN_LIMIT)).abs() < 0.01);
    }

    #[test]
    fn voltage_sags_with_discharge() {
        let mut sim = BatterySim::new(pack());
        let v_full = sim.voltage().0;
        sim.drain(Watts(100.0), 600.0);
        let v_later = sim.voltage().0;
        assert!(v_later < v_full);
        // Stays within ±10 % of nominal over the usable window.
        assert!((v_later - 11.1).abs() / 11.1 < 0.10);
    }

    #[test]
    fn flight_time_prediction() {
        let sim = BatterySim::new(pack());
        // 33.3 Wh × 0.85 usable at 130 W ≈ 13.1 min — the paper's drone
        // class.
        let minutes = sim.minutes_remaining_at(Watts(130.0));
        assert!((12.0..14.5).contains(&minutes), "minutes {minutes}");
    }

    #[test]
    fn remaining_never_negative() {
        let mut sim = BatterySim::new(pack());
        sim.drain(Watts(1000.0), 3600.0 * 10.0);
        assert_eq!(sim.remaining_fraction(), 0.0);
        assert_eq!(sim.usable_remaining().0, 0.0);
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn negative_power_panics() {
        BatterySim::new(pack()).drain(Watts(-1.0), 1.0);
    }
}
