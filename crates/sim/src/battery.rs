//! LiPo discharge simulation.
//!
//! Tracks state of charge by integrating electrical power, applies the
//! paper's 85 % drain limit (`LiPoDrainLimit`), and models the mild
//! voltage sag of a LiPo across its discharge curve.

use drone_components::battery::Battery;
use drone_components::units::{Volts, WattHours, Watts};
use serde::{Deserialize, Serialize};

/// A battery with live state of charge.
///
/// # Example
///
/// ```
/// use drone_sim::BatterySim;
/// use drone_components::battery::{Battery, CellCount};
/// use drone_components::units::{Grams, MilliampHours, Watts};
///
/// let pack = Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0));
/// let mut sim = BatterySim::new(pack);
/// sim.drain(Watts(130.0), 60.0); // one minute at 130 W
/// assert!(sim.remaining_fraction() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatterySim {
    battery: Battery,
    consumed: WattHours,
    /// Surviving fraction of the pack's rated capacity (fault
    /// injection: cell disconnects shrink it below 1.0).
    capacity_factor: f64,
    /// Extra terminal-voltage drop from weak cells, volts.
    sag_volts: f64,
}

impl BatterySim {
    /// Creates a fully charged battery simulation.
    pub fn new(battery: Battery) -> BatterySim {
        BatterySim {
            battery,
            consumed: WattHours::ZERO,
            capacity_factor: 1.0,
            sag_volts: 0.0,
        }
    }

    /// The underlying pack.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Energy consumed so far. Clamped at the pack's (possibly
    /// fault-reduced) stored energy: an empty pack cannot keep paying.
    pub fn consumed(&self) -> WattHours {
        self.consumed
    }

    /// Stored energy after capacity faults.
    pub fn effective_stored_energy(&self) -> WattHours {
        WattHours(self.battery.stored_energy().0 * self.capacity_factor)
    }

    /// Usable energy (85 % drain limit) after capacity faults.
    pub fn effective_usable_energy(&self) -> WattHours {
        WattHours(self.battery.usable_energy().0 * self.capacity_factor)
    }

    /// Remaining fraction of *total* stored energy, `0.0..=1.0`.
    /// Monotonically non-increasing over any drain sequence.
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.consumed.0 / self.effective_stored_energy().0).clamp(0.0, 1.0)
    }

    /// Whether the pack has hit the 85 % safe-drain limit — the flight
    /// must end here even though charge physically remains.
    pub fn at_drain_limit(&self) -> bool {
        self.consumed.0 >= self.effective_usable_energy().0
    }

    /// Usable energy still available before the drain limit.
    pub fn usable_remaining(&self) -> WattHours {
        WattHours((self.effective_usable_energy().0 - self.consumed.0).max(0.0))
    }

    /// Present terminal voltage: full packs sit ~8 % above nominal,
    /// sagging roughly linearly to ~8 % below nominal at the drain
    /// limit, plus any fault-injected cell sag.
    pub fn voltage(&self) -> Volts {
        let depth = (self.consumed.0 / self.effective_usable_energy().0).clamp(0.0, 1.2);
        Volts(self.battery.nominal_voltage().0 * (1.08 - 0.16 * depth) - self.sag_volts)
    }

    /// Fault injection: permanently lose `fraction` of the pack's
    /// current capacity (cell disconnect). Clamped to `0.0..=1.0`.
    pub fn lose_capacity(&mut self, fraction: f64) {
        self.capacity_factor *= 1.0 - fraction.clamp(0.0, 1.0);
    }

    /// Fault injection: add a permanent extra terminal-voltage drop.
    pub fn add_cell_sag(&mut self, volts: f64) {
        self.sag_volts += volts.max(0.0);
    }

    /// Integrates a power draw over `dt` seconds. Consumed energy is
    /// clamped at the pack's stored energy: overdraining past empty can
    /// neither report negative usable energy nor push the state of
    /// charge below zero.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or `dt` is negative.
    pub fn drain(&mut self, power: Watts, dt: f64) {
        assert!(power.0 >= 0.0, "power must be non-negative");
        assert!(dt >= 0.0, "dt must be non-negative");
        let next = self.consumed.0 + power.0 * dt / 3600.0;
        // Clamp at stored energy, but never *reduce* consumed (a
        // capacity fault may have shrunk the pack below what was already
        // drawn — consumed energy stays monotone regardless).
        let cap = self.effective_stored_energy().0.max(self.consumed.0);
        self.consumed = WattHours(next.min(cap));
    }

    /// Predicted remaining flight minutes at a constant power draw.
    ///
    /// # Panics
    ///
    /// Panics if `power` is zero or negative.
    pub fn minutes_remaining_at(&self, power: Watts) -> f64 {
        self.usable_remaining().duration_at(power).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_components::battery::{CellCount, LIPO_DRAIN_LIMIT};
    use drone_components::units::{Grams, MilliampHours};

    fn pack() -> Battery {
        Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0))
    }

    #[test]
    fn fresh_pack_is_full() {
        let sim = BatterySim::new(pack());
        assert!((sim.remaining_fraction() - 1.0).abs() < 1e-12);
        assert!(!sim.at_drain_limit());
    }

    #[test]
    fn drain_accounts_energy() {
        let mut sim = BatterySim::new(pack());
        // 33.3 Wh pack: 33.3 W for half an hour consumes half.
        sim.drain(Watts(33.3), 1800.0);
        assert!((sim.remaining_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drain_limit_hits_at_85_percent() {
        let mut sim = BatterySim::new(pack());
        let usable = sim.battery().usable_energy().0;
        sim.drain(Watts(usable * 3600.0 / 100.0), 99.0);
        assert!(!sim.at_drain_limit());
        sim.drain(Watts(usable * 3600.0 / 100.0), 1.5);
        assert!(sim.at_drain_limit());
        assert!((sim.remaining_fraction() - (1.0 - LIPO_DRAIN_LIMIT)).abs() < 0.01);
    }

    #[test]
    fn voltage_sags_with_discharge() {
        let mut sim = BatterySim::new(pack());
        let v_full = sim.voltage().0;
        sim.drain(Watts(100.0), 600.0);
        let v_later = sim.voltage().0;
        assert!(v_later < v_full);
        // Stays within ±10 % of nominal over the usable window.
        assert!((v_later - 11.1).abs() / 11.1 < 0.10);
    }

    #[test]
    fn flight_time_prediction() {
        let sim = BatterySim::new(pack());
        // 33.3 Wh × 0.85 usable at 130 W ≈ 13.1 min — the paper's drone
        // class.
        let minutes = sim.minutes_remaining_at(Watts(130.0));
        assert!((12.0..14.5).contains(&minutes), "minutes {minutes}");
    }

    #[test]
    fn remaining_never_negative() {
        let mut sim = BatterySim::new(pack());
        sim.drain(Watts(1000.0), 3600.0 * 10.0);
        assert_eq!(sim.remaining_fraction(), 0.0);
        assert_eq!(sim.usable_remaining().0, 0.0);
    }

    #[test]
    fn overdrain_clamps_consumed_at_stored_energy() {
        let mut sim = BatterySim::new(pack());
        let stored = sim.effective_stored_energy().0;
        // Massive overdrain in one step, then more drain on the empty
        // pack: consumed pins at stored energy and state of charge stays
        // monotone at zero rather than going further negative.
        sim.drain(Watts(5000.0), 3600.0 * 5.0);
        assert_eq!(sim.consumed().0, stored);
        let soc_empty = sim.remaining_fraction();
        sim.drain(Watts(5000.0), 3600.0);
        assert_eq!(
            sim.consumed().0,
            stored,
            "consumed must not exceed stored energy"
        );
        assert_eq!(sim.remaining_fraction(), soc_empty);
        assert!(sim.at_drain_limit());
        assert!(
            sim.voltage().0 > 0.0,
            "voltage model stays bounded when empty"
        );
    }

    #[test]
    fn capacity_loss_shrinks_the_pack() {
        let mut sim = BatterySim::new(pack());
        sim.drain(Watts(33.3), 900.0); // ~25 % consumed
        let frac_before = sim.remaining_fraction();
        sim.lose_capacity(0.5);
        // Same consumed energy out of half the pack: much emptier.
        assert!(sim.remaining_fraction() < frac_before - 0.2);
        assert!(sim.effective_usable_energy().0 < sim.battery().usable_energy().0);
        // Losing everything cannot panic or go negative.
        sim.lose_capacity(1.0);
        assert_eq!(sim.usable_remaining().0, 0.0);
    }

    #[test]
    fn cell_sag_lowers_voltage() {
        let mut sim = BatterySim::new(pack());
        let v = sim.voltage().0;
        sim.add_cell_sag(0.6);
        assert!((sim.voltage().0 - (v - 0.6)).abs() < 1e-12);
        // Negative sag is ignored rather than boosting the pack.
        sim.add_cell_sag(-5.0);
        assert!((sim.voltage().0 - (v - 0.6)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn negative_power_panics() {
        BatterySim::new(pack()).drain(Watts(-1.0), 1.0);
    }
}
