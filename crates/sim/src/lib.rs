//! 6-DOF quadcopter flight simulation.
//!
//! This crate is the workspace's physical test bench — the substitute for
//! the paper's real 450 mm experimental drone. It provides:
//!
//! * [`state`] — the rigid-body state (position, velocity, attitude,
//!   angular rate) in a world frame with **Z up**; body +Z is the thrust
//!   axis.
//! * [`params`] — quadcopter physical parameters assembled from
//!   [`drone_components`] parts.
//! * [`rotor`] — the four-rotor set with first-order motor lag, thrust
//!   and reaction-torque generation.
//! * [`dynamics`] — RK4 rigid-body integration with gravity, rotor
//!   forces, aerodynamic drag and wind.
//! * [`wind`] — constant wind plus Ornstein–Uhlenbeck gusts (the
//!   disturbances Table 1 assigns to the inner loop).
//! * [`battery`] — LiPo state-of-charge integration with voltage sag.
//! * [`power`] — electrical power telemetry (the Figure 16 measurement
//!   substitute).
//!
//! # Example
//!
//! ```
//! use drone_sim::{params::QuadcopterParams, Quadcopter};
//!
//! let params = QuadcopterParams::default_450mm();
//! let mut quad = Quadcopter::new(params);
//! let hover = quad.hover_throttle();
//! for _ in 0..1000 {
//!     quad.step([hover; 4], drone_math::Vec3::ZERO, 1e-3);
//! }
//! // A symmetric quad at hover throttle barely moves in a second.
//! assert!(quad.state().position.norm() < 0.5);
//! ```

pub mod battery;
pub mod dynamics;
pub mod fault;
pub mod params;
pub mod power;
pub mod rotor;
pub mod state;
pub mod wind;

pub use battery::BatterySim;
pub use dynamics::{Quadcopter, StepOutput};
pub use fault::{FaultEvent, FaultKind, FaultSchedule};
pub use params::QuadcopterParams;
pub use power::{PowerMeter, PowerSample};
pub use state::RigidBodyState;
pub use wind::WindModel;
