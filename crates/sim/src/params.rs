//! Physical parameters of a simulated quadcopter, assembled from
//! [`drone_components`] parts so that the same component models drive
//! both the analytical design-space equations and the flying simulation.

use drone_components::battery::{Battery, CellCount};
use drone_components::esc::{Esc, EscClass};
use drone_components::frame::Frame;
use drone_components::motor::Motor;
use drone_components::propeller::Propeller;
use drone_components::units::{Grams, MilliampHours, Millimeters, Volts, Watts};
use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// Complete physical description of a quadcopter build.
///
/// # Example
///
/// ```
/// use drone_sim::params::QuadcopterParams;
/// let p = QuadcopterParams::default_450mm();
/// assert!((p.total_mass_kg() - 1.1).abs() < 0.3);
/// assert!(p.thrust_to_weight() >= 1.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadcopterParams {
    /// The airframe.
    pub frame: Frame,
    /// One of the four identical motors.
    pub motor: Motor,
    /// One of the four identical propellers.
    pub propeller: Propeller,
    /// One of the four identical ESCs.
    pub esc: Esc,
    /// The flight battery.
    pub battery: Battery,
    /// Everything else bolted on (flight controller, compute, sensors,
    /// wiring, payload), grams.
    pub accessories_weight: Grams,
    /// Constant electrical draw of avionics & compute (not propulsion).
    pub avionics_power: Watts,
    /// First-order motor response time constant, seconds.
    pub motor_time_constant: f64,
    /// Quadratic aerodynamic drag coefficient, N per (m/s)² per axis.
    pub linear_drag: Vec3,
    /// Rotational damping torque coefficient, N·m per (rad/s).
    pub angular_drag: f64,
    /// Blade-flapping moment coefficient, N·m per (N of thrust · m/s of
    /// lateral airflow): translating rotors flap back, tilting the thrust
    /// away from the motion — the Table 1 "propeller flapping"
    /// disturbance the inner loop must reject.
    pub flapping_coefficient: f64,
}

impl QuadcopterParams {
    /// Assembles a build resembling the paper's open-source drone:
    /// 450 mm frame, MT2213-935Kv-class motors, 1045 props, 30 A ESCs,
    /// 3S 3000 mAh pack, Navio2 + RPi avionics (§4, Figure 14).
    pub fn default_450mm() -> QuadcopterParams {
        let frame = Frame::new(Millimeters(450.0), Grams(272.0));
        let propeller = Propeller::new(10.0, 4.5);
        let battery = Battery::new(CellCount::S3, MilliampHours(3000.0), 25.0, Grams(248.0));
        // Size motors for TWR 2 against the known ~1.07 kg take-off mass.
        let takeoff_newtons = Grams(1071.0).weight_newtons();
        let motor = Motor::size_for(
            &propeller,
            battery.nominal_voltage(),
            takeoff_newtons * 2.0 / 4.0,
        );
        let esc = Esc::new(
            EscClass::LongFlight,
            drone_components::units::Amps(30.0),
            Grams(28.0),
        );
        QuadcopterParams {
            frame,
            motor,
            propeller,
            esc,
            battery,
            // Figure 14: RPi 50 + GPS 30 + Navio2 23 + misc 20 + RC 17 +
            // telemetry 15 + power module 15 + PPM 9 ≈ 179 g.
            accessories_weight: Grams(179.0),
            avionics_power: Watts(4.5),
            motor_time_constant: 0.05,
            // ½·ρ·Cd·A ≈ 0.03 N/(m/s)² for a ~0.05 m² frontal area; the
            // vertical axis sees the rotor disks and is draggier.
            linear_drag: Vec3::new(0.03, 0.03, 0.08),
            angular_drag: 0.02,
            flapping_coefficient: 0.0015,
        }
    }

    /// A 100 mm indoor micro build (paper Figure 10a class).
    pub fn default_100mm() -> QuadcopterParams {
        let frame = Frame::from_model(Millimeters(100.0));
        let propeller = Propeller::standard(2.0);
        let battery = Battery::from_model(CellCount::S1, MilliampHours(600.0), 30.0);
        let accessories = Grams(25.0);
        // Paper Equation 1 fixed point: motor/ESC weight feeds back into
        // the thrust target they must lift.
        let mut takeoff = frame.weight + battery.weight + accessories + Grams(20.0);
        let mut motor = Motor::size_for(
            &propeller,
            battery.nominal_voltage(),
            takeoff.weight_newtons() * 2.0 / 4.0,
        );
        let mut esc = Esc::from_model(EscClass::LongFlight, motor.max_current);
        for _ in 0..4 {
            takeoff = frame.weight
                + battery.weight
                + accessories
                + (motor.weight + propeller.weight + esc.weight) * 4.0;
            motor = Motor::size_for(
                &propeller,
                battery.nominal_voltage(),
                takeoff.weight_newtons() * 2.0 / 4.0,
            );
            esc = Esc::from_model(EscClass::LongFlight, motor.max_current);
        }
        QuadcopterParams {
            frame,
            motor,
            propeller,
            esc,
            battery,
            accessories_weight: accessories,
            avionics_power: Watts(1.5),
            motor_time_constant: 0.02,
            linear_drag: Vec3::new(0.004, 0.004, 0.01),
            angular_drag: 0.002,
            flapping_coefficient: 0.0008,
        }
    }

    /// A large 800 mm hexa-class build (paper Figure 10c class — here as
    /// a quad with 20" props and a 6S pack).
    pub fn default_800mm() -> QuadcopterParams {
        let frame = Frame::from_model(Millimeters(800.0));
        let propeller = Propeller::standard(frame.max_propeller_inches());
        let battery = Battery::from_model(CellCount::S6, MilliampHours(8000.0), 25.0);
        let accessories = Grams(350.0); // companion computer, gimbal mount
        let mut takeoff = frame.weight + battery.weight + accessories + Grams(100.0);
        let mut motor = Motor::size_for(
            &propeller,
            battery.nominal_voltage(),
            takeoff.weight_newtons() * 2.0 / 4.0,
        );
        let mut esc = Esc::from_model(EscClass::LongFlight, motor.max_current);
        for _ in 0..6 {
            takeoff = frame.weight
                + battery.weight
                + accessories
                + (motor.weight + propeller.weight + esc.weight) * 4.0;
            motor = Motor::size_for(
                &propeller,
                battery.nominal_voltage(),
                takeoff.weight_newtons() * 2.0 / 4.0,
            );
            esc = Esc::from_model(EscClass::LongFlight, motor.max_current);
        }
        QuadcopterParams {
            frame,
            motor,
            propeller,
            esc,
            battery,
            accessories_weight: accessories,
            avionics_power: Watts(20.0),
            // Big rotors answer slower.
            motor_time_constant: 0.10,
            linear_drag: Vec3::new(0.08, 0.08, 0.2),
            angular_drag: 0.08,
            flapping_coefficient: 0.002,
        }
    }

    /// Total take-off weight.
    pub fn total_weight(&self) -> Grams {
        self.frame.weight
            + self.motor.weight * 4.0
            + self.propeller.weight * 4.0
            + self.esc.weight * 4.0
            + self.battery.weight
            + self.accessories_weight
    }

    /// Take-off mass in kg.
    pub fn total_mass_kg(&self) -> f64 {
        self.total_weight().kilograms()
    }

    /// Battery supply voltage (nominal).
    pub fn supply_voltage(&self) -> Volts {
        self.battery.nominal_voltage()
    }

    /// Maximum total thrust of the four motors, newtons.
    pub fn max_total_thrust_newtons(&self) -> f64 {
        4.0 * self
            .motor
            .max_thrust_newtons(&self.propeller, self.supply_voltage())
    }

    /// Thrust-to-weight ratio (§2.3; flyable builds need ≥ 2).
    pub fn thrust_to_weight(&self) -> f64 {
        self.max_total_thrust_newtons() / self.total_weight().weight_newtons()
    }

    /// Hover thrust per motor, newtons.
    pub fn hover_thrust_per_motor(&self) -> f64 {
        self.total_weight().weight_newtons() / 4.0
    }

    /// Diagonal body inertia estimated from the mass distribution: motors
    /// at the arm tips dominate roll/pitch inertia; the yaw axis sees both
    /// arms. Returns `(Ixx, Iyy, Izz)` in kg·m².
    pub fn inertia_diagonal(&self) -> Vec3 {
        let arm = self.frame.wheelbase.meters() / 2.0;
        let tip_mass = (self.motor.weight + self.propeller.weight + self.esc.weight).kilograms();
        let hub_mass = self.total_mass_kg() - 4.0 * tip_mass;
        // Four point masses at arm tips (two per axis at distance arm/√2
        // in X config) plus a central hub disk.
        let d2 = (arm / std::f64::consts::SQRT_2).powi(2);
        let i_tip_roll = 4.0 * tip_mass * d2;
        let hub_r = 0.08_f64;
        let i_hub = 0.5 * hub_mass * hub_r * hub_r;
        let roll = i_tip_roll + i_hub;
        let yaw = 4.0 * tip_mass * arm * arm + i_hub;
        Vec3::new(roll, roll, yaw)
    }

    /// Rotor arm half-length, metres.
    pub fn arm_length(&self) -> f64 {
        self.frame.wheelbase.meters() / 2.0
    }

    /// Validates physical consistency; returns a human-readable list of
    /// problems (empty when flyable).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.thrust_to_weight() < 1.1 {
            problems.push(format!(
                "thrust-to-weight {:.2} cannot sustain hover",
                self.thrust_to_weight()
            ));
        }
        if !self.esc.supports(self.motor.max_current) {
            problems.push(format!(
                "ESC rated {} cannot feed motor drawing {}",
                self.esc.max_continuous_current, self.motor.max_current
            ));
        }
        let total_max_amps = self.motor.max_current * 4.0;
        if self.battery.max_continuous_current() < total_max_amps {
            problems.push(format!(
                "battery discharge limit {} below total motor draw {}",
                self.battery.max_continuous_current(),
                total_max_amps
            ));
        }
        if self.motor_time_constant <= 0.0 {
            problems.push("motor time constant must be positive".to_owned());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_450_matches_paper_drone() {
        let p = QuadcopterParams::default_450mm();
        // Figure 14 total is ~1071 g; component models should land close.
        let w = p.total_weight().0;
        assert!((950.0..1250.0).contains(&w), "weight {w}");
        assert!(p.thrust_to_weight() >= 1.9, "TWR {}", p.thrust_to_weight());
        assert!(p.validate().is_empty(), "{:?}", p.validate());
    }

    #[test]
    fn default_100_is_a_micro() {
        let p = QuadcopterParams::default_100mm();
        assert!(p.total_weight().0 < 300.0, "weight {}", p.total_weight());
        assert!(p.thrust_to_weight() >= 1.8);
    }

    #[test]
    fn default_800_is_a_heavy_lifter() {
        let p = QuadcopterParams::default_800mm();
        assert!(
            (2000.0..4500.0).contains(&p.total_weight().0),
            "weight {}",
            p.total_weight()
        );
        assert!(p.thrust_to_weight() >= 1.9, "TWR {}", p.thrust_to_weight());
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        // Low-Kv motors on 6S, per Figure 9d.
        assert!(
            p.motor.kv_rpm_per_volt < 400.0,
            "Kv {}",
            p.motor.kv_rpm_per_volt
        );
    }

    #[test]
    fn inertia_ordering() {
        let p = QuadcopterParams::default_450mm();
        let i = p.inertia_diagonal();
        // Yaw inertia exceeds roll/pitch for an X quad; all positive.
        assert!(i.x > 0.0 && i.z > i.x);
        assert!((i.x - i.y).abs() < 1e-12, "symmetric build");
        // Plausible magnitude for a 1 kg 450 mm quad: ~0.005–0.05 kg·m².
        assert!((0.003..0.08).contains(&i.x), "Ixx {}", i.x);
    }

    #[test]
    fn hover_thrust_is_quarter_weight() {
        let p = QuadcopterParams::default_450mm();
        let t = p.hover_thrust_per_motor();
        assert!((t * 4.0 - p.total_weight().weight_newtons()).abs() < 1e-9);
    }

    #[test]
    fn validate_flags_weak_motor() {
        let mut p = QuadcopterParams::default_450mm();
        // Strap a brick to it.
        p.accessories_weight = Grams(5000.0);
        let problems = p.validate();
        assert!(
            problems.iter().any(|m| m.contains("thrust-to-weight")),
            "{problems:?}"
        );
    }

    #[test]
    fn validate_flags_undersized_esc() {
        let mut p = QuadcopterParams::default_450mm();
        p.esc = Esc::new(
            EscClass::ShortFlight,
            drone_components::units::Amps(0.5),
            Grams(5.0),
        );
        let problems = p.validate();
        assert!(problems.iter().any(|m| m.contains("ESC")), "{problems:?}");
    }
}
