//! Power telemetry — the simulation's substitute for the paper's USB power
//! meter and oscilloscope logging (§5, Figure 16).
//!
//! The paper measures the RPi at 2 Hz (±10 mW) and the whole drone at
//! 50 Hz (±0.5 mW); [`PowerMeter`] records phase-labelled samples at a
//! configurable rate and reports the per-phase averages Figure 16 quotes.

use drone_components::units::Watts;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One logged power sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Simulation time, seconds.
    pub time: f64,
    /// Instantaneous power.
    pub power: Watts,
    /// Mission phase label active when the sample was taken.
    pub phase: String,
}

/// A sampling power meter with phase labelling.
///
/// # Example
///
/// ```
/// use drone_sim::PowerMeter;
/// use drone_components::units::Watts;
/// let mut meter = PowerMeter::new(0.5); // 2 Hz, like the paper's USB meter
/// meter.set_phase("autopilot");
/// meter.record(0.0, Watts(3.39));
/// meter.record(0.6, Watts(3.41));
/// assert_eq!(meter.samples().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    sample_interval: f64,
    samples: Vec<PowerSample>,
    phase: String,
    last_sample_time: Option<f64>,
    energy_wh: f64,
    last_time: Option<f64>,
}

impl PowerMeter {
    /// Creates a meter sampling at most every `sample_interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(sample_interval: f64) -> PowerMeter {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        PowerMeter {
            sample_interval,
            samples: Vec::new(),
            phase: "init".to_owned(),
            last_sample_time: None,
            energy_wh: 0.0,
            last_time: None,
        }
    }

    /// Sets the phase label for subsequent samples.
    pub fn set_phase(&mut self, phase: impl Into<String>) {
        self.phase = phase.into();
    }

    /// Current phase label.
    pub fn phase(&self) -> &str {
        &self.phase
    }

    /// Offers a measurement at simulation time `time`; stored only when
    /// the sampling interval has elapsed. Energy is integrated from every
    /// call regardless of sampling.
    pub fn record(&mut self, time: f64, power: Watts) {
        if let Some(prev) = self.last_time {
            let dt = (time - prev).max(0.0);
            self.energy_wh += power.0 * dt / 3600.0;
        }
        self.last_time = Some(time);
        let due = match self.last_sample_time {
            None => true,
            Some(t) => time - t >= self.sample_interval - 1e-12,
        };
        if due {
            self.samples.push(PowerSample {
                time,
                power,
                phase: self.phase.clone(),
            });
            self.last_sample_time = Some(time);
        }
    }

    /// All stored samples in time order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Total energy integrated across all `record` calls, Wh.
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Mean power per phase label, in first-seen order of `BTreeMap` keys.
    pub fn phase_averages(&self) -> BTreeMap<String, Watts> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for s in &self.samples {
            let e = sums.entry(s.phase.clone()).or_insert((0.0, 0));
            e.0 += s.power.0;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (sum, n))| (k, Watts(sum / n as f64)))
            .collect()
    }

    /// Peak power seen in samples.
    pub fn peak(&self) -> Option<Watts> {
        self.samples
            .iter()
            .map(|s| s.power)
            .fold(None, |acc, p| match acc {
                None => Some(p),
                Some(a) => Some(a.max(p)),
            })
    }
}

impl fmt::Display for PowerMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "power trace: {} samples, {:.2} Wh",
            self.samples.len(),
            self.energy_wh
        )?;
        for (phase, avg) in self.phase_averages() {
            writeln!(f, "  {phase}: avg {avg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_sampling_interval() {
        let mut m = PowerMeter::new(0.5);
        for i in 0..100 {
            m.record(i as f64 * 0.1, Watts(1.0));
        }
        // 10 s of data at 0.1 s offers, 0.5 s interval → ~20 samples.
        let n = m.samples().len();
        assert!((19..=21).contains(&n), "{n} samples");
    }

    #[test]
    fn integrates_energy_from_all_offers() {
        let mut m = PowerMeter::new(10.0);
        for i in 0..=3600 {
            m.record(i as f64, Watts(100.0));
        }
        // 100 W for an hour = 100 Wh, regardless of sparse sampling.
        assert!((m.energy_wh() - 100.0).abs() < 0.2, "{}", m.energy_wh());
    }

    #[test]
    fn phase_averages_split_correctly() {
        let mut m = PowerMeter::new(0.1);
        m.set_phase("autopilot");
        m.record(0.0, Watts(3.0));
        m.record(0.2, Watts(5.0));
        m.set_phase("slam");
        m.record(0.4, Watts(9.0));
        let avg = m.phase_averages();
        assert!((avg["autopilot"].0 - 4.0).abs() < 1e-12);
        assert!((avg["slam"].0 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn peak_detection() {
        let mut m = PowerMeter::new(0.1);
        assert!(m.peak().is_none());
        m.record(0.0, Watts(3.0));
        m.record(0.2, Watts(7.5));
        m.record(0.4, Watts(2.0));
        assert_eq!(m.peak(), Some(Watts(7.5)));
    }

    #[test]
    #[should_panic(expected = "sample interval must be positive")]
    fn invalid_interval_panics() {
        let _ = PowerMeter::new(0.0);
    }
}
