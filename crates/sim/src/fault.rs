//! Deterministic fault injection for the flight simulation.
//!
//! The paper's robustness claims — the 85 % LiPo drain limit bounding
//! every flight, gust rejection in the inner loop (§2.1.3, [22]), and
//! graceful degradation when subsystems misbehave — only mean something
//! if components can actually fail. A [`FaultSchedule`] is a timed list
//! of [`FaultEvent`]s applied *inside* the physics step so the dynamics,
//! power draw and battery state stay mutually consistent:
//!
//! * motor/ESC thrust degradation and total rotor-out,
//! * battery cell sag (extra voltage drop) and sudden capacity loss,
//! * wind gust bursts superimposed on the ambient wind model.
//!
//! Schedules are plain data: build them explicitly with
//! [`FaultSchedule::scripted`] or draw a reproducible random campaign
//! with [`FaultSchedule::randomized`], which uses the workspace's
//! deterministic [`Pcg32`] so a seed fully determines every injected
//! fault.

use crate::battery::BatterySim;
use crate::rotor::{RotorSet, ROTOR_COUNT};
use drone_math::{Pcg32, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of component fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Motor/ESC derating: the rotor produces `effectiveness` (0..1) of
    /// its commanded thrust from the event onward.
    MotorDegradation {
        /// Rotor index, `0..ROTOR_COUNT`.
        rotor: usize,
        /// Remaining thrust fraction, clamped to `0.0..=1.0`.
        effectiveness: f64,
    },
    /// Total loss of one rotor (thrown blade, dead ESC).
    RotorOut {
        /// Rotor index, `0..ROTOR_COUNT`.
        rotor: usize,
    },
    /// A weak cell: permanent extra terminal-voltage drop.
    BatterySag {
        /// Additional sag, volts.
        volts: f64,
    },
    /// Sudden loss of a fraction of the pack's remaining capacity
    /// (cell disconnect, cold-soak).
    CapacityLoss {
        /// Fraction of capacity lost, clamped to `0.0..=1.0`.
        fraction: f64,
    },
    /// A wind gust burst added on top of the ambient wind.
    GustBurst {
        /// Gust velocity, world frame, m/s.
        velocity: Vec3,
        /// How long the burst lasts, seconds.
        duration: f64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::MotorDegradation {
                rotor,
                effectiveness,
            } => {
                write!(f, "motor {rotor} degraded to {:.0}%", effectiveness * 100.0)
            }
            FaultKind::RotorOut { rotor } => write!(f, "rotor {rotor} out"),
            FaultKind::BatterySag { volts } => write!(f, "battery sag {volts:.2} V"),
            FaultKind::CapacityLoss { fraction } => {
                write!(f, "capacity loss {:.0}%", fraction * 100.0)
            }
            FaultKind::GustBurst { velocity, duration } => {
                write!(f, "gust {:.1} m/s for {duration:.1} s", velocity.norm())
            }
        }
    }
}

/// A fault fired at a simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time the fault fires, seconds.
    pub at: f64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A timed, deterministic schedule of fault events.
///
/// # Example
///
/// ```
/// use drone_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
/// let schedule = FaultSchedule::scripted(vec![FaultEvent {
///     at: 5.0,
///     kind: FaultKind::RotorOut { rotor: 2 },
/// }]);
/// assert_eq!(schedule.remaining(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    next: usize,
    /// Active gust bursts as `(end_time, velocity)` pairs.
    gusts: Vec<(f64, Vec3)>,
}

impl FaultSchedule {
    /// An empty schedule (nothing ever fails).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events; they are sorted by time.
    pub fn scripted(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        FaultSchedule {
            events,
            next: 0,
            gusts: Vec::new(),
        }
    }

    /// Draws `count` random faults in `(0, horizon)` seconds from the
    /// deterministic PCG stream for `seed`: identical seeds produce
    /// identical schedules on every platform.
    pub fn randomized(seed: u64, horizon: f64, count: usize) -> FaultSchedule {
        let mut rng = Pcg32::new(seed, 0xFA01);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at = rng.uniform(0.1 * horizon, 0.9 * horizon);
            let kind = match rng.below(5) {
                0 => FaultKind::MotorDegradation {
                    rotor: rng.below(ROTOR_COUNT as u32) as usize,
                    effectiveness: rng.uniform(0.4, 0.9),
                },
                1 => FaultKind::RotorOut {
                    rotor: rng.below(ROTOR_COUNT as u32) as usize,
                },
                2 => FaultKind::BatterySag {
                    volts: rng.uniform(0.2, 1.0),
                },
                3 => FaultKind::CapacityLoss {
                    fraction: rng.uniform(0.1, 0.4),
                },
                _ => {
                    let heading = rng.uniform(0.0, std::f64::consts::TAU);
                    let speed = rng.uniform(4.0, 14.0);
                    FaultKind::GustBurst {
                        velocity: Vec3::new(heading.cos() * speed, heading.sin() * speed, 0.0),
                        duration: rng.uniform(0.5, 4.0),
                    }
                }
            };
            events.push(FaultEvent { at, kind });
        }
        FaultSchedule::scripted(events)
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Events already fired, in firing order.
    pub fn fired(&self) -> &[FaultEvent] {
        &self.events[..self.next]
    }

    /// Fires every event due at or before `now` against the physical
    /// components and returns the extra gust wind currently active.
    ///
    /// Called by [`crate::Quadcopter::step`]; callers stepping components
    /// manually can drive it directly.
    pub fn advance(&mut self, now: f64, rotors: &mut RotorSet, battery: &mut BatterySim) -> Vec3 {
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let event = self.events[self.next];
            match event.kind {
                FaultKind::MotorDegradation {
                    rotor,
                    effectiveness,
                } => {
                    rotors.set_effectiveness(rotor, effectiveness);
                }
                FaultKind::RotorOut { rotor } => rotors.set_effectiveness(rotor, 0.0),
                FaultKind::BatterySag { volts } => battery.add_cell_sag(volts),
                FaultKind::CapacityLoss { fraction } => battery.lose_capacity(fraction),
                FaultKind::GustBurst { velocity, duration } => {
                    self.gusts.push((event.at + duration, velocity));
                }
            }
            self.next += 1;
        }
        self.gusts.retain(|(end, _)| *end > now);
        self.gusts.iter().fold(Vec3::ZERO, |acc, (_, v)| acc + *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::QuadcopterParams;

    fn rig() -> (RotorSet, BatterySim) {
        let params = QuadcopterParams::default_450mm();
        (RotorSet::new(&params), BatterySim::new(params.battery))
    }

    #[test]
    fn events_fire_in_time_order_once() {
        let (mut rotors, mut battery) = rig();
        let mut schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 2.0,
                kind: FaultKind::RotorOut { rotor: 1 },
            },
            FaultEvent {
                at: 1.0,
                kind: FaultKind::BatterySag { volts: 0.5 },
            },
        ]);
        assert_eq!(schedule.remaining(), 2);
        schedule.advance(0.5, &mut rotors, &mut battery);
        assert_eq!(schedule.remaining(), 2);
        schedule.advance(1.5, &mut rotors, &mut battery);
        assert_eq!(schedule.remaining(), 1);
        assert!(matches!(
            schedule.fired()[0].kind,
            FaultKind::BatterySag { .. }
        ));
        schedule.advance(2.5, &mut rotors, &mut battery);
        assert_eq!(schedule.remaining(), 0);
        assert_eq!(rotors.effectiveness()[1], 0.0);
    }

    #[test]
    fn gust_burst_is_active_only_for_its_duration() {
        let (mut rotors, mut battery) = rig();
        let gust = Vec3::new(8.0, 0.0, 0.0);
        let mut schedule = FaultSchedule::scripted(vec![FaultEvent {
            at: 1.0,
            kind: FaultKind::GustBurst {
                velocity: gust,
                duration: 2.0,
            },
        }]);
        assert_eq!(schedule.advance(0.5, &mut rotors, &mut battery), Vec3::ZERO);
        assert_eq!(schedule.advance(1.5, &mut rotors, &mut battery), gust);
        assert_eq!(schedule.advance(3.5, &mut rotors, &mut battery), Vec3::ZERO);
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let a = FaultSchedule::randomized(9, 60.0, 6);
        let b = FaultSchedule::randomized(9, 60.0, 6);
        let c = FaultSchedule::randomized(10, 60.0, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.remaining(), 6);
    }

    #[test]
    fn capacity_loss_and_sag_hit_the_battery() {
        let (mut rotors, mut battery) = rig();
        let v0 = battery.voltage().0;
        let stored0 = battery.effective_stored_energy().0;
        let mut schedule = FaultSchedule::scripted(vec![
            FaultEvent {
                at: 0.0,
                kind: FaultKind::CapacityLoss { fraction: 0.3 },
            },
            FaultEvent {
                at: 0.0,
                kind: FaultKind::BatterySag { volts: 0.4 },
            },
        ]);
        schedule.advance(0.0, &mut rotors, &mut battery);
        assert!((battery.effective_stored_energy().0 - stored0 * 0.7).abs() < 1e-9);
        assert!(battery.voltage().0 < v0 - 0.3);
    }
}
