//! The four-rotor propulsion set.
//!
//! Rotors are arranged in an X configuration; index layout (top view,
//! body +X forward, +Y right, +Z up):
//!
//! ```text
//!      0 (CCW)   1 (CW)
//!          \     /
//!           \   /
//!            [X]          front is up
//!           /   \
//!          /     \
//!      3 (CW)    2 (CCW)
//! ```
//!
//! Each rotor follows a first-order speed lag toward its commanded speed —
//! this is exactly the *physical response time* the paper identifies as
//! the inner-loop update-rate limiter (§2.1.3-D): no amount of extra
//! compute makes the propellers spin up faster.

use crate::params::QuadcopterParams;
use drone_components::units::{Amps, Watts};
use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// Number of rotors on a quadcopter.
pub const ROTOR_COUNT: usize = 4;

/// Spin direction of each rotor (+1 = CCW seen from above).
pub const SPIN: [f64; ROTOR_COUNT] = [1.0, -1.0, 1.0, -1.0];

/// Body-frame arm direction unit vectors (X config at 45°).
pub fn arm_directions() -> [Vec3; ROTOR_COUNT] {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    [
        Vec3::new(s, -s, 0.0),  // 0: front-left
        Vec3::new(s, s, 0.0),   // 1: front-right
        Vec3::new(-s, s, 0.0),  // 2: rear-right
        Vec3::new(-s, -s, 0.0), // 3: rear-left
    ]
}

/// Aggregate force/torque/power produced by the rotor set in one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RotorForces {
    /// Total thrust along body +Z, newtons.
    pub total_thrust: f64,
    /// Torque about the body axes, N·m.
    pub torque: Vec3,
    /// Electrical power drawn by all four motors.
    pub electrical_power: Watts,
    /// Current drawn from the battery by all four motors.
    pub current: Amps,
}

/// Dynamic state of the four rotors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RotorSet {
    /// Current rotation rates, rev/s.
    speeds: [f64; ROTOR_COUNT],
    /// Maximum loaded rotation rate, rev/s.
    max_speed: f64,
    /// First-order lag time constant, s.
    time_constant: f64,
    /// Per-rotor output derating (1.0 = healthy, 0.0 = rotor out),
    /// applied by fault injection to thrust, torque and power alike —
    /// the ESC-level view of a failing drive.
    effectiveness: [f64; ROTOR_COUNT],
}

impl RotorSet {
    /// Creates a rotor set at rest from quadcopter parameters.
    pub fn new(params: &QuadcopterParams) -> RotorSet {
        RotorSet {
            speeds: [0.0; ROTOR_COUNT],
            max_speed: params.motor.max_loaded_rev_per_s(params.supply_voltage()),
            time_constant: params.motor_time_constant,
            effectiveness: [1.0; ROTOR_COUNT],
        }
    }

    /// Current rotor speeds, rev/s.
    pub fn speeds(&self) -> [f64; ROTOR_COUNT] {
        self.speeds
    }

    /// Maximum commandable speed, rev/s.
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Per-rotor output derating factors (1.0 = healthy).
    pub fn effectiveness(&self) -> [f64; ROTOR_COUNT] {
        self.effectiveness
    }

    /// Derates one rotor's output (fault injection): `factor` of thrust,
    /// torque and power survive. `0.0` models a total rotor-out.
    ///
    /// # Panics
    ///
    /// Panics if `rotor >= ROTOR_COUNT`.
    pub fn set_effectiveness(&mut self, rotor: usize, factor: f64) {
        self.effectiveness[rotor] = factor.clamp(0.0, 1.0);
    }

    /// Advances rotor speeds toward normalized throttle commands
    /// (`0.0..=1.0` of max speed) over `dt` seconds.
    ///
    /// Commands are clamped into range; the lag uses the exact
    /// discretization of the first-order response.
    pub fn step(&mut self, throttle: [f64; ROTOR_COUNT], dt: f64) {
        let alpha = 1.0 - (-dt / self.time_constant).exp();
        for (speed, cmd) in self.speeds.iter_mut().zip(throttle) {
            let target = cmd.clamp(0.0, 1.0) * self.max_speed;
            *speed += (target - *speed) * alpha;
        }
    }

    /// Computes the aggregate forces at the current rotor speeds.
    pub fn forces(&self, params: &QuadcopterParams) -> RotorForces {
        let prop = &params.propeller;
        let arm = params.arm_length();
        let dirs = arm_directions();
        let volts = params.supply_voltage();

        let mut total_thrust = 0.0;
        let mut torque = Vec3::ZERO;
        let mut electrical = 0.0;
        for i in 0..ROTOR_COUNT {
            let n = self.speeds[i];
            let eff = self.effectiveness[i];
            let thrust = prop.thrust_newtons(n) * eff;
            total_thrust += thrust;
            // Thrust applied at the arm tip: τ = r × F with F = T·ẑ.
            let r = dirs[i] * arm;
            torque += r.cross(Vec3::Z * thrust);
            // Reaction torque about yaw, opposing spin direction.
            torque += Vec3::Z * (-SPIN[i] * prop.torque_nm(n) * eff);
            electrical +=
                prop.shaft_power_watts(n) * eff / drone_components::motor::MOTOR_EFFICIENCY;
        }
        let electrical_power = Watts(electrical);
        RotorForces {
            total_thrust,
            torque,
            electrical_power,
            current: Amps(electrical / volts.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::QuadcopterParams;

    fn spun_up(throttle: [f64; 4]) -> (QuadcopterParams, RotorSet) {
        let params = QuadcopterParams::default_450mm();
        let mut rotors = RotorSet::new(&params);
        // Run well past the time constant so speeds settle.
        for _ in 0..2000 {
            rotors.step(throttle, 1e-3);
        }
        (params, rotors)
    }

    #[test]
    fn equal_throttle_gives_pure_thrust() {
        let (params, rotors) = spun_up([0.6; 4]);
        let f = rotors.forces(&params);
        assert!(f.total_thrust > 0.0);
        assert!(
            f.torque.norm() < 1e-9,
            "symmetric spin must cancel torque: {}",
            f.torque
        );
    }

    #[test]
    fn front_rear_split_pitches() {
        // More thrust on rear rotors (2,3) pitches nose down → negative
        // torque about +Y?  r_rear × F points +Y·(−x)·T… verify sign:
        // rear rotors are at −X, so r × (T ẑ) = (−x,±y,0)×(0,0,T) has
        // +Y component = (−x)·T·(−1) … assert direction empirically.
        let (params, rotors) = spun_up([0.4, 0.4, 0.7, 0.7]);
        let f = rotors.forces(&params);
        assert!(
            f.torque.y.abs() > 1e-3,
            "expected pitch torque, got {}",
            f.torque
        );
        assert!(
            f.torque.x.abs() < 1e-9,
            "no roll torque expected: {}",
            f.torque
        );
        // Rear-heavy thrust must rotate the nose down: for r=(−a, ±a, 0),
        // F=T ẑ, τ = r×F = (±a·T, a·T, 0) — pitch component is positive.
        assert!(f.torque.y > 0.0);
    }

    #[test]
    fn left_right_split_rolls() {
        // More thrust on right rotors (1,2) rolls left.
        let (params, rotors) = spun_up([0.4, 0.7, 0.7, 0.4]);
        let f = rotors.forces(&params);
        assert!(f.torque.x.abs() > 1e-3);
        assert!(f.torque.y.abs() < 1e-9);
        // Right rotors at +Y: τ = (0,a,0)×(0,0,T) = (a·T, 0, 0)... sign:
        // (y·T − 0, …) → x-component = y·Fz = +a·T; rolling right-side-up
        // (left roll is negative about +X for Z-up/X-forward). The exact
        // sign convention is asserted here as the contract.
        assert!(f.torque.x > 0.0);
    }

    #[test]
    fn diagonal_split_yaws() {
        // Speeding up the CCW pair (0,2) adds CW reaction torque (−Z).
        let (params, rotors) = spun_up([0.7, 0.4, 0.7, 0.4]);
        let f = rotors.forces(&params);
        assert!(
            f.torque.z < 0.0,
            "CCW rotors must yaw the body CW: {}",
            f.torque
        );
        assert!(f.torque.x.abs() < 1e-9 && f.torque.y.abs() < 1e-9);
    }

    #[test]
    fn first_order_lag_rises_as_expected() {
        let params = QuadcopterParams::default_450mm();
        let mut rotors = RotorSet::new(&params);
        let tau = params.motor_time_constant;
        // After one time constant the speed is ~63.2 % of the step.
        let steps = (tau / 1e-4).round() as usize;
        for _ in 0..steps {
            rotors.step([1.0; 4], 1e-4);
        }
        let frac = rotors.speeds()[0] / rotors.max_speed();
        assert!((frac - 0.632).abs() < 0.01, "rise fraction {frac}");
    }

    #[test]
    fn throttle_is_clamped() {
        let params = QuadcopterParams::default_450mm();
        let mut rotors = RotorSet::new(&params);
        for _ in 0..5000 {
            rotors.step([7.0, -3.0, 0.5, 0.5], 1e-3);
        }
        let s = rotors.speeds();
        assert!((s[0] - rotors.max_speed()).abs() < 1e-6);
        assert!(s[1].abs() < 1e-6);
    }

    #[test]
    fn power_scales_superlinearly_with_thrust() {
        let (params, low) = spun_up([0.3; 4]);
        let (_, high) = spun_up([0.6; 4]);
        let fl = low.forces(&params);
        let fh = high.forces(&params);
        let thrust_ratio = fh.total_thrust / fl.total_thrust;
        let power_ratio = fh.electrical_power.0 / fl.electrical_power.0;
        // P ∝ T^1.5 for ideal rotors.
        assert!((power_ratio - thrust_ratio.powf(1.5)).abs() / power_ratio < 0.05);
    }

    #[test]
    fn rotor_out_kills_thrust_torque_and_power_of_that_rotor() {
        let (params, mut rotors) = spun_up([0.6; 4]);
        let healthy = rotors.forces(&params);
        rotors.set_effectiveness(2, 0.0);
        let faulted = rotors.forces(&params);
        // One of four equal rotors gone: 3/4 thrust and power remain.
        assert!((faulted.total_thrust - healthy.total_thrust * 0.75).abs() < 1e-9);
        assert!((faulted.electrical_power.0 - healthy.electrical_power.0 * 0.75).abs() < 1e-9);
        // The asymmetry now produces roll/pitch torque.
        assert!(faulted.torque.norm() > 0.01, "torque {}", faulted.torque);
    }

    #[test]
    fn degradation_scales_smoothly() {
        let (params, mut rotors) = spun_up([0.6; 4]);
        let healthy = rotors.forces(&params);
        for i in 0..ROTOR_COUNT {
            rotors.set_effectiveness(i, 0.5);
        }
        let derated = rotors.forces(&params);
        assert!((derated.total_thrust - healthy.total_thrust * 0.5).abs() < 1e-9);
        assert!(
            derated.torque.norm() < 1e-9,
            "symmetric derating keeps balance"
        );
    }

    #[test]
    fn hover_power_is_realistic() {
        // The paper's 450 mm drone averages ~130 W in gentle flight.
        let params = QuadcopterParams::default_450mm();
        let hover_n = params
            .propeller
            .rev_per_s_for_thrust(params.hover_thrust_per_motor());
        let mut rotors = RotorSet::new(&params);
        let throttle = hover_n / rotors.max_speed();
        for _ in 0..2000 {
            rotors.step([throttle; 4], 1e-3);
        }
        let f = rotors.forces(&params);
        assert!(
            (60.0..220.0).contains(&f.electrical_power.0),
            "hover power {}",
            f.electrical_power
        );
    }
}
