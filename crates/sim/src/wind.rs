//! Wind and gust model.
//!
//! The paper's Table 1 assigns wind gusts, local disturbances and
//! atmospheric turbulence to the inner-loop control. This module produces
//! those disturbances: a constant mean wind plus an Ornstein–Uhlenbeck
//! gust process per axis (a standard low-fidelity Dryden-like turbulence
//! stand-in), deterministic per seed.

use drone_math::{Pcg32, Vec3};
use serde::{Deserialize, Serialize};

/// Configurable wind field sampled over time.
///
/// # Example
///
/// ```
/// use drone_sim::WindModel;
/// use drone_math::Vec3;
/// let mut wind = WindModel::gusty(Vec3::new(3.0, 0.0, 0.0), 2.0, 42);
/// let w = wind.sample(0.01);
/// assert!(w.is_finite());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindModel {
    mean: Vec3,
    gust_intensity: f64,
    correlation_time: f64,
    gust: Vec3,
    rng: Pcg32,
}

impl WindModel {
    /// Still air.
    pub fn calm() -> WindModel {
        WindModel::gusty(Vec3::ZERO, 0.0, 0)
    }

    /// Constant wind with no gusts.
    pub fn steady(mean: Vec3) -> WindModel {
        WindModel::gusty(mean, 0.0, 0)
    }

    /// Mean wind plus OU gusts with the given standard deviation (m/s).
    ///
    /// # Panics
    ///
    /// Panics if `gust_intensity` is negative.
    pub fn gusty(mean: Vec3, gust_intensity: f64, seed: u64) -> WindModel {
        assert!(gust_intensity >= 0.0, "gust intensity must be non-negative");
        WindModel {
            mean,
            gust_intensity,
            correlation_time: 1.5,
            gust: Vec3::ZERO,
            rng: Pcg32::seed_from(seed),
        }
    }

    /// Mean wind component.
    pub fn mean(&self) -> Vec3 {
        self.mean
    }

    /// Advances the gust process by `dt` and returns the total wind
    /// velocity (world frame, m/s).
    pub fn sample(&mut self, dt: f64) -> Vec3 {
        if self.gust_intensity > 0.0 {
            // OU update: g ← g·e^(−dt/τ) + σ·√(1−e^(−2dt/τ))·N(0,1).
            let decay = (-dt / self.correlation_time).exp();
            let noise_scale = self.gust_intensity * (1.0 - decay * decay).sqrt();
            self.gust = Vec3::new(
                self.gust.x * decay + noise_scale * self.rng.normal(),
                self.gust.y * decay + noise_scale * self.rng.normal(),
                self.gust.z * decay + noise_scale * 0.3 * self.rng.normal(),
            );
        }
        self.mean + self.gust
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_air_is_zero() {
        let mut w = WindModel::calm();
        for _ in 0..100 {
            assert_eq!(w.sample(0.01), Vec3::ZERO);
        }
    }

    #[test]
    fn steady_wind_is_constant() {
        let mean = Vec3::new(4.0, -2.0, 0.0);
        let mut w = WindModel::steady(mean);
        for _ in 0..100 {
            assert_eq!(w.sample(0.01), mean);
        }
    }

    #[test]
    fn gusts_vary_but_average_to_mean() {
        let mean = Vec3::new(5.0, 0.0, 0.0);
        let mut w = WindModel::gusty(mean, 2.0, 7);
        let n = 200_000;
        let mut sum = Vec3::ZERO;
        let mut any_different = false;
        let mut prev = w.sample(0.01);
        for _ in 0..n {
            let s = w.sample(0.01);
            if (s - prev).norm() > 1e-9 {
                any_different = true;
            }
            prev = s;
            sum += s;
        }
        let avg = sum / n as f64;
        assert!(any_different, "gusts should fluctuate");
        assert!((avg - mean).norm() < 0.2, "long-run mean {avg} vs {mean}");
    }

    #[test]
    fn gust_magnitude_tracks_intensity() {
        let mut w = WindModel::gusty(Vec3::ZERO, 3.0, 11);
        let n = 100_000;
        let mut sq = 0.0;
        for _ in 0..n {
            sq += w.sample(0.01).x.powi(2);
        }
        let std = (sq / n as f64).sqrt();
        assert!((std - 3.0).abs() < 0.5, "gust std {std}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WindModel::gusty(Vec3::ZERO, 1.0, 3);
        let mut b = WindModel::gusty(Vec3::ZERO, 1.0, 3);
        for _ in 0..100 {
            assert_eq!(a.sample(0.01), b.sample(0.01));
        }
    }

    #[test]
    #[should_panic(expected = "gust intensity must be non-negative")]
    fn negative_intensity_panics() {
        let _ = WindModel::gusty(Vec3::ZERO, -1.0, 0);
    }
}
