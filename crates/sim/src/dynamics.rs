//! Rigid-body dynamics integration for the quadcopter.
//!
//! Semi-implicit Euler at the physics rate (≤1 ms steps recommended) with
//! quaternion attitude integration via the exponential map. Includes a
//! simple ground plane at z = 0 so take-off and landing scenarios work.

use crate::battery::BatterySim;
use crate::fault::FaultSchedule;
use crate::params::QuadcopterParams;
use crate::rotor::{RotorForces, RotorSet, ROTOR_COUNT};
use crate::state::RigidBodyState;
use drone_components::units::{Grams, Watts};
use drone_math::Vec3;
use drone_telemetry::{Clock, Counter, Gauge, Registry, SharedHistogram};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Gravitational acceleration vector in the world frame (Z up), m/s².
pub const GRAVITY: Vec3 = Vec3 {
    x: 0.0,
    y: 0.0,
    z: -drone_components::units::STANDARD_GRAVITY,
};

/// Everything one physics step produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutput {
    /// Rotor aggregate forces during the step.
    pub rotor: RotorForces,
    /// Total electrical power (propulsion + avionics).
    pub total_power: Watts,
    /// Whether the vehicle is resting on the ground plane.
    pub on_ground: bool,
}

/// A flying quadcopter: parameters + state + rotors + battery.
///
/// # Example
///
/// ```
/// use drone_sim::{Quadcopter, QuadcopterParams};
/// let mut quad = Quadcopter::new(QuadcopterParams::default_450mm());
/// let out = quad.step([quad.hover_throttle(); 4], drone_math::Vec3::ZERO, 1e-3);
/// assert!(out.total_power.0 > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadcopter {
    params: QuadcopterParams,
    state: RigidBodyState,
    rotors: RotorSet,
    battery: BatterySim,
    elapsed: f64,
    faults: FaultSchedule,
    telemetry: TelemetrySink,
}

/// Shared-handle metrics a quadcopter records into once attached via
/// [`Quadcopter::attach_telemetry`].
#[derive(Debug, Clone)]
struct SimTelemetry {
    clock: Clock,
    steps: Arc<Counter>,
    faults_fired: Arc<Counter>,
    power: Arc<SharedHistogram>,
    battery_soc: Arc<Gauge>,
}

/// Optional telemetry attachment. Where a quadcopter reports is
/// observability, not physics, so every sink compares equal — attaching
/// a registry must not make two otherwise-identical vehicles differ.
#[derive(Debug, Clone, Default)]
struct TelemetrySink(Option<SimTelemetry>);

impl PartialEq for TelemetrySink {
    fn eq(&self, _: &TelemetrySink) -> bool {
        true
    }
}

impl Quadcopter {
    /// Creates a quadcopter at rest on the ground at the origin.
    pub fn new(params: QuadcopterParams) -> Quadcopter {
        let rotors = RotorSet::new(&params);
        let battery = BatterySim::new(params.battery);
        Quadcopter {
            params,
            state: RigidBodyState::at_rest(),
            rotors,
            battery,
            elapsed: 0.0,
            faults: FaultSchedule::none(),
            telemetry: TelemetrySink(None),
        }
    }

    /// Creates a quadcopter already hovering at `altitude` metres with
    /// rotors pre-spun to hover speed (useful for control experiments
    /// that skip the take-off transient).
    pub fn hovering_at(params: QuadcopterParams, altitude: f64) -> Quadcopter {
        let mut quad = Quadcopter::new(params);
        quad.state = RigidBodyState::at_altitude(altitude);
        let throttle = quad.hover_throttle();
        // Converge the rotor lag to the hover speed.
        for _ in 0..2000 {
            quad.rotors.step([throttle; ROTOR_COUNT], 1e-3);
        }
        quad
    }

    /// Physical parameters.
    pub fn params(&self) -> &QuadcopterParams {
        &self.params
    }

    /// Current rigid-body state.
    pub fn state(&self) -> &RigidBodyState {
        &self.state
    }

    /// Mutable state access for test-harness injection of disturbances.
    pub fn state_mut(&mut self) -> &mut RigidBodyState {
        &mut self.state
    }

    /// Battery simulation state.
    pub fn battery(&self) -> &BatterySim {
        &self.battery
    }

    /// Rotor set (speeds, limits).
    pub fn rotors(&self) -> &RotorSet {
        &self.rotors
    }

    /// Simulated time elapsed, seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Installs a fault schedule; events fire inside [`Quadcopter::step`]
    /// at their scheduled simulation times.
    pub fn inject_faults(&mut self, schedule: FaultSchedule) {
        self.faults = schedule;
    }

    /// The installed fault schedule (fired/remaining event accounting).
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Attaches this vehicle to a telemetry registry. Every subsequent
    /// [`Quadcopter::step`] then counts itself (`sim.steps`), records
    /// electrical power (`sim.power_w`), publishes battery state of
    /// charge (`sim.battery.soc`), counts fault firings
    /// (`sim.faults.fired`) and drives the registry's sim clock to the
    /// vehicle's elapsed time, so spans anywhere in the stack measure
    /// against simulation seconds.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry.0 = Some(SimTelemetry {
            clock: registry.clock().clone(),
            steps: registry.counter("sim.steps"),
            faults_fired: registry.counter("sim.faults.fired"),
            power: registry.histogram("sim.power_w"),
            battery_soc: registry.gauge("sim.battery.soc"),
        });
    }

    /// The normalized throttle at which total rotor thrust equals weight.
    pub fn hover_throttle(&self) -> f64 {
        let n = self
            .params
            .propeller
            .rev_per_s_for_thrust(self.params.hover_thrust_per_motor());
        (n / self.rotors.max_speed()).min(1.0)
    }

    /// Advances the simulation by `dt` seconds under per-motor normalized
    /// throttle commands and a world-frame wind velocity (m/s).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn step(&mut self, throttle: [f64; ROTOR_COUNT], wind: Vec3, dt: f64) -> StepOutput {
        assert!(
            dt > 0.0 && dt.is_finite(),
            "dt must be positive and finite, got {dt}"
        );
        // Fire due fault events against the physical components and pick
        // up any active gust burst before integrating.
        let faults_before = self.faults.remaining();
        let gust = self
            .faults
            .advance(self.elapsed, &mut self.rotors, &mut self.battery);
        let wind = wind + gust;
        self.rotors.step(throttle, dt);
        let rotor = self.rotors.forces(&self.params);

        let mass = self.params.total_mass_kg();
        let inertia = self.params.inertia_diagonal();

        // World-frame forces.
        let thrust_world = self.state.attitude.rotate(Vec3::Z * rotor.total_thrust);
        let air_vel = self.state.velocity - wind;
        let drag = Vec3::new(
            -self.params.linear_drag.x * air_vel.x * air_vel.x.abs(),
            -self.params.linear_drag.y * air_vel.y * air_vel.y.abs(),
            -self.params.linear_drag.z * air_vel.z * air_vel.z.abs(),
        );
        let accel = thrust_world / mass + GRAVITY + drag / mass;

        // Body-frame rotational dynamics: Iω̇ = τ − ω×(Iω) − k·ω + τ_flap.
        // Blade flapping: lateral airflow over the rotors tilts the
        // effective thrust away from the motion, producing a moment
        // proportional to thrust × airspeed (paper Table 1,
        // "propeller flapping").
        let air_body = self.state.attitude.rotate_inverse(air_vel);
        let flap_torque = Vec3::new(air_body.y, -air_body.x, 0.0)
            * (self.params.flapping_coefficient * rotor.total_thrust);
        let omega = self.state.angular_velocity;
        let i_omega = inertia.hadamard(omega);
        let torque =
            rotor.torque + flap_torque - omega.cross(i_omega) - omega * self.params.angular_drag;
        let alpha = Vec3::new(
            torque.x / inertia.x,
            torque.y / inertia.y,
            torque.z / inertia.z,
        );

        // Semi-implicit Euler: update velocities first, then positions.
        self.state.velocity += accel * dt;
        self.state.angular_velocity += alpha * dt;
        self.state.position += self.state.velocity * dt;
        self.state.attitude = self
            .state
            .attitude
            .integrate(self.state.angular_velocity, dt);

        // Ground plane at z = 0: no penetration; landing kills motion.
        let mut on_ground = false;
        if self.state.position.z <= 0.0 {
            self.state.position.z = 0.0;
            if self.state.velocity.z < 0.0 {
                self.state.velocity = Vec3::ZERO;
                self.state.angular_velocity = Vec3::ZERO;
                on_ground = true;
            }
            // Sitting on the ground with less-than-weight thrust.
            if rotor.total_thrust < self.params.total_weight().weight_newtons() {
                on_ground = true;
            }
        }

        let total_power = Watts(rotor.electrical_power.0 + self.params.avionics_power.0);
        self.battery.drain(total_power, dt);
        self.elapsed += dt;

        if let Some(tel) = &self.telemetry.0 {
            tel.steps.inc();
            let fired = (faults_before - self.faults.remaining()) as u64;
            if fired > 0 {
                tel.faults_fired.add(fired);
            }
            tel.power.record(total_power.0);
            tel.battery_soc.set(self.battery.remaining_fraction());
            tel.clock.set(self.elapsed);
        }

        StepOutput {
            rotor,
            total_power,
            on_ground,
        }
    }

    /// Adds payload weight mid-design (rebuilds derived quantities).
    pub fn add_payload(&mut self, weight: Grams) {
        self.params.accessories_weight += weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::QuadcopterParams;

    #[test]
    fn sits_on_ground_without_thrust() {
        let mut quad = Quadcopter::new(QuadcopterParams::default_450mm());
        for _ in 0..1000 {
            let out = quad.step([0.0; 4], Vec3::ZERO, 1e-3);
            assert!(out.on_ground);
        }
        assert_eq!(quad.state().position.z, 0.0);
    }

    #[test]
    fn full_throttle_takes_off() {
        let mut quad = Quadcopter::new(QuadcopterParams::default_450mm());
        for _ in 0..2000 {
            quad.step([1.0; 4], Vec3::ZERO, 1e-3);
        }
        assert!(
            quad.state().position.z > 1.0,
            "altitude {}",
            quad.state().position.z
        );
        assert!(quad.state().velocity.z > 0.0);
    }

    #[test]
    fn hover_throttle_holds_altitude_approximately() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 10.0);
        let hover = quad.hover_throttle();
        for _ in 0..2000 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        let drift = (quad.state().position.z - 10.0).abs();
        assert!(drift < 1.0, "altitude drift {drift}");
        assert!(quad.state().tilt_angle() < 0.01);
    }

    #[test]
    fn asymmetric_throttle_induces_rotation() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 20.0);
        let hover = quad.hover_throttle();
        // Roll command: right rotors faster.
        for _ in 0..300 {
            quad.step(
                [hover - 0.05, hover + 0.05, hover + 0.05, hover - 0.05],
                Vec3::ZERO,
                1e-3,
            );
        }
        assert!(
            quad.state().angular_velocity.x.abs() > 0.05,
            "{}",
            quad.state()
        );
    }

    #[test]
    fn tilt_produces_horizontal_motion() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 50.0);
        // Give it a 10° pitch and hover thrust; it must drift along X.
        quad.state_mut().attitude = drone_math::Quat::from_euler(0.0, 0.17, 0.0);
        let hover = quad.hover_throttle();
        for _ in 0..2000 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert!(quad.state().velocity.x.abs() > 0.5, "{}", quad.state());
    }

    #[test]
    fn wind_pushes_the_drone() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 50.0);
        let hover = quad.hover_throttle();
        for _ in 0..4000 {
            quad.step([hover; 4], Vec3::new(5.0, 0.0, 0.0), 1e-3);
        }
        assert!(
            quad.state().velocity.x > 0.2,
            "wind had no effect: {}",
            quad.state()
        );
    }

    #[test]
    fn battery_drains_during_flight() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 10.0);
        let initial = quad.battery().remaining_fraction();
        let hover = quad.hover_throttle();
        for _ in 0..10_000 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert!(quad.battery().remaining_fraction() < initial);
        assert!(quad.elapsed() > 9.9);
    }

    #[test]
    fn power_output_includes_avionics() {
        let mut quad = Quadcopter::new(QuadcopterParams::default_450mm());
        let out = quad.step([0.0; 4], Vec3::ZERO, 1e-3);
        // Rotors off: only avionics power remains.
        assert!((out.total_power.0 - quad.params().avionics_power.0).abs() < 0.5);
    }

    #[test]
    fn state_stays_finite_under_abuse() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 100.0);
        let mut rng = drone_math::Pcg32::seed_from(1);
        for _ in 0..20_000 {
            let t = [
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
            ];
            quad.step(t, Vec3::new(rng.uniform(-10.0, 10.0), 0.0, 0.0), 1e-3);
            assert!(quad.state().is_finite(), "diverged: {}", quad.state());
        }
    }

    #[test]
    fn injected_rotor_out_unbalances_the_vehicle() {
        use crate::fault::{FaultEvent, FaultKind, FaultSchedule};
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 30.0);
        quad.inject_faults(FaultSchedule::scripted(vec![FaultEvent {
            at: 0.5,
            kind: FaultKind::RotorOut { rotor: 0 },
        }]));
        let hover = quad.hover_throttle();
        for _ in 0..1500 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert_eq!(quad.faults().remaining(), 0);
        assert_eq!(quad.rotors().effectiveness()[0], 0.0);
        // Open-loop hover with a dead rotor must tumble and descend.
        assert!(
            quad.state().tilt_angle() > 0.2,
            "tilt {}",
            quad.state().tilt_angle()
        );
        assert!(quad.state().velocity.z < -0.5, "{}", quad.state());
    }

    #[test]
    fn injected_gust_pushes_like_real_wind() {
        use crate::fault::{FaultEvent, FaultKind, FaultSchedule};
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 50.0);
        quad.inject_faults(FaultSchedule::scripted(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::GustBurst {
                velocity: Vec3::new(6.0, 0.0, 0.0),
                duration: 4.0,
            },
        }]));
        let hover = quad.hover_throttle();
        for _ in 0..4000 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert!(
            quad.state().velocity.x > 0.2,
            "gust had no effect: {}",
            quad.state()
        );
    }

    #[test]
    fn attached_telemetry_tracks_the_flight() {
        use drone_telemetry::Registry;
        let registry = Registry::with_sim_clock();
        let mut quad = Quadcopter::hovering_at(QuadcopterParams::default_450mm(), 10.0);
        quad.attach_telemetry(&registry);
        let hover = quad.hover_throttle();
        for _ in 0..500 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert_eq!(registry.counter("sim.steps").get(), 500);
        assert_eq!(registry.histogram("sim.power_w").count(), 500);
        let soc = registry.gauge("sim.battery.soc").get();
        assert!(soc > 0.0 && soc < 1.0, "soc {soc}");
        // The vehicle drives the registry's sim clock.
        assert!((registry.clock().now() - quad.elapsed()).abs() < 1e-12);
        // Telemetry is observability, not physics: attached and bare
        // vehicles compare equal.
        let mut bare = Quadcopter::hovering_at(QuadcopterParams::default_450mm(), 10.0);
        for _ in 0..500 {
            bare.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert_eq!(bare, quad);
    }

    #[test]
    fn attached_telemetry_counts_fault_firings() {
        use crate::fault::{FaultEvent, FaultKind, FaultSchedule};
        use drone_telemetry::Registry;
        let registry = Registry::with_sim_clock();
        let mut quad = Quadcopter::hovering_at(QuadcopterParams::default_450mm(), 30.0);
        quad.attach_telemetry(&registry);
        quad.inject_faults(FaultSchedule::scripted(vec![FaultEvent {
            at: 0.1,
            kind: FaultKind::RotorOut { rotor: 0 },
        }]));
        let hover = quad.hover_throttle();
        for _ in 0..300 {
            quad.step([hover; 4], Vec3::ZERO, 1e-3);
        }
        assert_eq!(registry.counter("sim.faults.fired").get(), 1);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut quad = Quadcopter::new(QuadcopterParams::default_450mm());
        quad.step([0.0; 4], Vec3::ZERO, 0.0);
    }
}
