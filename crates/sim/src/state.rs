//! Rigid-body state of the quadcopter.
//!
//! Frames: the **world frame** is X-north, Y-east... actually X/Y
//! horizontal and **Z up**; gravity acts along −Z. The **body frame** has
//! +Z along the collective thrust axis, +X forward. The attitude
//! quaternion rotates body-frame vectors into the world frame.
//!
//! This is the measurable state of the paper's §2.1.3-D control
//! computations: `x = (ζ, ζ̇, Ω, R)` — position, velocity, angular
//! velocity and attitude.

use drone_math::{Quat, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Position, velocity, attitude and body angular rate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RigidBodyState {
    /// Position in the world frame, metres.
    pub position: Vec3,
    /// Velocity in the world frame, m/s.
    pub velocity: Vec3,
    /// Body→world attitude.
    pub attitude: Quat,
    /// Angular velocity in the body frame, rad/s.
    pub angular_velocity: Vec3,
}

impl RigidBodyState {
    /// A state at rest at the world origin, level.
    pub fn at_rest() -> RigidBodyState {
        RigidBodyState::default()
    }

    /// A state at rest hovering at the given altitude (m).
    pub fn at_altitude(altitude: f64) -> RigidBodyState {
        RigidBodyState {
            position: Vec3::new(0.0, 0.0, altitude),
            ..Default::default()
        }
    }

    /// The body +Z (thrust) axis expressed in the world frame.
    pub fn thrust_axis_world(&self) -> Vec3 {
        self.attitude.rotate(Vec3::Z)
    }

    /// Euler attitude `(roll, pitch, yaw)` in radians.
    pub fn euler(&self) -> (f64, f64, f64) {
        self.attitude.to_euler()
    }

    /// Tilt angle from vertical, radians (the paper's "angle of attack"
    /// driver for horizontal speed).
    pub fn tilt_angle(&self) -> f64 {
        self.thrust_axis_world()
            .dot(Vec3::Z)
            .clamp(-1.0, 1.0)
            .acos()
    }

    /// `true` when every component is finite (diverged sims fail this).
    pub fn is_finite(&self) -> bool {
        self.position.is_finite()
            && self.velocity.is_finite()
            && self.attitude.is_finite()
            && self.angular_velocity.is_finite()
    }
}

impl fmt::Display for RigidBodyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (r, p, y) = self.euler();
        write!(
            f,
            "pos {} vel {} rpy ({:.2}, {:.2}, {:.2}) ω {}",
            self.position, self.velocity, r, p, y, self.angular_velocity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn at_rest_is_level() {
        let s = RigidBodyState::at_rest();
        assert_eq!(s.thrust_axis_world(), Vec3::Z);
        assert!(s.tilt_angle() < 1e-12);
    }

    #[test]
    fn at_altitude_sets_z() {
        let s = RigidBodyState::at_altitude(10.0);
        assert_eq!(s.position, Vec3::new(0.0, 0.0, 10.0));
    }

    #[test]
    fn tilt_angle_tracks_pitch() {
        let mut s = RigidBodyState::at_rest();
        s.attitude = Quat::from_euler(0.0, FRAC_PI_4, 0.0);
        assert!((s.tilt_angle() - FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn yaw_does_not_tilt() {
        let mut s = RigidBodyState::at_rest();
        s.attitude = Quat::from_euler(0.0, 0.0, 1.0);
        assert!(s.tilt_angle() < 1e-9);
    }

    #[test]
    fn finite_check_catches_nan() {
        let mut s = RigidBodyState::at_rest();
        assert!(s.is_finite());
        s.velocity.x = f64::NAN;
        assert!(!s.is_finite());
    }
}
