//! Property-based tests on the physical invariants of the simulator.

use drone_math::{Pcg32, Vec3};
use drone_sim::rotor::RotorSet;
use drone_sim::{BatterySim, Quadcopter, QuadcopterParams};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rotor_thrust_monotonic_in_throttle(t1 in 0.05f64..0.95, delta in 0.02f64..0.5) {
        let params = QuadcopterParams::default_450mm();
        let mut low = RotorSet::new(&params);
        let mut high = RotorSet::new(&params);
        let t2 = (t1 + delta).min(1.0);
        for _ in 0..3000 {
            low.step([t1; 4], 1e-3);
            high.step([t2; 4], 1e-3);
        }
        let fl = low.forces(&params);
        let fh = high.forces(&params);
        prop_assert!(fh.total_thrust > fl.total_thrust);
        prop_assert!(fh.electrical_power.0 > fl.electrical_power.0);
        // Symmetric commands: no torque either way.
        prop_assert!(fl.torque.norm() < 1e-9);
        prop_assert!(fh.torque.norm() < 1e-9);
    }

    #[test]
    fn battery_energy_conservation(p1 in 10.0f64..300.0, t1 in 1.0f64..300.0,
                                   p2 in 10.0f64..300.0, t2 in 1.0f64..300.0) {
        let params = QuadcopterParams::default_450mm();
        let mut a = BatterySim::new(params.battery);
        // Order of draws must not matter; totals must add.
        a.drain(drone_components::units::Watts(p1), t1);
        a.drain(drone_components::units::Watts(p2), t2);
        let mut b = BatterySim::new(params.battery);
        b.drain(drone_components::units::Watts(p2), t2);
        b.drain(drone_components::units::Watts(p1), t1);
        prop_assert!((a.consumed().0 - b.consumed().0).abs() < 1e-12);
        // Energy adds up until the pack is empty, then pins there.
        let expect = ((p1 * t1 + p2 * t2) / 3600.0).min(a.effective_stored_energy().0);
        prop_assert!((a.consumed().0 - expect).abs() < 1e-9);
        // Voltage never leaves the physical window.
        prop_assert!((8.0..14.0).contains(&a.voltage().0));
    }

    #[test]
    fn simulation_stays_finite_for_any_throttle_sequence(seed in 0u64..300) {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::hovering_at(params, 50.0);
        let mut rng = Pcg32::seed_from(seed);
        for _ in 0..2000 {
            let throttle = [
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64(),
            ];
            let wind = Vec3::new(rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0), 0.0);
            quad.step(throttle, wind, 1e-3);
            prop_assert!(quad.state().is_finite(), "diverged: {}", quad.state());
        }
    }

    #[test]
    fn ground_plane_never_penetrated(seed in 0u64..300) {
        let params = QuadcopterParams::default_100mm();
        let mut quad = Quadcopter::new(params);
        let mut rng = Pcg32::seed_from(seed);
        for _ in 0..3000 {
            let t = rng.next_f64() * 0.8;
            quad.step([t; 4], Vec3::ZERO, 1e-3);
            prop_assert!(quad.state().position.z >= 0.0);
        }
    }

    #[test]
    fn hover_throttle_scales_with_payload(extra in 0.0f64..300.0) {
        let mut params = QuadcopterParams::default_450mm();
        let base = Quadcopter::new(params.clone()).hover_throttle();
        params.accessories_weight += drone_components::units::Grams(extra);
        let loaded = Quadcopter::new(params).hover_throttle();
        prop_assert!(loaded >= base);
    }
}
