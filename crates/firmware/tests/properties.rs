//! Property-based tests: the MAVLink codec round-trips arbitrary
//! messages and survives arbitrary corruption; the scheduler's
//! accounting is conserved.

use drone_firmware::mavlink::{crc_x25, Message, StreamParser};
use drone_firmware::{RateScheduler, Task};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u8>(), any::<bool>()).prop_map(|(mode, armed)| Message::Heartbeat { mode, armed }),
        (any::<u32>(), -10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0).prop_map(|(t, r, p, y)| {
            Message::Attitude {
                time_ms: t,
                roll: r,
                pitch: p,
                yaw: y,
            }
        }),
        (
            any::<u32>(),
            prop::array::uniform3(-100.0f32..100.0),
            prop::array::uniform3(-20.0f32..20.0)
        )
            .prop_map(|(t, position, velocity)| Message::Position {
                time_ms: t,
                position,
                velocity
            }),
        (any::<u16>(), any::<u8>()).prop_map(|(voltage_mv, pct)| Message::BatteryStatus {
            voltage_mv,
            remaining_pct: pct.min(100)
        }),
        (any::<u16>(), prop::array::uniform7(-1000.0f32..1000.0))
            .prop_map(|(command, params)| Message::CommandLong { command, params }),
        (any::<u16>(), any::<u8>())
            .prop_map(|(command, result)| Message::CommandAck { command, result }),
        ("[ -~]{0,50}", 0u8..8).prop_map(|(text, severity)| Message::StatusText { severity, text }),
    ]
}

proptest! {
    #[test]
    fn any_message_roundtrips(msg in arb_message(), seq in any::<u8>(), sys in any::<u8>(), comp in any::<u8>()) {
        let wire = msg.encode(seq, sys, comp);
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(&frames[0].message, &msg);
        prop_assert_eq!(frames[0].seq, seq);
        prop_assert_eq!(frames[0].sys_id, sys);
        prop_assert_eq!(frames[0].comp_id, comp);
    }

    #[test]
    fn message_stream_roundtrips_in_arbitrary_chunks(
        msgs in prop::collection::vec(arb_message(), 1..8),
        chunk in 1usize..32,
    ) {
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend_from_slice(&m.encode(i as u8, 1, 1));
        }
        let mut parser = StreamParser::new();
        let mut decoded = Vec::new();
        for c in wire.chunks(chunk) {
            decoded.extend(parser.push(c));
        }
        prop_assert_eq!(decoded.len(), msgs.len());
        for (frame, msg) in decoded.iter().zip(&msgs) {
            prop_assert_eq!(&frame.message, msg);
        }
        prop_assert_eq!(parser.crc_failures(), 0);
    }

    #[test]
    fn single_byte_corruption_never_yields_a_wrong_message(
        msg in arb_message(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let wire = msg.encode(3, 1, 1).to_vec();
        let mut corrupted = wire.clone();
        let pos = ((wire.len() - 1) as f64 * pos_frac) as usize;
        corrupted[pos] ^= flip;
        let mut parser = StreamParser::new();
        let frames = parser.push(&corrupted);
        // Either nothing decodes, or (if the corruption hit a header
        // field covered by the checksum compensation — impossible for
        // X25 with one flip) the message matches. X25 detects all
        // single-byte errors, so we assert strictly: no *different*
        // message ever comes out.
        for f in frames {
            prop_assert_eq!(&f.message, &msg);
        }
    }

    #[test]
    fn garbage_prefix_never_blocks_decoding(
        garbage in prop::collection::vec(any::<u8>(), 0..64),
        msg in arb_message(),
    ) {
        let mut wire = garbage;
        wire.extend_from_slice(&msg.encode(0, 1, 1));
        // Two copies so a garbage byte equal to STX cannot eat the only
        // frame, plus trailing padding: a garbage STX with a large fake
        // length makes the (correctly) streaming parser wait for more
        // bytes, so flush it past the worst-case frame length.
        wire.extend_from_slice(&msg.encode(1, 1, 1));
        wire.extend_from_slice(&[0u8; 300]);
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        prop_assert!(!frames.is_empty(), "no frame survived the garbage prefix");
        prop_assert!(frames.iter().any(|f| f.message == msg));
    }

    #[test]
    fn truncated_frame_does_not_block_later_traffic(
        msg in arb_message(),
        cut_frac in 0.0f64..1.0,
        follow in arb_message(),
    ) {
        let wire = msg.encode(0, 1, 1).to_vec();
        let cut = 1 + ((wire.len() - 1) as f64 * cut_frac) as usize;
        let mut stream = wire[..cut].to_vec(); // frame cut off mid-air
        stream.extend_from_slice(&follow.encode(1, 1, 1));
        stream.extend_from_slice(&follow.encode(2, 1, 1));
        stream.extend_from_slice(&[0u8; 300]); // flush worst-case fake length
        let mut parser = StreamParser::new();
        let frames = parser.push(&stream);
        prop_assert!(
            frames.iter().any(|f| f.message == follow),
            "later traffic lost behind a truncated frame"
        );
    }

    #[test]
    fn frames_interleaved_with_garbage_are_all_recovered(
        msgs in prop::collection::vec(arb_message(), 1..6),
        gaps in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 6..7),
    ) {
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            stream.extend_from_slice(&gaps[i]);
            stream.extend_from_slice(&m.encode(i as u8, 1, 1));
        }
        stream.extend_from_slice(&[0u8; 300]);
        let mut parser = StreamParser::new();
        let frames = parser.push(&stream);
        // Every real frame decodes, in order (garbage may not fabricate a
        // frame that displaces one — X25 + crc_extra guard the gaps).
        let mut it = frames.iter();
        for m in &msgs {
            prop_assert!(it.any(|f| &f.message == m), "lost {m} among {} frames", frames.len());
        }
    }

    #[test]
    fn truncated_frames_interleaved_with_valid_ones_lose_nothing_else(
        msgs in prop::collection::vec(arb_message(), 2..5),
        cut_frac in 0.1f64..0.9,
    ) {
        // Alternate truncated-frame / valid-frame and require every
        // valid frame back: each truncation must cost at most the one
        // frame it mangled.
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            let wire = m.encode(i as u8, 1, 1).to_vec();
            let cut = 1 + ((wire.len() - 2) as f64 * cut_frac) as usize;
            stream.extend_from_slice(&wire[..cut]);
            stream.extend_from_slice(&m.encode((i + 100) as u8, 1, 1));
        }
        stream.extend_from_slice(&[0u8; 300]);
        let mut parser = StreamParser::new();
        let frames = parser.push(&stream);
        let mut it = frames.iter();
        for (i, m) in msgs.iter().enumerate() {
            prop_assert!(
                it.any(|f| f.seq == (i + 100) as u8 && &f.message == m),
                "valid frame {i} lost behind a truncated twin"
            );
        }
    }

    #[test]
    fn parser_counters_are_monotonic_under_arbitrary_input(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..12),
    ) {
        let mut parser = StreamParser::new();
        let (mut crc, mut rs) = (0u64, 0u64);
        for c in &chunks {
            parser.push(c); // must never panic, whatever the bytes
            prop_assert!(parser.crc_failures() >= crc, "crc_failures went backwards");
            prop_assert!(parser.resyncs() >= rs, "resyncs went backwards");
            crc = parser.crc_failures();
            rs = parser.resyncs();
        }
    }

    #[test]
    fn scheduler_accounting_is_conserved(
        period_ms in 5u64..100,
        exec_frac in 0.05f64..1.5,
        speed in 0.5f64..2.0,
    ) {
        let period = period_ms as f64 / 1000.0;
        let exec = period * exec_frac;
        let mut sched = RateScheduler::new(vec![Task::new("t", period, exec, 0)]);
        let report = sched.simulate(2.0, speed);
        let t = report.task("t").expect("task exists");
        // Every released job is either on time, missed, or still queued
        // (counted as missed when past deadline) — never lost.
        prop_assert!(t.completed_on_time + t.deadline_misses <= t.released + 1);
        prop_assert!(report.cpu_utilization <= 1.0 + 1e-9);
        // Overloaded task sets must miss; underloaded must not.
        if exec_frac / speed > 1.1 {
            prop_assert!(t.deadline_misses > 0, "{report}");
        }
        if exec_frac / speed < 0.9 {
            prop_assert_eq!(t.deadline_misses, 0, "{}", report);
        }
    }
}

/// A frame whose X25 checksum is internally consistent but was sealed
/// with the wrong CRC-extra byte (a peer compiled against a different
/// message schema) must be rejected as a CRC failure — and must not
/// take the following good frame down with it.
#[test]
fn crc_extra_mismatch_is_rejected_without_losing_the_next_frame() {
    let msg = Message::Heartbeat {
        mode: 4,
        armed: true,
    };
    let mut wire = msg.encode(7, 1, 1).to_vec();
    let body_end = wire.len() - 2;
    let original_crc = u16::from_le_bytes([wire[body_end], wire[body_end + 1]]);
    // Re-seal the CRC over the same bytes but a wrong extra byte; if a
    // candidate collides with the true CRC, the next one cannot.
    let resealed = [0x00u8, 0x01]
        .iter()
        .map(|&extra| crc_x25(&[&wire[1..body_end], &[extra][..]].concat(), 0xFFFF))
        .find(|&crc| crc != original_crc)
        .expect("two candidate extras cannot both collide");
    wire[body_end..].copy_from_slice(&resealed.to_le_bytes());

    let follow = Message::BatteryStatus {
        voltage_mv: 11_100,
        remaining_pct: 80,
    };
    let mut stream = wire;
    stream.extend_from_slice(&follow.encode(8, 1, 1));
    stream.extend_from_slice(&[0u8; 300]);

    let mut parser = StreamParser::new();
    let frames = parser.push(&stream);
    assert!(
        frames.iter().all(|f| f.message != msg),
        "schema-mismatched frame must not decode"
    );
    assert!(
        frames.iter().any(|f| f.message == follow),
        "good frame lost behind the schema mismatch"
    );
    assert!(
        parser.crc_failures() >= 1,
        "mismatch must be accounted as a CRC failure"
    );
}

/// Deterministic pin of the resync cost: one truncated frame between
/// two good ones costs exactly the truncated frame, nothing more.
#[test]
fn resync_after_truncation_costs_exactly_one_frame() {
    let a = Message::Attitude {
        time_ms: 1,
        roll: 0.1,
        pitch: 0.2,
        yaw: 0.3,
    };
    let b = Message::Heartbeat {
        mode: 2,
        armed: false,
    };
    let truncated = &a.encode(1, 1, 1)[..6]; // header only, payload cut
    let mut stream = a.encode(0, 1, 1).to_vec();
    stream.extend_from_slice(truncated);
    stream.extend_from_slice(&b.encode(2, 1, 1));
    stream.extend_from_slice(&[0u8; 300]);
    let mut parser = StreamParser::new();
    let frames = parser.push(&stream);
    let decoded: Vec<&Message> = frames.iter().map(|f| &f.message).collect();
    assert_eq!(decoded, vec![&a, &b], "exactly the two intact frames");
    assert!(parser.resyncs() >= 1, "truncation must be counted a resync");
}
