//! A MAVLink-flavoured telemetry protocol.
//!
//! The paper's drone talks to its ground station over 915 MHz telemetry
//! using MAVLink \[31\]. This module implements a compatible-in-spirit
//! framed binary protocol: `STX | len | seq | sysid | compid | msgid |
//! payload | crc16-X25`, with per-message CRC-extra seeds like real
//! MAVLink v1, a typed message set, and a resynchronizing stream parser
//! that survives garbage, truncation and corruption.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Frame start marker (MAVLink v1 uses 0xFE).
pub const STX: u8 = 0xFE;

/// Maximum payload length.
pub const MAX_PAYLOAD: usize = 255;

/// X.25 / CRC-16-CCITT used by MAVLink.
pub fn crc_x25(data: &[u8], seed: u16) -> u16 {
    let mut crc = seed;
    for &byte in data {
        let mut tmp = byte ^ (crc & 0xFF) as u8;
        tmp ^= tmp << 4;
        crc = (crc >> 8) ^ ((tmp as u16) << 8) ^ ((tmp as u16) << 3) ^ ((tmp as u16) >> 4);
    }
    crc
}

/// Typed telemetry messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Liveness beacon with mode and arming state.
    Heartbeat {
        /// Flight-mode ordinal.
        mode: u8,
        /// Whether motors are armed.
        armed: bool,
    },
    /// Attitude report.
    Attitude {
        /// Boot time, ms.
        time_ms: u32,
        /// Roll, rad.
        roll: f32,
        /// Pitch, rad.
        pitch: f32,
        /// Yaw, rad.
        yaw: f32,
    },
    /// Position/velocity report.
    Position {
        /// Boot time, ms.
        time_ms: u32,
        /// World position, m.
        position: [f32; 3],
        /// World velocity, m/s.
        velocity: [f32; 3],
    },
    /// Battery report.
    BatteryStatus {
        /// Pack voltage, millivolts.
        voltage_mv: u16,
        /// Remaining energy percentage (0–100).
        remaining_pct: u8,
    },
    /// Ground-station command (arm, mode change, offboard action).
    CommandLong {
        /// Command opcode.
        command: u16,
        /// Up to seven float parameters.
        params: [f32; 7],
    },
    /// Command acknowledgement.
    CommandAck {
        /// Opcode being acknowledged.
        command: u16,
        /// 0 = accepted; nonzero = error code.
        result: u8,
    },
    /// Free-text status (severity 0 = emergency … 7 = debug).
    StatusText {
        /// Syslog-style severity.
        severity: u8,
        /// Message text (truncated to 50 bytes on the wire).
        text: String,
    },
    /// Mission upload: announces how many items follow.
    MissionCount {
        /// Number of mission items to expect.
        count: u16,
    },
    /// Mission upload: the receiver requests item `seq`.
    MissionRequest {
        /// Item index being requested.
        seq: u16,
    },
    /// Mission upload: one mission item.
    MissionItem {
        /// Item index.
        seq: u16,
        /// Item kind: 0 = takeoff, 1 = waypoint, 2 = loiter, 3 = land.
        kind: u8,
        /// Position target (x, y, z) metres, kind-dependent.
        x: f32,
        /// Position target y.
        y: f32,
        /// Position target z / altitude.
        z: f32,
        /// Kind-dependent parameter (acceptance radius, loiter seconds).
        param: f32,
    },
    /// Mission upload: final acknowledgement (0 = accepted).
    MissionAck {
        /// 0 = accepted; nonzero = rejection code.
        result: u8,
    },
}

impl Message {
    /// Wire message id.
    pub fn msg_id(&self) -> u8 {
        match self {
            Message::Heartbeat { .. } => 0,
            Message::Attitude { .. } => 30,
            Message::Position { .. } => 33,
            Message::BatteryStatus { .. } => 147,
            Message::CommandLong { .. } => 76,
            Message::CommandAck { .. } => 77,
            Message::StatusText { .. } => 253,
            Message::MissionCount { .. } => 44,
            Message::MissionRequest { .. } => 40,
            Message::MissionItem { .. } => 73,
            Message::MissionAck { .. } => 47,
        }
    }

    /// Per-message CRC extra seed (MAVLink's schema-change tripwire).
    fn crc_extra(msg_id: u8) -> u8 {
        // A fixed pseudo-random byte per id; any schema disagreement
        // between encoder and decoder breaks the checksum.
        msg_id.wrapping_mul(151).wrapping_add(73)
    }

    fn payload(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Message::Heartbeat { mode, armed } => {
                buf.put_u8(*mode);
                buf.put_u8(u8::from(*armed));
            }
            Message::Attitude {
                time_ms,
                roll,
                pitch,
                yaw,
            } => {
                buf.put_u32_le(*time_ms);
                buf.put_f32_le(*roll);
                buf.put_f32_le(*pitch);
                buf.put_f32_le(*yaw);
            }
            Message::Position {
                time_ms,
                position,
                velocity,
            } => {
                buf.put_u32_le(*time_ms);
                for v in position.iter().chain(velocity) {
                    buf.put_f32_le(*v);
                }
            }
            Message::BatteryStatus {
                voltage_mv,
                remaining_pct,
            } => {
                buf.put_u16_le(*voltage_mv);
                buf.put_u8(*remaining_pct);
            }
            Message::CommandLong { command, params } => {
                buf.put_u16_le(*command);
                for p in params {
                    buf.put_f32_le(*p);
                }
            }
            Message::CommandAck { command, result } => {
                buf.put_u16_le(*command);
                buf.put_u8(*result);
            }
            Message::StatusText { severity, text } => {
                buf.put_u8(*severity);
                let bytes = text.as_bytes();
                let n = bytes.len().min(50);
                buf.put_u8(n as u8);
                buf.put_slice(&bytes[..n]);
            }
            Message::MissionCount { count } => buf.put_u16_le(*count),
            Message::MissionRequest { seq } => buf.put_u16_le(*seq),
            Message::MissionItem {
                seq,
                kind,
                x,
                y,
                z,
                param,
            } => {
                buf.put_u16_le(*seq);
                buf.put_u8(*kind);
                buf.put_f32_le(*x);
                buf.put_f32_le(*y);
                buf.put_f32_le(*z);
                buf.put_f32_le(*param);
            }
            Message::MissionAck { result } => buf.put_u8(*result),
        }
        buf.freeze()
    }

    fn decode_payload(msg_id: u8, mut p: Bytes) -> Option<Message> {
        // Length checks before every read; short frames decode to None.
        fn take_f32(p: &mut Bytes) -> Option<f32> {
            (p.remaining() >= 4).then(|| p.get_f32_le())
        }
        match msg_id {
            0 => {
                if p.remaining() < 2 {
                    return None;
                }
                let mode = p.get_u8();
                let armed = p.get_u8() != 0;
                Some(Message::Heartbeat { mode, armed })
            }
            30 => {
                if p.remaining() < 16 {
                    return None;
                }
                let time_ms = p.get_u32_le();
                Some(Message::Attitude {
                    time_ms,
                    roll: take_f32(&mut p)?,
                    pitch: take_f32(&mut p)?,
                    yaw: take_f32(&mut p)?,
                })
            }
            33 => {
                if p.remaining() < 28 {
                    return None;
                }
                let time_ms = p.get_u32_le();
                let mut vals = [0f32; 6];
                for v in &mut vals {
                    *v = take_f32(&mut p)?;
                }
                Some(Message::Position {
                    time_ms,
                    position: [vals[0], vals[1], vals[2]],
                    velocity: [vals[3], vals[4], vals[5]],
                })
            }
            147 => {
                if p.remaining() < 3 {
                    return None;
                }
                let voltage_mv = p.get_u16_le();
                let remaining_pct = p.get_u8();
                Some(Message::BatteryStatus {
                    voltage_mv,
                    remaining_pct,
                })
            }
            76 => {
                if p.remaining() < 30 {
                    return None;
                }
                let command = p.get_u16_le();
                let mut params = [0f32; 7];
                for v in &mut params {
                    *v = take_f32(&mut p)?;
                }
                Some(Message::CommandLong { command, params })
            }
            77 => {
                if p.remaining() < 3 {
                    return None;
                }
                let command = p.get_u16_le();
                let result = p.get_u8();
                Some(Message::CommandAck { command, result })
            }
            253 => {
                if p.remaining() < 2 {
                    return None;
                }
                let severity = p.get_u8();
                let n = p.get_u8() as usize;
                if p.remaining() < n {
                    return None;
                }
                let text = String::from_utf8_lossy(&p.copy_to_bytes(n)).into_owned();
                Some(Message::StatusText { severity, text })
            }
            44 => {
                if p.remaining() < 2 {
                    return None;
                }
                Some(Message::MissionCount {
                    count: p.get_u16_le(),
                })
            }
            40 => {
                if p.remaining() < 2 {
                    return None;
                }
                Some(Message::MissionRequest {
                    seq: p.get_u16_le(),
                })
            }
            73 => {
                if p.remaining() < 19 {
                    return None;
                }
                let seq = p.get_u16_le();
                let kind = p.get_u8();
                Some(Message::MissionItem {
                    seq,
                    kind,
                    x: take_f32(&mut p)?,
                    y: take_f32(&mut p)?,
                    z: take_f32(&mut p)?,
                    param: take_f32(&mut p)?,
                })
            }
            47 => {
                if p.remaining() < 1 {
                    return None;
                }
                Some(Message::MissionAck { result: p.get_u8() })
            }
            _ => None,
        }
    }

    /// Encodes the message into a complete wire frame.
    pub fn encode(&self, seq: u8, sys_id: u8, comp_id: u8) -> Bytes {
        let payload = self.payload();
        assert!(payload.len() <= MAX_PAYLOAD, "payload too large");
        let msg_id = self.msg_id();
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u8(STX);
        frame.put_u8(payload.len() as u8);
        frame.put_u8(seq);
        frame.put_u8(sys_id);
        frame.put_u8(comp_id);
        frame.put_u8(msg_id);
        frame.put_slice(&payload);
        // CRC over everything after STX, then the CRC-extra byte.
        let crc = crc_x25(
            &[&frame[1..], &[Self::crc_extra(msg_id)][..]].concat(),
            0xFFFF,
        );
        frame.put_u16_le(crc);
        frame.freeze()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Heartbeat { mode, armed } => write!(f, "HEARTBEAT mode={mode} armed={armed}"),
            Message::Attitude {
                roll, pitch, yaw, ..
            } => {
                write!(f, "ATTITUDE rpy=({roll:.2},{pitch:.2},{yaw:.2})")
            }
            Message::Position { position, .. } => {
                write!(
                    f,
                    "POSITION ({:.1},{:.1},{:.1})",
                    position[0], position[1], position[2]
                )
            }
            Message::BatteryStatus {
                voltage_mv,
                remaining_pct,
            } => {
                write!(
                    f,
                    "BATTERY {:.2} V {remaining_pct}%",
                    *voltage_mv as f64 / 1000.0
                )
            }
            Message::CommandLong { command, .. } => write!(f, "COMMAND {command}"),
            Message::CommandAck { command, result } => write!(f, "ACK {command} -> {result}"),
            Message::StatusText { severity, text } => write!(f, "STATUS[{severity}] {text}"),
            Message::MissionCount { count } => write!(f, "MISSION_COUNT {count}"),
            Message::MissionRequest { seq } => write!(f, "MISSION_REQUEST {seq}"),
            Message::MissionItem { seq, kind, .. } => write!(f, "MISSION_ITEM {seq} kind={kind}"),
            Message::MissionAck { result } => write!(f, "MISSION_ACK {result}"),
        }
    }
}

/// A decoded frame with its header fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sequence number.
    pub seq: u8,
    /// Sending system id.
    pub sys_id: u8,
    /// Sending component id.
    pub comp_id: u8,
    /// The decoded message.
    pub message: Message,
}

/// Resynchronizing stream decoder.
///
/// Feed arbitrary byte chunks; complete valid frames come out. Corrupt or
/// unknown frames are counted and skipped.
///
/// # Example
///
/// ```
/// use drone_firmware::mavlink::{Message, StreamParser};
/// let mut parser = StreamParser::new();
/// let msg = Message::Heartbeat { mode: 2, armed: true };
/// let wire = msg.encode(0, 1, 1);
/// let frames = parser.push(&wire);
/// assert_eq!(frames[0].message, msg);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamParser {
    buffer: Vec<u8>,
    crc_failures: u64,
    resyncs: u64,
}

impl StreamParser {
    /// Creates an empty parser.
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Number of frames dropped to checksum mismatch.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures
    }

    /// Number of resynchronization scans (garbage skipped).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Feeds bytes; returns every frame completed by this chunk.
    pub fn push(&mut self, data: &[u8]) -> Vec<Frame> {
        self.buffer.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            // Seek STX.
            match self.buffer.iter().position(|&b| b == STX) {
                Some(0) => {}
                Some(n) => {
                    self.buffer.drain(..n);
                    self.resyncs += 1;
                }
                None => {
                    if !self.buffer.is_empty() {
                        self.resyncs += 1;
                    }
                    self.buffer.clear();
                    break;
                }
            }
            if self.buffer.len() < 8 {
                break; // incomplete header
            }
            let payload_len = self.buffer[1] as usize;
            let frame_len = 6 + payload_len + 2;
            if self.buffer.len() < frame_len {
                break; // incomplete frame
            }
            let msg_id = self.buffer[5];
            let body = &self.buffer[1..frame_len - 2];
            let wire_crc =
                u16::from_le_bytes([self.buffer[frame_len - 2], self.buffer[frame_len - 1]]);
            let calc = crc_x25(&[body, &[Message::crc_extra(msg_id)][..]].concat(), 0xFFFF);
            if calc == wire_crc {
                let seq = self.buffer[2];
                let sys_id = self.buffer[3];
                let comp_id = self.buffer[4];
                let payload = Bytes::copy_from_slice(&self.buffer[6..6 + payload_len]);
                if let Some(message) = Message::decode_payload(msg_id, payload) {
                    out.push(Frame {
                        seq,
                        sys_id,
                        comp_id,
                        message,
                    });
                    self.buffer.drain(..frame_len);
                } else {
                    // Valid checksum but an undecodable schema: almost
                    // certainly a garbage STX whose pseudo-frame happened
                    // to pass CRC over bytes that contain *real* frames.
                    // Draining the whole pseudo-frame would swallow them,
                    // so skip just this STX and rescan.
                    self.crc_failures += 1;
                    self.buffer.drain(..1);
                }
            } else {
                // Bad checksum: skip this STX and rescan.
                self.crc_failures += 1;
                self.buffer.drain(..1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Heartbeat {
                mode: 3,
                armed: true,
            },
            Message::Attitude {
                time_ms: 1234,
                roll: 0.1,
                pitch: -0.2,
                yaw: 1.5,
            },
            Message::Position {
                time_ms: 99,
                position: [1.0, 2.0, 3.0],
                velocity: [-0.5, 0.0, 0.25],
            },
            Message::BatteryStatus {
                voltage_mv: 11100,
                remaining_pct: 73,
            },
            Message::CommandLong {
                command: 400,
                params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            },
            Message::CommandAck {
                command: 400,
                result: 0,
            },
            Message::StatusText {
                severity: 6,
                text: "takeoff complete".to_owned(),
            },
            Message::MissionCount { count: 7 },
            Message::MissionRequest { seq: 3 },
            Message::MissionItem {
                seq: 3,
                kind: 1,
                x: 1.0,
                y: -2.0,
                z: 10.0,
                param: 1.0,
            },
            Message::MissionAck { result: 0 },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for (i, msg) in all_messages().into_iter().enumerate() {
            let wire = msg.encode(i as u8, 1, 200);
            let mut parser = StreamParser::new();
            let frames = parser.push(&wire);
            assert_eq!(frames.len(), 1, "{msg}");
            assert_eq!(frames[0].message, msg);
            assert_eq!(frames[0].seq, i as u8);
            assert_eq!(frames[0].sys_id, 1);
            assert_eq!(frames[0].comp_id, 200);
        }
    }

    #[test]
    fn concatenated_frames_all_decode() {
        let mut wire = Vec::new();
        let msgs = all_messages();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend_from_slice(&m.encode(i as u8, 1, 1));
        }
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        assert_eq!(frames.len(), msgs.len());
        for (f, m) in frames.iter().zip(&msgs) {
            assert_eq!(&f.message, m);
        }
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let msg = Message::Attitude {
            time_ms: 7,
            roll: 1.0,
            pitch: 2.0,
            yaw: 3.0,
        };
        let wire = msg.encode(9, 2, 3);
        let mut parser = StreamParser::new();
        let mut got = Vec::new();
        for b in wire.iter() {
            got.extend(parser.push(&[*b]));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].message, msg);
    }

    #[test]
    fn corruption_is_detected_and_skipped() {
        let good = Message::Heartbeat {
            mode: 1,
            armed: false,
        };
        let mut bad = good.encode(0, 1, 1).to_vec();
        bad[6] ^= 0xFF; // flip a payload byte
        let mut wire = bad;
        wire.extend_from_slice(&good.encode(1, 1, 1));
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        assert_eq!(frames.len(), 1, "only the intact frame survives");
        assert_eq!(frames[0].seq, 1);
        assert!(parser.crc_failures() >= 1);
    }

    #[test]
    fn garbage_between_frames_resyncs() {
        let msg = Message::BatteryStatus {
            voltage_mv: 12000,
            remaining_pct: 50,
        };
        let mut wire = vec![0x00, 0x12, 0x42, 0xFF, 0x13];
        wire.extend_from_slice(&msg.encode(0, 1, 1));
        wire.extend_from_slice(&[0xAA, 0xBB]);
        wire.extend_from_slice(&msg.encode(1, 1, 1));
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        assert_eq!(frames.len(), 2);
        assert!(parser.resyncs() >= 1);
    }

    #[test]
    fn stx_garbage_byte_cannot_swallow_embedded_frames() {
        // Regression (see tests/properties.proptest-regressions): a lone
        // garbage STX byte in front of real traffic forms a pseudo-frame
        // whose payload_len is read from the *real* frame's STX (0xFE →
        // 254, frame_len 262). Once enough bytes accumulate, the CRC over
        // that garbage span can collide; the parser must then drop only
        // the bogus STX — never 262 bytes of real frames behind it.
        let msg = Message::Heartbeat {
            mode: 0,
            armed: false,
        };
        let mut wire = vec![STX]; // the garbage byte IS an STX
        wire.extend_from_slice(&msg.encode(0, 1, 1));
        wire.extend_from_slice(&msg.encode(1, 1, 1));
        wire.extend_from_slice(&[0u8; 300]); // flush past the fake frame_len
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        assert_eq!(frames.len(), 2, "both real heartbeats must survive");
        assert!(frames.iter().all(|f| f.message == msg));
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[1].seq, 1);
    }

    #[test]
    fn status_text_truncates_at_50() {
        let long = "x".repeat(100);
        let msg = Message::StatusText {
            severity: 4,
            text: long,
        };
        let wire = msg.encode(0, 1, 1);
        let mut parser = StreamParser::new();
        let frames = parser.push(&wire);
        match &frames[0].message {
            Message::StatusText { text, .. } => assert_eq!(text.len(), 50),
            other => panic!("wrong message {other}"),
        }
    }

    #[test]
    fn crc_x25_reference_vector() {
        // X25 of empty input with seed 0xFFFF is 0xFFFF; "123456789" is
        // the standard check input for CRC-16/X-25 → 0x906E.
        assert_eq!(crc_x25(b"", 0xFFFF), 0xFFFF);
        // MAVLink accumulates without final XOR/reflection beyond the
        // algorithm above; verify stability against a known-good local
        // vector to catch accidental changes.
        let v = crc_x25(b"123456789", 0xFFFF);
        assert_eq!(v, crc_x25(b"123456789", 0xFFFF));
        assert_ne!(v, crc_x25(b"123456780", 0xFFFF));
    }

    #[test]
    fn schema_disagreement_breaks_crc() {
        // A frame whose msg_id is rewritten fails its checksum because of
        // the CRC-extra seed, exactly like real MAVLink.
        let msg = Message::CommandAck {
            command: 1,
            result: 0,
        };
        let mut wire = msg.encode(0, 1, 1).to_vec();
        wire[5] = 0; // claim it is a heartbeat (same payload length ≥ 2)
        let mut parser = StreamParser::new();
        assert!(parser.push(&wire).is_empty());
        assert_eq!(parser.crc_failures(), 1);
    }

    #[test]
    fn display_forms() {
        assert!(Message::Heartbeat {
            mode: 1,
            armed: true
        }
        .to_string()
        .contains("HEARTBEAT"));
        assert!(Message::BatteryStatus {
            voltage_mv: 11100,
            remaining_pct: 80
        }
        .to_string()
        .contains("11.10 V"));
    }
}
