//! The autopilot proper: estimator + mode machine + mission runner +
//! control cascade, stepped like firmware from sensor data to motor
//! commands, with telemetry out the MAVLink side.

use crate::gcs::{MissionReceiver, CMD_ARM};
use crate::link::{LinkEvent, LinkMonitor};
use crate::mavlink::Message;
use crate::mission::{Mission, MissionError, MissionRunner};
use crate::mode::{FlightMode, ModeMachine, TransitionError};
use drone_control::{CascadeController, Setpoint};
use drone_estimation::{SensorReadings, StateEstimator};
use drone_math::Vec3;
use drone_sim::params::QuadcopterParams;
use drone_sim::rotor::ROTOR_COUNT;
use drone_telemetry::{Counter, Registry};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Battery fraction below which the autopilot declares failsafe.
pub const FAILSAFE_BATTERY_FRACTION: f64 = 0.20;

/// Per-cell voltage below which the autopilot declares failsafe (LiPo
/// cells are damaged below ~3.0 V; 3.3 V leaves margin to land).
pub const FAILSAFE_CELL_VOLTS: f64 = 3.3;

/// Low voltage must persist this long before the failsafe fires —
/// transient sag under a throttle punch is not an emergency.
pub const LOW_VOLTAGE_HOLD_SECONDS: f64 = 0.5;

/// One telemetry log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Firmware time, s.
    pub time: f64,
    /// Mode at the time.
    pub mode: FlightMode,
    /// Estimated position, m.
    pub position: Vec3,
    /// Battery fraction remaining.
    pub battery_fraction: f64,
}

/// Errors the autopilot API can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum AutopilotError {
    /// Mode transition refused.
    Mode(TransitionError),
    /// Mission rejected.
    Mission(MissionError),
    /// Operation requires a mission but none is loaded.
    NoMission,
}

impl fmt::Display for AutopilotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutopilotError::Mode(e) => write!(f, "{e}"),
            AutopilotError::Mission(e) => write!(f, "{e}"),
            AutopilotError::NoMission => f.write_str("no mission uploaded"),
        }
    }
}

impl std::error::Error for AutopilotError {}

impl From<TransitionError> for AutopilotError {
    fn from(e: TransitionError) -> Self {
        AutopilotError::Mode(e)
    }
}

/// The flight firmware.
///
/// Call [`Autopilot::update`] at the inner-loop rate with fresh sensor
/// readings and the battery fraction; it returns motor throttle commands.
///
/// # Example
///
/// ```
/// use drone_firmware::{Autopilot, Mission};
/// use drone_sim::QuadcopterParams;
///
/// let params = QuadcopterParams::default_450mm();
/// let mut ap = Autopilot::new(&params);
/// ap.upload_mission(Mission::hover_test(5.0, 2.0)).unwrap();
/// ap.arm().unwrap();
/// assert!(ap.mode().is_armed());
/// ```
#[derive(Debug, Clone)]
pub struct Autopilot {
    mode: ModeMachine,
    estimator: StateEstimator,
    cascade: CascadeController,
    mission: Option<MissionRunner>,
    pending_mission: Option<Mission>,
    setpoint: Setpoint,
    home: Vec3,
    time: f64,
    telemetry: Vec<TelemetryRecord>,
    telemetry_interval: f64,
    last_telemetry: f64,
    outbox: Vec<Message>,
    seq: u8,
    mission_link: MissionReceiver,
    rc_override: Option<Setpoint>,
    link: LinkMonitor,
    /// Low-voltage failsafe threshold for the whole pack, volts.
    low_voltage_threshold: f64,
    /// Latest reported pack voltage (None until first report).
    reported_voltage: Option<f64>,
    /// Latest reported drain-limit flag.
    at_drain_limit: bool,
    /// How long the pack has been continuously under the threshold, s.
    low_voltage_for: f64,
    /// Failsafe-activation counter, present when telemetry is attached.
    failsafe_counter: Option<Arc<Counter>>,
}

impl Autopilot {
    /// Creates firmware for the given airframe, disarmed at the origin.
    pub fn new(params: &QuadcopterParams) -> Autopilot {
        Autopilot {
            mode: ModeMachine::new(),
            estimator: StateEstimator::new(),
            cascade: CascadeController::new(params),
            mission: None,
            pending_mission: None,
            setpoint: Setpoint::position(Vec3::ZERO, 0.0),
            home: Vec3::ZERO,
            time: 0.0,
            telemetry: Vec::new(),
            telemetry_interval: 0.1,
            last_telemetry: f64::NEG_INFINITY,
            outbox: Vec::new(),
            seq: 0,
            mission_link: MissionReceiver::new(),
            rc_override: None,
            link: LinkMonitor::default(),
            low_voltage_threshold: params.battery.nominal_voltage().0
                * (FAILSAFE_CELL_VOLTS / drone_components::battery::CELL_NOMINAL_VOLTS),
            reported_voltage: None,
            at_drain_limit: false,
            low_voltage_for: 0.0,
            failsafe_counter: None,
        }
    }

    /// Attaches the whole firmware stack to a telemetry registry: the
    /// estimator times its EKF phases and records NIS, the control
    /// cascade times its levels, and the autopilot itself counts
    /// failsafe activations (`firmware.failsafes`).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.estimator.attach_telemetry(registry);
        self.cascade.attach_telemetry(registry);
        self.failsafe_counter = Some(registry.counter("firmware.failsafes"));
    }

    /// The state estimator (filter diagnostics such as
    /// [`StateEstimator::last_nis`]).
    pub fn estimator(&self) -> &StateEstimator {
        &self.estimator
    }

    /// The ground-station link watchdog.
    pub fn link(&self) -> &LinkMonitor {
        &self.link
    }

    /// Feeds the battery monitor with pack telemetry (terminal voltage
    /// and whether the 85 % safe-drain limit has been reached). Without
    /// reports only the state-of-charge failsafe is active.
    pub fn report_battery(&mut self, voltage: f64, at_drain_limit: bool) {
        self.reported_voltage = Some(voltage);
        self.at_drain_limit = at_drain_limit;
    }

    /// Current flight mode.
    pub fn mode(&self) -> FlightMode {
        self.mode.mode()
    }

    /// Latest state estimate.
    pub fn estimate(&self) -> drone_sim::RigidBodyState {
        self.estimator.state()
    }

    /// Firmware clock, seconds since boot.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Telemetry log.
    pub fn telemetry(&self) -> &[TelemetryRecord] {
        &self.telemetry
    }

    /// Drains queued MAVLink messages (ground-station downlink).
    pub fn drain_outbox(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.outbox)
    }

    /// Processes an uplink message from the ground station (commands,
    /// mission uploads), returning the replies to send back. A completed
    /// mission upload replaces the pending mission, exactly like the
    /// paper's "reconfigured mid-flight" DroneKit path — the new mission
    /// takes effect at the next arm.
    pub fn handle_message(&mut self, msg: &Message) -> Vec<Message> {
        if let Message::Heartbeat { .. } = msg {
            if self.link.heartbeat() == Some(LinkEvent::Recovered) {
                self.outbox.push(Message::StatusText {
                    severity: 5,
                    text: "ground-station link recovered".into(),
                });
            }
            return Vec::new();
        }
        if let Message::CommandLong { command, params } = msg {
            if *command == CMD_ARM && params[0] > 0.5 {
                let result = u8::from(self.arm().is_err());
                return vec![Message::CommandAck {
                    command: *command,
                    result,
                }];
            }
            return vec![Message::CommandAck {
                command: *command,
                result: 2,
            }];
        }
        let replies = self.mission_link.handle(msg);
        if let Some(mission) = self.mission_link.take_mission() {
            let _ = self.upload_mission(mission);
        }
        replies
    }

    /// Engages or clears an RC / safety override. While engaged, the
    /// override setpoint feeds the inner loop directly and the mission
    /// holds — the paper's §2.1.3 "RC commands and safety override
    /// commands pass through the inner-loop to minimize response
    /// latency."
    pub fn set_rc_override(&mut self, setpoint: Option<Setpoint>) {
        self.rc_override = setpoint;
    }

    /// Whether an RC override is currently engaged.
    pub fn rc_override_active(&self) -> bool {
        self.rc_override.is_some()
    }

    /// Seeds the estimator with a known initial state (pre-flight
    /// alignment on the bench).
    pub fn align(&mut self, truth: &drone_sim::RigidBodyState) {
        self.estimator.initialize_from(truth);
        self.home = truth.position;
    }

    /// Uploads a mission (validated).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`MissionError`] for invalid missions.
    pub fn upload_mission(&mut self, mission: Mission) -> Result<(), AutopilotError> {
        self.pending_mission = Some(mission);
        self.outbox.push(Message::StatusText {
            severity: 6,
            text: "mission uploaded".into(),
        });
        Ok(())
    }

    /// Arms the motors and, if a mission is loaded, begins take-off.
    ///
    /// # Errors
    ///
    /// Returns [`AutopilotError::NoMission`] without an uploaded mission,
    /// or a mode error when not disarmed.
    pub fn arm(&mut self) -> Result<(), AutopilotError> {
        let mission = self
            .pending_mission
            .take()
            .ok_or(AutopilotError::NoMission)?;
        self.mode.transition(FlightMode::Armed)?;
        let home = self.estimator.state().position;
        self.home = home;
        self.mission = Some(MissionRunner::new(mission, home));
        self.mode.transition(FlightMode::Takeoff)?;
        self.outbox.push(Message::StatusText {
            severity: 5,
            text: "armed: taking off".into(),
        });
        Ok(())
    }

    /// One firmware tick: ingest sensors, run mode logic + mission, run
    /// the control cascade, return motor commands.
    pub fn update(
        &mut self,
        readings: &SensorReadings,
        battery_fraction: f64,
        dt: f64,
    ) -> [f64; ROTOR_COUNT] {
        self.time += dt;
        self.estimator.ingest(readings, dt);
        let estimate = self.estimator.state();

        for event in self.link.tick(dt) {
            if event == LinkEvent::Lost {
                self.outbox.push(Message::StatusText {
                    severity: 2,
                    text: "ground-station link lost".into(),
                });
            }
        }
        match self.reported_voltage {
            Some(v) if v < self.low_voltage_threshold => self.low_voltage_for += dt,
            _ => self.low_voltage_for = 0.0,
        }

        // Failsafe checks dominate everything while flying.
        if self.mode().is_flying()
            && self.mode() != FlightMode::Failsafe
            && self.mode() != FlightMode::Land
        {
            let reason = if battery_fraction < FAILSAFE_BATTERY_FRACTION {
                Some(format!(
                    "battery {:.0}%: failsafe landing",
                    battery_fraction * 100.0
                ))
            } else if self.at_drain_limit {
                Some("battery at safe-drain limit: failsafe landing".into())
            } else if self.low_voltage_for >= LOW_VOLTAGE_HOLD_SECONDS {
                Some(format!(
                    "pack voltage {:.1} V below {:.1} V: failsafe landing",
                    self.reported_voltage.unwrap_or(0.0),
                    self.low_voltage_threshold
                ))
            } else if self.link.ever_connected() && !self.link.is_connected() {
                Some("ground-station link lost: failsafe landing".into())
            } else {
                None
            };
            if let Some(text) = reason {
                let _ = self.mode.transition(FlightMode::Failsafe);
                self.outbox.push(Message::StatusText { severity: 1, text });
                if let Some(counter) = &self.failsafe_counter {
                    counter.inc();
                }
            }
        }

        match self.mode() {
            FlightMode::Disarmed | FlightMode::Armed => {
                self.record_telemetry(&estimate, battery_fraction);
                return [0.0; ROTOR_COUNT];
            }
            FlightMode::Takeoff | FlightMode::Mission => {
                // RC override bypasses the mission layer entirely.
                if let Some(rc) = self.rc_override {
                    self.setpoint = rc;
                    self.record_telemetry(&estimate, battery_fraction);
                    return self.cascade.update(&estimate, &rc, dt);
                }
                let was_takeoff = self.mode() == FlightMode::Takeoff;
                if let Some(runner) = &mut self.mission {
                    match runner.update(&estimate, dt) {
                        Some(sp) => {
                            self.setpoint = sp;
                            // Promote Takeoff → Mission once past item 0.
                            if was_takeoff {
                                if let crate::mission::MissionProgress::Active { index } =
                                    runner.progress()
                                {
                                    if index > 0 {
                                        let _ = self.mode.transition(FlightMode::Mission);
                                    }
                                }
                            }
                        }
                        None => {
                            // Mission complete: landed.
                            let _ = self.mode.transition(FlightMode::Land);
                            let _ = self.mode.transition(FlightMode::Disarmed);
                            self.outbox.push(Message::StatusText {
                                severity: 5,
                                text: "mission complete: disarmed".into(),
                            });
                            self.record_telemetry(&estimate, battery_fraction);
                            return [0.0; ROTOR_COUNT];
                        }
                    }
                }
            }
            FlightMode::Hold => {
                // Keep the latched setpoint.
            }
            FlightMode::Land | FlightMode::Failsafe => {
                // Descend in place; disarm on touchdown.
                let p = estimate.position;
                if p.z < 0.15 && estimate.velocity.norm() < 0.5 {
                    let _ = self.mode.transition(FlightMode::Disarmed);
                    self.record_telemetry(&estimate, battery_fraction);
                    return [0.0; ROTOR_COUNT];
                }
                self.setpoint = Setpoint::position(Vec3::new(p.x, p.y, (p.z - 1.5).max(-1.0)), 0.0);
            }
        }

        self.record_telemetry(&estimate, battery_fraction);
        self.cascade.update(&estimate, &self.setpoint.clone(), dt)
    }

    fn record_telemetry(&mut self, estimate: &drone_sim::RigidBodyState, battery: f64) {
        if self.time - self.last_telemetry < self.telemetry_interval {
            return;
        }
        self.last_telemetry = self.time;
        self.telemetry.push(TelemetryRecord {
            time: self.time,
            mode: self.mode(),
            position: estimate.position,
            battery_fraction: battery,
        });
        let (roll, pitch, yaw) = estimate.euler();
        self.seq = self.seq.wrapping_add(1);
        self.outbox.push(Message::Heartbeat {
            mode: self.mode() as u8,
            armed: self.mode().is_armed(),
        });
        self.outbox.push(Message::Attitude {
            time_ms: (self.time * 1e3) as u32,
            roll: roll as f32,
            pitch: pitch as f32,
            yaw: yaw as f32,
        });
        self.outbox.push(Message::Position {
            time_ms: (self.time * 1e3) as u32,
            position: [
                estimate.position.x as f32,
                estimate.position.y as f32,
                estimate.position.z as f32,
            ],
            velocity: [
                estimate.velocity.x as f32,
                estimate.velocity.y as f32,
                estimate.velocity.z as f32,
            ],
        });
        self.outbox.push(Message::BatteryStatus {
            voltage_mv: 11_100,
            remaining_pct: (battery * 100.0).clamp(0.0, 100.0) as u8,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_estimation::SensorSuite;
    use drone_sim::{Quadcopter, WindModel};

    /// Run a full closed-loop flight: truth sim + sensors + firmware.
    /// `battery_override` is `(after_seconds, fraction)` — the reported
    /// battery level is pinned to `fraction` once the clock passes
    /// `after_seconds`, so failsafes can be triggered mid-flight.
    fn fly_mission(
        mission: Mission,
        seconds: f64,
        battery_override: Option<(f64, f64)>,
    ) -> (Quadcopter, Autopilot) {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::new(params.clone());
        let mut sensors = SensorSuite::with_defaults(21);
        let mut ap = Autopilot::new(&params);
        ap.align(quad.state());
        ap.upload_mission(mission).unwrap();
        ap.arm().unwrap();
        let mut wind = WindModel::gusty(Vec3::new(1.0, 0.5, 0.0), 0.5, 5);
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        for step in 0..(seconds / dt) as usize {
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = sensors.sample(quad.state(), accel, dt);
            let battery = match battery_override {
                Some((after, frac)) if step as f64 * dt > after => frac,
                _ => quad.battery().remaining_fraction(),
            };
            let throttle = ap.update(&readings, battery, dt);
            let w = wind.sample(dt);
            quad.step(throttle, w, dt);
            if ap.mode() == FlightMode::Disarmed && quad.state().position.z < 0.2 {
                break;
            }
        }
        (quad, ap)
    }

    #[test]
    fn completes_hover_mission_and_disarms() {
        let (quad, ap) = fly_mission(Mission::hover_test(8.0, 3.0), 60.0, None);
        assert_eq!(
            ap.mode(),
            FlightMode::Disarmed,
            "telemetry: {:?}",
            ap.telemetry().last()
        );
        assert!(quad.state().position.z < 0.3, "{}", quad.state());
        // It actually flew.
        let max_alt = ap
            .telemetry()
            .iter()
            .map(|t| t.position.z)
            .fold(0.0, f64::max);
        assert!(max_alt > 7.0, "max altitude {max_alt}");
    }

    #[test]
    fn flies_survey_square() {
        let mission = Mission::survey_square(Vec3::new(0.0, 0.0, 12.0), 16.0);
        let (quad, ap) = fly_mission(mission, 120.0, None);
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        // Visited all four quadrants.
        let telemetry = ap.telemetry();
        for (sx, sy) in [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)] {
            let visited = telemetry
                .iter()
                .any(|t| t.position.x * sx > 4.0 && t.position.y * sy > 4.0);
            assert!(visited, "never visited quadrant ({sx},{sy})");
        }
        assert!(quad.state().position.z < 0.3);
    }

    #[test]
    fn battery_failsafe_lands() {
        // Battery cut below the failsafe threshold 10 s into the hover.
        let (quad, ap) = fly_mission(Mission::hover_test(10.0, 60.0), 60.0, Some((10.0, 0.10)));
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        assert!(
            quad.state().position.z < 0.3,
            "failsafe never landed: {}",
            quad.state()
        );
        // It must have flagged failsafe in telemetry modes.
        assert!(
            ap.telemetry()
                .iter()
                .any(|t| t.mode == FlightMode::Failsafe),
            "failsafe mode never recorded"
        );
    }

    #[test]
    fn attached_telemetry_sees_the_whole_stack() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::new(params.clone());
        let mut sensors = SensorSuite::with_defaults(21);
        let mut ap = Autopilot::new(&params);
        let registry = Registry::new(drone_telemetry::Clock::wall());
        ap.attach_telemetry(&registry);
        ap.align(quad.state());
        ap.upload_mission(Mission::hover_test(10.0, 60.0)).unwrap();
        ap.arm().unwrap();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        for step in 0..30_000 {
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = sensors.sample(quad.state(), accel, dt);
            // Cut the battery 10 s in so the failsafe fires.
            let battery = if step as f64 * dt > 10.0 {
                0.10
            } else {
                quad.battery().remaining_fraction()
            };
            let throttle = ap.update(&readings, battery, dt);
            quad.step(throttle, Vec3::ZERO, dt);
            if ap.mode() == FlightMode::Disarmed && quad.state().position.z < 0.2 {
                break;
            }
        }
        assert_eq!(registry.counter("firmware.failsafes").get(), 1);
        // The estimator and cascade handles registered by the autopilot
        // saw every update.
        // NIS only accumulates at the (much slower) GPS/baro update
        // rates, the rest at the 1 kHz loop rate.
        for (name, floor) in [
            ("ekf.predict.seconds", 1_000),
            ("ekf.nis", 100),
            ("control.rate.seconds", 1_000),
            ("control.position.seconds", 100),
        ] {
            let h = registry.histogram(name).snapshot();
            assert!(h.count() > floor, "{name} only recorded {}", h.count());
        }
    }

    #[test]
    fn arm_requires_mission() {
        let params = QuadcopterParams::default_450mm();
        let mut ap = Autopilot::new(&params);
        assert_eq!(ap.arm().unwrap_err(), AutopilotError::NoMission);
    }

    #[test]
    fn telemetry_stream_is_mavlink_encodable() {
        let (_, mut ap) = fly_mission(Mission::hover_test(5.0, 1.0), 30.0, None);
        let msgs = ap.drain_outbox();
        assert!(msgs.len() > 50, "only {} messages", msgs.len());
        // Every message survives an encode/decode roundtrip.
        let mut parser = crate::mavlink::StreamParser::new();
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend_from_slice(&m.encode(i as u8, 1, 1));
        }
        let frames = parser.push(&wire);
        assert_eq!(frames.len(), msgs.len());
        assert_eq!(parser.crc_failures(), 0);
    }

    #[test]
    fn mission_upload_over_the_link_then_arm_command() {
        let params = QuadcopterParams::default_450mm();
        let mut ap = Autopilot::new(&params);
        let mut gcs = crate::gcs::GroundStation::new();
        // Upload a mission entirely through MAVLink messages.
        let mut to_vehicle = vec![gcs.begin_mission_upload(Mission::hover_test(6.0, 1.0))];
        for _ in 0..32 {
            let mut to_gcs = Vec::new();
            for m in &to_vehicle {
                to_gcs.extend(ap.handle_message(m));
            }
            to_vehicle.clear();
            for m in &to_gcs {
                to_vehicle.extend(gcs.handle(m));
            }
            if gcs.upload_result().is_some() {
                break;
            }
        }
        assert_eq!(gcs.upload_result(), Some(0), "upload not acknowledged");
        // Arm over the link.
        let replies = ap.handle_message(&gcs.arm_command());
        assert_eq!(
            replies,
            vec![Message::CommandAck {
                command: crate::gcs::CMD_ARM,
                result: 0
            }]
        );
        assert!(ap.mode().is_armed());
    }

    #[test]
    fn arm_command_without_mission_is_refused() {
        let params = QuadcopterParams::default_450mm();
        let mut ap = Autopilot::new(&params);
        let gcs = crate::gcs::GroundStation::new();
        let replies = ap.handle_message(&gcs.arm_command());
        assert_eq!(
            replies,
            vec![Message::CommandAck {
                command: crate::gcs::CMD_ARM,
                result: 1
            }]
        );
        assert_eq!(ap.mode(), FlightMode::Disarmed);
    }

    #[test]
    fn rc_override_takes_and_releases_control() {
        // Fly a long hover mission; mid-flight an RC override drags the
        // drone 5 m north, then releases and the mission resumes.
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::new(params.clone());
        let mut sensors = SensorSuite::with_defaults(41);
        let mut ap = Autopilot::new(&params);
        ap.align(quad.state());
        ap.upload_mission(Mission::hover_test(10.0, 40.0)).unwrap();
        ap.arm().unwrap();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        let mut max_x_during_override = 0.0f64;
        for step in 0..60_000 {
            let t = step as f64 * dt;
            if (t - 15.0).abs() < dt / 2.0 {
                ap.set_rc_override(Some(drone_control::Setpoint::position(
                    Vec3::new(5.0, 0.0, 10.0),
                    0.0,
                )));
            }
            if (t - 30.0).abs() < dt / 2.0 {
                ap.set_rc_override(None);
            }
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = sensors.sample(quad.state(), accel, dt);
            let throttle = ap.update(&readings, quad.battery().remaining_fraction(), dt);
            quad.step(throttle, Vec3::ZERO, dt);
            if (15.0..30.0).contains(&t) {
                max_x_during_override = max_x_during_override.max(quad.state().position.x);
            }
        }
        assert!(
            max_x_during_override > 4.0,
            "override never moved the drone: {max_x_during_override:.2} m"
        );
        // After release the mission (hover at origin) pulls it back.
        assert!(
            quad.state().position.x.abs() < 1.5,
            "mission did not resume: {}",
            quad.state()
        );
    }

    #[test]
    fn disarmed_outputs_zero_throttle() {
        let params = QuadcopterParams::default_450mm();
        let mut ap = Autopilot::new(&params);
        let out = ap.update(&SensorReadings::default(), 1.0, 1e-3);
        assert_eq!(out, [0.0; 4]);
    }

    /// Closed-loop flight with a GCS heartbeating at 1 Hz until
    /// `silence_after` seconds, when the ground station goes dark.
    fn fly_with_link(silence_after: f64, seconds: f64) -> (Quadcopter, Autopilot) {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::new(params.clone());
        let mut sensors = SensorSuite::with_defaults(33);
        let mut ap = Autopilot::new(&params);
        ap.align(quad.state());
        ap.upload_mission(Mission::hover_test(10.0, 120.0)).unwrap();
        ap.arm().unwrap();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        let mut next_heartbeat = 0.0;
        for step in 0..(seconds / dt) as usize {
            let t = step as f64 * dt;
            if t >= next_heartbeat && t < silence_after {
                ap.handle_message(&Message::Heartbeat {
                    mode: 0,
                    armed: false,
                });
                next_heartbeat += 1.0;
            }
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = sensors.sample(quad.state(), accel, dt);
            let throttle = ap.update(&readings, quad.battery().remaining_fraction(), dt);
            quad.step(throttle, Vec3::ZERO, dt);
            if ap.mode() == FlightMode::Disarmed && quad.state().position.z < 0.2 {
                break;
            }
        }
        (quad, ap)
    }

    #[test]
    fn link_loss_triggers_failsafe_landing() {
        // GCS heartbeats for 15 s, then goes silent mid-hover: the
        // heartbeat timeout must drive Failsafe and land the vehicle.
        let (quad, ap) = fly_with_link(15.0, 90.0);
        assert_eq!(
            ap.mode(),
            FlightMode::Disarmed,
            "{:?}",
            ap.telemetry().last()
        );
        assert!(quad.state().position.z < 0.3, "{}", quad.state());
        assert!(
            ap.telemetry()
                .iter()
                .any(|t| t.mode == FlightMode::Failsafe),
            "failsafe never engaged"
        );
        assert_eq!(ap.link().drops(), 1);
        assert!(
            ap.link().reconnect_attempts() > 0,
            "no reconnects attempted"
        );
    }

    #[test]
    fn no_ground_station_means_no_link_failsafe() {
        // Never-connected links must not fail a bench flight (the
        // existing mission tests rely on this, but make it explicit).
        let (quad, ap) = fly_mission(Mission::hover_test(6.0, 3.0), 40.0, None);
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        assert!(
            ap.telemetry()
                .iter()
                .all(|t| t.mode != FlightMode::Failsafe),
            "phantom link failsafe"
        );
        assert!(quad.state().position.z < 0.3);
    }

    #[test]
    fn drain_limit_report_triggers_failsafe() {
        let params = QuadcopterParams::default_450mm();
        let mut quad = Quadcopter::new(params.clone());
        let mut sensors = SensorSuite::with_defaults(34);
        let mut ap = Autopilot::new(&params);
        ap.align(quad.state());
        ap.upload_mission(Mission::hover_test(8.0, 120.0)).unwrap();
        ap.arm().unwrap();
        let dt = 1e-3;
        let mut prev_vel = quad.state().velocity;
        for step in 0..60_000 {
            let t = step as f64 * dt;
            // 20 s in, the pack monitor reports the 85 % drain limit
            // (battery fraction itself still far above the SoC failsafe).
            ap.report_battery(11.1, t > 20.0);
            let accel = (quad.state().velocity - prev_vel) / dt;
            prev_vel = quad.state().velocity;
            let readings = sensors.sample(quad.state(), accel, dt);
            let throttle = ap.update(&readings, 0.9, dt);
            quad.step(throttle, Vec3::ZERO, dt);
            if ap.mode() == FlightMode::Disarmed && quad.state().position.z < 0.2 {
                break;
            }
        }
        assert_eq!(ap.mode(), FlightMode::Disarmed);
        assert!(quad.state().position.z < 0.3, "{}", quad.state());
        assert!(ap
            .telemetry()
            .iter()
            .any(|t| t.mode == FlightMode::Failsafe));
    }

    #[test]
    fn sustained_low_voltage_triggers_failsafe_but_transients_do_not() {
        let params = QuadcopterParams::default_450mm();
        let mut ap = Autopilot::new(&params);
        ap.upload_mission(Mission::hover_test(5.0, 60.0)).unwrap();
        ap.arm().unwrap();
        let readings = SensorReadings::default();
        let voltage_failsafed = |ap: &mut Autopilot| {
            ap.drain_outbox().iter().any(
                |m| matches!(m, Message::StatusText { text, .. } if text.contains("pack voltage")),
            )
        };
        // A 0.3 s sag (throttle punch) must not fail the flight.
        ap.report_battery(9.0, false);
        for _ in 0..300 {
            ap.update(&readings, 0.9, 1e-3);
        }
        ap.report_battery(11.1, false);
        for _ in 0..300 {
            ap.update(&readings, 0.9, 1e-3);
        }
        assert!(
            !voltage_failsafed(&mut ap),
            "transient sag must be ridden out"
        );
        assert_eq!(ap.mode(), FlightMode::Takeoff);
        // Sustained brown-out does trip it (the grounded estimate then
        // disarms immediately — the landing is already "complete").
        ap.report_battery(9.0, false);
        for _ in 0..600 {
            ap.update(&readings, 0.9, 1e-3);
        }
        assert!(
            voltage_failsafed(&mut ap),
            "sustained low voltage never failsafed"
        );
        assert_eq!(ap.mode(), FlightMode::Disarmed);
    }
}
