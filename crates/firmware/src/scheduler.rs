//! Preemptive rate-group scheduler with deadline accounting.
//!
//! This is the instrument behind the paper's §5.1 finding: running SLAM
//! on the same core as the autopilot inflates the autopilot's execution
//! times (cache/TLB/branch interference; Figure 15) until outer-loop
//! deadlines slip. Tasks are periodic with a worst-case execution time;
//! the simulator runs fixed-priority preemptive scheduling on one CPU
//! whose speed can be scaled, and reports per-task deadline misses and
//! utilization.

use drone_telemetry::{Histogram, Json};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A periodic task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Release period, seconds (deadline = next release).
    pub period: f64,
    /// Execution time per job at CPU speed 1.0, seconds.
    pub execution_time: f64,
    /// Priority: lower number = higher priority.
    pub priority: u8,
    /// Whether the load-shedding policy may drop this task under
    /// overload (best-effort workloads like SLAM; never flight-critical
    /// loops).
    pub sheddable: bool,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if period or execution time are not positive.
    pub fn new(name: impl Into<String>, period: f64, execution_time: f64, priority: u8) -> Task {
        let name = name.into();
        assert!(period > 0.0, "period must be positive");
        assert!(execution_time > 0.0, "execution time must be positive");
        Task {
            name,
            period,
            execution_time,
            priority,
            sheddable: false,
        }
    }

    /// Marks this task as droppable by the load-shedding policy.
    pub fn sheddable(mut self) -> Task {
        self.sheddable = true;
        self
    }

    /// CPU utilization demanded by this task at speed 1.0.
    pub fn utilization(&self) -> f64 {
        self.execution_time / self.period
    }
}

/// Per-task scheduling outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Task name.
    pub name: String,
    /// Jobs released.
    pub released: u64,
    /// Jobs that finished by their deadline.
    pub completed_on_time: u64,
    /// Jobs that missed their deadline (late or unfinished).
    pub deadline_misses: u64,
    /// Worst observed response time, seconds.
    pub worst_response: f64,
    /// Full response-time distribution (seconds) of completed jobs —
    /// the per-task latency profile `worst_response` only summarized.
    pub response_times: Histogram,
}

impl TaskReport {
    /// An empty report for a task (nothing released yet).
    pub fn empty(name: impl Into<String>) -> TaskReport {
        TaskReport {
            name: name.into(),
            released: 0,
            completed_on_time: 0,
            deadline_misses: 0,
            worst_response: 0.0,
            response_times: Histogram::new(),
        }
    }

    /// Deadline-miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.released as f64
        }
    }

    /// Response-time quantile in seconds (`None` until a job completes).
    pub fn response_quantile(&self, q: f64) -> Option<f64> {
        self.response_times.quantile(q)
    }

    /// Serializes every field, histogram included.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("released", self.released)
            .with("completed_on_time", self.completed_on_time)
            .with("deadline_misses", self.deadline_misses)
            .with("miss_ratio", self.miss_ratio())
            .with("worst_response", self.worst_response)
            .with("response_times", self.response_times.to_json())
    }

    /// Rebuilds a report from [`TaskReport::to_json`] output.
    pub fn from_json(doc: &Json) -> Option<TaskReport> {
        Some(TaskReport {
            name: doc.get("name")?.as_str()?.to_owned(),
            released: doc.get("released")?.as_f64()? as u64,
            completed_on_time: doc.get("completed_on_time")?.as_f64()? as u64,
            deadline_misses: doc.get("deadline_misses")?.as_f64()? as u64,
            worst_response: doc.get("worst_response")?.as_f64()?,
            response_times: Histogram::from_json(doc.get("response_times")?)?,
        })
    }
}

/// Whole-run scheduling report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerReport {
    /// Per-task outcomes, in task order.
    pub tasks: Vec<TaskReport>,
    /// Fraction of CPU time spent busy.
    pub cpu_utilization: f64,
}

impl SchedulerReport {
    /// Report for a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Total deadline misses across tasks.
    pub fn total_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.deadline_misses).sum()
    }

    /// Serializes the whole report, per-task histograms included.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("cpu_utilization", self.cpu_utilization)
            .with(
                "tasks",
                Json::Arr(self.tasks.iter().map(|t| t.to_json()).collect()),
            )
    }

    /// Rebuilds a report from [`SchedulerReport::to_json`] output.
    pub fn from_json(doc: &Json) -> Option<SchedulerReport> {
        let tasks = doc
            .get("tasks")?
            .as_arr()?
            .iter()
            .map(TaskReport::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(SchedulerReport {
            tasks,
            cpu_utilization: doc.get("cpu_utilization")?.as_f64()?,
        })
    }
}

impl fmt::Display for SchedulerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cpu utilization {:.1}%", self.cpu_utilization * 100.0)?;
        for t in &self.tasks {
            write!(
                f,
                "  {:<16} released {:>6}  on-time {:>6}  missed {:>5} ({:.1}%)  worst {:.1} ms",
                t.name,
                t.released,
                t.completed_on_time,
                t.deadline_misses,
                t.miss_ratio() * 100.0,
                t.worst_response * 1e3
            )?;
            if let (Some(p50), Some(p99)) = (t.response_quantile(0.50), t.response_quantile(0.99)) {
                write!(f, "  p50 {:.2} ms  p99 {:.2} ms", p50 * 1e3, p99 * 1e3)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Load-shedding policy: watch one task's windowed deadline-miss ratio
/// and drop every sheddable task the first time it crosses the
/// threshold (paper §5.1: the outer loop slipping under co-located SLAM
/// is the signal; shedding SLAM is the remedy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedPolicy {
    /// Name of the task whose miss ratio is monitored.
    pub monitor: String,
    /// Monitoring window, seconds.
    pub window: f64,
    /// Shed when the windowed miss ratio reaches this value.
    pub miss_ratio_threshold: f64,
    /// CPU speed after shedding: removing the co-located workload also
    /// removes its cache/TLB interference, so the surviving tasks run at
    /// (close to) nominal IPC again (Figure 15's 1.7× recovered).
    pub restored_cpu_speed: f64,
}

impl ShedPolicy {
    /// The paper-calibrated default: watch the 40 Hz outer loop over 1 s
    /// windows, shed at 30 % misses, recover nominal IPC.
    pub fn outer_loop_default() -> ShedPolicy {
        ShedPolicy {
            monitor: "outer-loop".into(),
            window: 1.0,
            miss_ratio_threshold: 0.3,
            restored_cpu_speed: 1.0,
        }
    }
}

/// One notable scheduling event: a shed firing, or a monitored window
/// still breaching the threshold after the shed settled. The log gives
/// the flight recorder (and post-mortem readers) the *when* that the
/// aggregate report discards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerEvent {
    /// Simulation time of the event, seconds.
    pub at: f64,
    /// What happened, human-readable.
    pub description: String,
}

/// Result of a simulation run under a [`ShedPolicy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedOutcome {
    /// The usual per-task report for the whole run.
    pub report: SchedulerReport,
    /// When the sheddable tasks were dropped (None = never triggered).
    pub shed_at: Option<f64>,
    /// Names of the tasks that were shed.
    pub tasks_shed: Vec<String>,
    /// Worst windowed miss ratio of the monitored task before the shed
    /// (over the whole run when no shed happened).
    pub worst_window_before: f64,
    /// Worst windowed miss ratio of the monitored task after the shed,
    /// excluding the settling window right after it: jobs already past
    /// their deadline at shed time still drain through that window and
    /// are not evidence against the policy.
    pub worst_window_after: f64,
    /// Time-ordered log of shed firings and post-shed breaches.
    pub events: Vec<SchedulerEvent>,
}

/// Fixed-priority preemptive scheduler simulation on one CPU.
///
/// # Example
///
/// ```
/// use drone_firmware::{RateScheduler, Task};
/// let mut sched = RateScheduler::new(vec![
///     Task::new("inner-loop", 1.0 / 400.0, 0.5e-3, 0),
///     Task::new("telemetry", 0.1, 2e-3, 5),
/// ]);
/// let report = sched.simulate(10.0, 1.0);
/// assert_eq!(report.total_misses(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RateScheduler {
    tasks: Vec<Task>,
}

#[derive(Debug, Clone)]
struct Job {
    task_index: usize,
    release: f64,
    deadline: f64,
    remaining: f64,
    /// Already counted against the shed policy's window (avoids double
    /// counting a job that blows its deadline and completes later).
    counted_missed: bool,
}

impl RateScheduler {
    /// Creates a scheduler over a fixed task set.
    ///
    /// # Panics
    ///
    /// Panics if the task set is empty.
    pub fn new(tasks: Vec<Task>) -> RateScheduler {
        assert!(!tasks.is_empty(), "task set must not be empty");
        RateScheduler { tasks }
    }

    /// The task set.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total demanded utilization at the given CPU speed.
    pub fn demanded_utilization(&self, cpu_speed: f64) -> f64 {
        self.tasks.iter().map(|t| t.utilization()).sum::<f64>() / cpu_speed
    }

    /// Simulates `duration` seconds at `cpu_speed` (1.0 = nominal; values
    /// below 1.0 model interference-degraded IPC). Returns the report.
    ///
    /// # Panics
    ///
    /// Panics if duration or speed are not positive.
    pub fn simulate(&mut self, duration: f64, cpu_speed: f64) -> SchedulerReport {
        self.run(duration, cpu_speed, None).report
    }

    /// Simulates with a live load-shedding policy: the first time the
    /// monitored task's windowed miss ratio reaches the threshold, every
    /// sheddable task is dropped (queued jobs discarded, no further
    /// releases) and the CPU recovers to the policy's restored speed.
    ///
    /// # Panics
    ///
    /// Panics if duration/speed are not positive or the monitored task is
    /// not in the task set.
    pub fn simulate_with_shedding(
        &mut self,
        duration: f64,
        cpu_speed: f64,
        policy: &ShedPolicy,
    ) -> ShedOutcome {
        self.run(duration, cpu_speed, Some(policy))
    }

    fn run(&mut self, duration: f64, cpu_speed: f64, policy: Option<&ShedPolicy>) -> ShedOutcome {
        assert!(duration > 0.0, "duration must be positive");
        assert!(cpu_speed > 0.0, "cpu speed must be positive");
        let monitor_idx = policy.map(|p| {
            assert!(p.window > 0.0, "shed window must be positive");
            self.tasks
                .iter()
                .position(|t| t.name == p.monitor)
                .expect("monitored task must be in the task set")
        });

        let mut reports: Vec<TaskReport> = self
            .tasks
            .iter()
            .map(|t| TaskReport::empty(t.name.clone()))
            .collect();

        let mut ready: Vec<Job> = Vec::new();
        let mut next_release: Vec<f64> = vec![0.0; self.tasks.len()];
        let mut busy_time = 0.0;
        let mut now = 0.0;
        let mut speed = cpu_speed;

        // Shed-policy window accounting over the monitored task.
        let mut window_end = policy.map_or(f64::INFINITY, |p| p.window);
        let mut pending_deadlines: Vec<f64> = Vec::new();
        let mut window_due = 0u64;
        let mut window_missed = 0u64;
        let mut shed_at = None;
        let mut tasks_shed = Vec::new();
        let mut worst_before = 0.0f64;
        let mut worst_after = 0.0f64;
        let mut events: Vec<SchedulerEvent> = Vec::new();

        while now < duration {
            // Close the monitoring window and apply the shed policy.
            if let (Some(p), Some(mi)) = (policy, monitor_idx) {
                while now + 1e-12 >= window_end {
                    // Deadlines that fell inside this window are due.
                    pending_deadlines.retain(|d| {
                        if *d <= window_end + 1e-9 {
                            window_due += 1;
                            false
                        } else {
                            true
                        }
                    });
                    // Jobs still unfinished past a due deadline count
                    // missed now (their eventual late completion must not
                    // count twice).
                    for job in &mut ready {
                        if job.task_index == mi
                            && job.deadline <= window_end + 1e-9
                            && !job.counted_missed
                        {
                            job.counted_missed = true;
                            window_missed += 1;
                        }
                    }
                    if window_due > 0 {
                        let ratio = window_missed as f64 / window_due as f64;
                        // The window immediately after the shed is a
                        // settling window: the pre-shed backlog of
                        // already-late jobs drains through it.
                        let settling = shed_at.is_some_and(|t| window_end <= t + p.window + 1e-9);
                        if shed_at.is_none() {
                            worst_before = worst_before.max(ratio);
                            if ratio >= p.miss_ratio_threshold
                                && self.tasks.iter().any(|t| t.sheddable)
                            {
                                shed_at = Some(window_end);
                                for (i, task) in self.tasks.iter().enumerate() {
                                    if task.sheddable {
                                        tasks_shed.push(task.name.clone());
                                        next_release[i] = f64::INFINITY;
                                    }
                                }
                                let tasks = &self.tasks;
                                ready.retain(|j| {
                                    if tasks[j.task_index].sheddable {
                                        // Dropped, not missed: remove it
                                        // from the release count too.
                                        reports[j.task_index].released -= 1;
                                        false
                                    } else {
                                        true
                                    }
                                });
                                // The interference is gone with the
                                // workload: in-flight work finishes at the
                                // restored IPC.
                                for j in &mut ready {
                                    j.remaining *= speed / p.restored_cpu_speed;
                                }
                                speed = p.restored_cpu_speed;
                                events.push(SchedulerEvent {
                                    at: window_end,
                                    description: format!(
                                        "shed [{}]: {} missed {:.0}% of deadlines in the \
                                         last {:.1} s window (threshold {:.0}%)",
                                        tasks_shed.join(", "),
                                        p.monitor,
                                        ratio * 100.0,
                                        p.window,
                                        p.miss_ratio_threshold * 100.0
                                    ),
                                });
                            }
                        } else if !settling {
                            worst_after = worst_after.max(ratio);
                            if ratio >= p.miss_ratio_threshold {
                                events.push(SchedulerEvent {
                                    at: window_end,
                                    description: format!(
                                        "post-shed breach: {} still missing {:.0}% of \
                                         deadlines after the shed",
                                        p.monitor,
                                        ratio * 100.0
                                    ),
                                });
                            }
                        }
                    }
                    window_due = 0;
                    window_missed = 0;
                    window_end += p.window;
                }
            }

            // Release due jobs.
            for (i, task) in self.tasks.iter().enumerate() {
                while next_release[i] <= now + 1e-12 {
                    let release = next_release[i];
                    ready.push(Job {
                        task_index: i,
                        release,
                        deadline: release + task.period,
                        remaining: task.execution_time / speed,
                        counted_missed: false,
                    });
                    reports[i].released += 1;
                    if Some(i) == monitor_idx {
                        pending_deadlines.push(release + task.period);
                    }
                    next_release[i] += task.period;
                }
            }
            // Time of the next release event (preemption boundary).
            let next_event = next_release.iter().copied().fold(f64::INFINITY, f64::min);
            let slice_end = next_event.min(duration).min(window_end);

            // Run the highest-priority ready job until it finishes or the
            // next release preempts it.
            if let Some(best) = (0..ready.len()).min_by(|&a, &b| {
                let pa = self.tasks[ready[a].task_index].priority;
                let pb = self.tasks[ready[b].task_index].priority;
                pa.cmp(&pb).then(
                    ready[a]
                        .release
                        .partial_cmp(&ready[b].release)
                        .expect("finite release times"),
                )
            }) {
                let available = slice_end - now;
                let run = ready[best].remaining.min(available);
                ready[best].remaining -= run;
                busy_time += run;
                now += run;
                if ready[best].remaining <= 1e-12 {
                    let job = ready.swap_remove(best);
                    let response = now - job.release;
                    let r = &mut reports[job.task_index];
                    r.worst_response = r.worst_response.max(response);
                    r.response_times.record(response);
                    if now <= job.deadline + 1e-9 {
                        r.completed_on_time += 1;
                    } else {
                        r.deadline_misses += 1;
                        if Some(job.task_index) == monitor_idx && !job.counted_missed {
                            window_missed += 1;
                        }
                    }
                }
                if run <= 0.0 {
                    now = slice_end;
                }
            } else {
                now = slice_end;
            }
            if !now.is_finite() {
                break;
            }
        }

        // Unfinished jobs past their deadline are misses too.
        for job in &ready {
            if job.deadline < duration {
                reports[job.task_index].deadline_misses += 1;
            }
        }
        // Close out the final (possibly partial) window for the stats.
        if policy.is_some() {
            let due_final = window_due
                + pending_deadlines
                    .iter()
                    .filter(|d| **d <= duration + 1e-9)
                    .count() as u64;
            let missed_final = window_missed
                + ready
                    .iter()
                    .filter(|j| {
                        Some(j.task_index) == monitor_idx
                            && j.deadline <= duration + 1e-9
                            && !j.counted_missed
                    })
                    .count() as u64;
            if due_final > 0 {
                let ratio = missed_final as f64 / due_final as f64;
                let settling = policy
                    .zip(shed_at)
                    .is_some_and(|(p, t)| duration <= t + p.window + 1e-9);
                if shed_at.is_none() {
                    worst_before = worst_before.max(ratio);
                } else if !settling {
                    worst_after = worst_after.max(ratio);
                }
            }
        }

        ShedOutcome {
            report: SchedulerReport {
                tasks: reports,
                cpu_utilization: (busy_time / duration).min(1.0),
            },
            shed_at,
            tasks_shed,
            worst_window_before: worst_before,
            worst_window_after: worst_after,
            events,
        }
    }
}

/// The paper drone's autopilot task set (ArduCopter-like rate groups):
/// inner-loop at 400 Hz, EKF at 200 Hz, outer-loop navigation at 40 Hz,
/// telemetry at 10 Hz. Execution times reflect an RPi-class core.
pub fn autopilot_task_set() -> Vec<Task> {
    vec![
        Task::new("inner-loop", 1.0 / 400.0, 0.35e-3, 0),
        Task::new("ekf", 1.0 / 200.0, 0.9e-3, 1),
        Task::new("outer-loop", 1.0 / 40.0, 6.0e-3, 2),
        Task::new("telemetry", 1.0 / 10.0, 3.0e-3, 3),
    ]
}

/// A SLAM workload time-shared on the same core: ~70 ms of processing per
/// camera frame at 10 FPS (ORB-SLAM-on-RPi scale). Under Linux CFS the
/// SLAM process competes at the same footing as the autopilot's
/// outer-loop threads, so it gets the outer loop's priority level —
/// only the truly real-time inner loop and EKF sit above it.
pub fn slam_task() -> Task {
    // Sheddable: losing SLAM costs autonomy features, not the airframe.
    Task::new("slam", 0.1, 70e-3, 2).sheddable()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autopilot_alone_meets_all_deadlines() {
        let mut sched = RateScheduler::new(autopilot_task_set());
        let report = sched.simulate(30.0, 1.0);
        assert_eq!(report.total_misses(), 0, "{report}");
        assert!(report.cpu_utilization < 0.6, "{report}");
    }

    #[test]
    fn colocated_slam_causes_outer_loop_misses() {
        // §5.1: adding SLAM on the same core makes the autopilot miss
        // outer-loop deadlines. The SLAM inflation also slows autopilot
        // tasks (IPC drop ≈ 1.7× per Figure 15) — model with cpu_speed.
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let mut sched = RateScheduler::new(tasks);
        let report = sched.simulate(30.0, 1.0 / 1.7);
        let outer = report.task("outer-loop").unwrap();
        let slam = report.task("slam").unwrap();
        assert!(
            outer.deadline_misses > 0 || slam.deadline_misses > 0,
            "expected misses somewhere: {report}"
        );
        // The *inner* loop, being highest priority and tiny, still holds —
        // the paper's reason real drones keep a dedicated controller core.
        let inner = report.task("inner-loop").unwrap();
        assert_eq!(inner.deadline_misses, 0, "{report}");
    }

    #[test]
    fn overload_is_detected() {
        let mut sched = RateScheduler::new(vec![Task::new("hog", 0.01, 0.02, 0)]);
        let report = sched.simulate(1.0, 1.0);
        let hog = report.task("hog").unwrap();
        assert!(hog.deadline_misses > 40, "{report}");
        assert!((report.cpu_utilization - 1.0).abs() < 0.01);
    }

    #[test]
    fn priority_protects_the_critical_task() {
        // Two tasks, combined demand > 1: the high-priority one never
        // misses; the low-priority one starves.
        let mut sched = RateScheduler::new(vec![
            Task::new("critical", 0.01, 0.006, 0),
            Task::new("bulk", 0.05, 0.04, 9),
        ]);
        let report = sched.simulate(5.0, 1.0);
        assert_eq!(
            report.task("critical").unwrap().deadline_misses,
            0,
            "{report}"
        );
        assert!(report.task("bulk").unwrap().deadline_misses > 0, "{report}");
    }

    #[test]
    fn faster_cpu_fixes_misses() {
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let mut slow = RateScheduler::new(tasks.clone());
        let slow_misses = slow.simulate(20.0, 0.5).total_misses();
        let mut fast = RateScheduler::new(tasks);
        let fast_misses = fast.simulate(20.0, 4.0).total_misses();
        assert!(slow_misses > 0);
        assert_eq!(fast_misses, 0);
    }

    #[test]
    fn utilization_accounting() {
        let sched = RateScheduler::new(vec![
            Task::new("a", 0.1, 0.01, 0), // 10 %
            Task::new("b", 0.2, 0.03, 1), // 15 %
        ]);
        assert!((sched.demanded_utilization(1.0) - 0.25).abs() < 1e-12);
        assert!((sched.demanded_utilization(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn worst_response_reported() {
        let mut sched = RateScheduler::new(vec![
            Task::new("hi", 0.01, 0.004, 0),
            Task::new("lo", 0.1, 0.01, 1),
        ]);
        let report = sched.simulate(5.0, 1.0);
        let lo = report.task("lo").unwrap();
        // lo runs only in the gaps left by hi: response > its own wcet.
        assert!(lo.worst_response >= 0.01, "{report}");
        assert_eq!(report.total_misses(), 0);
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut r = TaskReport::empty("x");
        r.released = 10;
        r.completed_on_time = 7;
        r.deadline_misses = 3;
        assert!((r.miss_ratio() - 0.3).abs() < 1e-12);
        // Pinned: a task that never released reports zero, not NaN, and
        // a fresh report has no response-time quantiles.
        let idle = TaskReport::empty("idle");
        assert_eq!(idle.miss_ratio(), 0.0);
        assert_eq!(idle.worst_response, 0.0);
        assert_eq!(idle.response_quantile(0.99), None);
    }

    #[test]
    fn response_histogram_matches_worst_response() {
        let mut sched = RateScheduler::new(vec![
            Task::new("hi", 0.01, 0.004, 0),
            Task::new("lo", 0.1, 0.01, 1),
        ]);
        let report = sched.simulate(5.0, 1.0);
        for t in &report.tasks {
            assert_eq!(
                t.response_times.count(),
                t.completed_on_time + t.deadline_misses
            );
            // p100 of the histogram is the exact worst response.
            assert_eq!(t.response_quantile(1.0), Some(t.worst_response));
            // p50 ≤ p99 ≤ worst.
            let p50 = t.response_quantile(0.5).unwrap();
            let p99 = t.response_quantile(0.99).unwrap();
            assert!(p50 <= p99 && p99 <= t.worst_response, "{report}");
        }
    }

    #[test]
    fn scheduler_report_round_trips_through_json() {
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let mut sched = RateScheduler::new(tasks);
        let mut report = sched.simulate(10.0, 1.0 / 1.7);
        // Include a never-released task to pin the released==0 edge.
        report.tasks.push(TaskReport::empty("never-ran"));
        let text = report.to_json().render();
        let back = SchedulerReport::from_json(&Json::parse(&text).expect("report JSON parses"))
            .expect("report JSON has all fields");
        assert_eq!(back, report);
        assert_eq!(back.task("never-ran").unwrap().miss_ratio(), 0.0);
    }

    #[test]
    fn shed_outcome_logs_the_shed_event() {
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let policy = ShedPolicy::outer_loop_default();
        let mut sched = RateScheduler::new(tasks);
        let outcome = sched.simulate_with_shedding(30.0, 1.0 / 1.7, &policy);
        let shed_at = outcome.shed_at.expect("overload sheds");
        let event = outcome.events.first().expect("shed is logged");
        assert_eq!(event.at, shed_at);
        assert!(event.description.contains("slam"), "{}", event.description);
        // A healthy run logs nothing.
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let calm = RateScheduler::new(tasks).simulate_with_shedding(20.0, 4.0, &policy);
        assert!(calm.events.is_empty(), "{:?}", calm.events);
    }

    #[test]
    fn shedding_slam_restores_the_outer_loop() {
        // §5.1 remedy: the outer loop misses deadlines under co-located
        // SLAM (IPC degraded 1.7×); the shed policy drops SLAM the first
        // window the miss ratio crosses the threshold, and the outer
        // loop's windowed miss ratio falls back under it.
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let policy = ShedPolicy::outer_loop_default();
        let mut sched = RateScheduler::new(tasks);
        let outcome = sched.simulate_with_shedding(30.0, 1.0 / 1.7, &policy);
        assert!(
            outcome.shed_at.is_some(),
            "overload never triggered the shed: {outcome:?}"
        );
        assert_eq!(outcome.tasks_shed, vec!["slam".to_string()]);
        assert!(
            outcome.worst_window_before >= policy.miss_ratio_threshold,
            "shed fired without cause: {outcome:?}"
        );
        assert!(
            outcome.worst_window_after < policy.miss_ratio_threshold,
            "shedding did not restore the outer loop: {outcome:?}"
        );
        // After the shed the outer loop is strictly healthier than the
        // un-shed run over the same horizon.
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let unshed = RateScheduler::new(tasks).simulate(30.0, 1.0 / 1.7);
        let shed_misses = outcome.report.task("outer-loop").unwrap().deadline_misses;
        let unshed_misses = unshed.task("outer-loop").unwrap().deadline_misses;
        assert!(
            shed_misses < unshed_misses,
            "shed {shed_misses} vs unshed {unshed_misses}"
        );
    }

    #[test]
    fn healthy_load_never_sheds() {
        let mut tasks = autopilot_task_set();
        tasks.push(slam_task());
        let mut sched = RateScheduler::new(tasks);
        // Dual-core-class speed: everything fits, SLAM must survive.
        let outcome = sched.simulate_with_shedding(20.0, 4.0, &ShedPolicy::outer_loop_default());
        assert_eq!(outcome.shed_at, None, "{outcome:?}");
        assert!(outcome.tasks_shed.is_empty());
        assert_eq!(outcome.report.total_misses(), 0);
    }

    #[test]
    fn shedding_without_sheddable_tasks_is_inert() {
        // Overloaded, but nothing is marked sheddable: the policy can
        // only watch.
        let mut sched = RateScheduler::new(vec![Task::new("outer-loop", 0.025, 0.06, 2)]);
        let outcome = sched.simulate_with_shedding(5.0, 1.0, &ShedPolicy::outer_loop_default());
        assert_eq!(outcome.shed_at, None);
        assert!(outcome.worst_window_before > 0.0);
    }

    #[test]
    #[should_panic(expected = "monitored task must be in the task set")]
    fn shedding_unknown_monitor_panics() {
        let mut sched = RateScheduler::new(autopilot_task_set());
        let policy = ShedPolicy {
            monitor: "no-such-task".into(),
            window: 1.0,
            miss_ratio_threshold: 0.3,
            restored_cpu_speed: 1.0,
        };
        let _ = sched.simulate_with_shedding(1.0, 1.0, &policy);
    }

    #[test]
    #[should_panic(expected = "task set must not be empty")]
    fn empty_task_set_panics() {
        let _ = RateScheduler::new(vec![]);
    }
}
