//! Waypoint missions and the runner that feeds the outer loop.
//!
//! A mission is a list of items (take-off, waypoints, loiters, land); the
//! runner walks them against the *estimated* state and emits the position
//! setpoints that the paper's Table 1 assigns to outer-loop control.

use drone_control::Setpoint;
use drone_math::Vec3;
use drone_sim::RigidBodyState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One mission element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissionItem {
    /// Climb straight up to `altitude` metres above the start point.
    Takeoff {
        /// Target altitude (m).
        altitude: f64,
    },
    /// Fly to a world position and get within `acceptance_radius`.
    Waypoint {
        /// Target position (m).
        position: Vec3,
        /// Arrival tolerance (m).
        acceptance_radius: f64,
        /// Yaw to hold en route (rad).
        yaw: f64,
    },
    /// Hold the current target for `seconds`.
    Loiter {
        /// Hold duration (s).
        seconds: f64,
    },
    /// Descend and land at the current horizontal position.
    Land,
}

impl fmt::Display for MissionItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissionItem::Takeoff { altitude } => write!(f, "takeoff to {altitude:.1} m"),
            MissionItem::Waypoint { position, .. } => write!(f, "waypoint {position}"),
            MissionItem::Loiter { seconds } => write!(f, "loiter {seconds:.1} s"),
            MissionItem::Land => write!(f, "land"),
        }
    }
}

/// An ordered list of mission items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mission {
    items: Vec<MissionItem>,
}

/// Mission validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MissionError {
    /// Mission contains no items.
    Empty,
    /// First item is not a take-off.
    MissingTakeoff,
    /// A numeric field is non-positive or non-finite.
    InvalidParameter(String),
}

impl fmt::Display for MissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissionError::Empty => f.write_str("mission has no items"),
            MissionError::MissingTakeoff => f.write_str("mission must begin with a takeoff item"),
            MissionError::InvalidParameter(what) => write!(f, "invalid mission parameter: {what}"),
        }
    }
}

impl std::error::Error for MissionError {}

impl Mission {
    /// Builds a validated mission.
    ///
    /// # Errors
    ///
    /// Returns [`MissionError`] when the item list is empty, does not
    /// start with a take-off, or contains non-finite / non-positive
    /// parameters.
    pub fn new(items: Vec<MissionItem>) -> Result<Mission, MissionError> {
        if items.is_empty() {
            return Err(MissionError::Empty);
        }
        if !matches!(items[0], MissionItem::Takeoff { .. }) {
            return Err(MissionError::MissingTakeoff);
        }
        for item in &items {
            match item {
                MissionItem::Takeoff { altitude } => {
                    if !altitude.is_finite() || *altitude <= 0.0 {
                        return Err(MissionError::InvalidParameter(format!(
                            "takeoff altitude {altitude}"
                        )));
                    }
                }
                MissionItem::Waypoint {
                    position,
                    acceptance_radius,
                    yaw,
                } => {
                    if !position.is_finite() || !yaw.is_finite() {
                        return Err(MissionError::InvalidParameter("non-finite waypoint".into()));
                    }
                    if !acceptance_radius.is_finite() || *acceptance_radius <= 0.0 {
                        return Err(MissionError::InvalidParameter(format!(
                            "acceptance radius {acceptance_radius}"
                        )));
                    }
                }
                MissionItem::Loiter { seconds } => {
                    if !seconds.is_finite() || *seconds < 0.0 {
                        return Err(MissionError::InvalidParameter(format!(
                            "loiter duration {seconds}"
                        )));
                    }
                }
                MissionItem::Land => {}
            }
        }
        Ok(Mission { items })
    }

    /// The mission items.
    pub fn items(&self) -> &[MissionItem] {
        &self.items
    }

    /// A square survey pattern at `center` altitude, side length `side`:
    /// take-off, four corners, return, land. The aerial-mapping workload
    /// of the paper's intro.
    pub fn survey_square(center: Vec3, side: f64) -> Mission {
        let h = side / 2.0;
        let alt = center.z;
        let corners = [
            Vec3::new(center.x - h, center.y - h, alt),
            Vec3::new(center.x + h, center.y - h, alt),
            Vec3::new(center.x + h, center.y + h, alt),
            Vec3::new(center.x - h, center.y + h, alt),
        ];
        let mut items = vec![MissionItem::Takeoff { altitude: alt }];
        for c in corners {
            items.push(MissionItem::Waypoint {
                position: c,
                acceptance_radius: 1.0,
                yaw: 0.0,
            });
        }
        items.push(MissionItem::Waypoint {
            position: Vec3::new(center.x, center.y, alt),
            acceptance_radius: 1.0,
            yaw: 0.0,
        });
        items.push(MissionItem::Land);
        Mission::new(items).expect("survey pattern is always valid")
    }

    /// A simple hover test: take-off, loiter, land.
    pub fn hover_test(altitude: f64, seconds: f64) -> Mission {
        Mission::new(vec![
            MissionItem::Takeoff { altitude },
            MissionItem::Loiter { seconds },
            MissionItem::Land,
        ])
        .expect("hover test is always valid")
    }
}

/// Progress state of the running mission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissionProgress {
    /// Executing the item at this index.
    Active {
        /// Index into [`Mission::items`].
        index: usize,
    },
    /// All items complete (vehicle has landed).
    Complete,
}

/// Walks a [`Mission`] against state estimates, emitting setpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionRunner {
    mission: Mission,
    progress: MissionProgress,
    home: Vec3,
    loiter_elapsed: f64,
    loiter_anchor: Option<Vec3>,
    land_anchor: Option<Vec3>,
}

impl MissionRunner {
    /// Creates a runner with the vehicle's current (home) position.
    pub fn new(mission: Mission, home: Vec3) -> MissionRunner {
        MissionRunner {
            mission,
            progress: MissionProgress::Active { index: 0 },
            home,
            loiter_elapsed: 0.0,
            loiter_anchor: None,
            land_anchor: None,
        }
    }

    /// Current progress.
    pub fn progress(&self) -> MissionProgress {
        self.progress
    }

    /// `true` once every item has completed.
    pub fn is_complete(&self) -> bool {
        matches!(self.progress, MissionProgress::Complete)
    }

    /// Currently active item, if any.
    pub fn current_item(&self) -> Option<&MissionItem> {
        match self.progress {
            MissionProgress::Active { index } => self.mission.items().get(index),
            MissionProgress::Complete => None,
        }
    }

    fn advance(&mut self) {
        if let MissionProgress::Active { index } = self.progress {
            self.loiter_elapsed = 0.0;
            self.loiter_anchor = None;
            self.land_anchor = None;
            if index + 1 >= self.mission.items().len() {
                self.progress = MissionProgress::Complete;
            } else {
                self.progress = MissionProgress::Active { index: index + 1 };
            }
        }
    }

    /// Produces the setpoint for this tick, advancing items as their
    /// completion criteria are met against the estimated state.
    ///
    /// Returns `None` once the mission is complete (vehicle landed).
    pub fn update(&mut self, estimate: &RigidBodyState, dt: f64) -> Option<Setpoint> {
        let MissionProgress::Active { index } = self.progress else {
            return None;
        };
        let item = self.mission.items()[index];
        match item {
            MissionItem::Takeoff { altitude } => {
                let target = Vec3::new(self.home.x, self.home.y, self.home.z + altitude);
                if (estimate.position.z - target.z).abs() < 0.5 {
                    self.advance();
                }
                Some(Setpoint::position(target, 0.0))
            }
            MissionItem::Waypoint {
                position,
                acceptance_radius,
                yaw,
            } => {
                if (estimate.position - position).norm() < acceptance_radius {
                    self.advance();
                }
                Some(Setpoint::position(position, yaw))
            }
            MissionItem::Loiter { seconds } => {
                let anchor = *self.loiter_anchor.get_or_insert(estimate.position);
                self.loiter_elapsed += dt;
                if self.loiter_elapsed >= seconds {
                    self.advance();
                }
                Some(Setpoint::position(anchor, 0.0))
            }
            MissionItem::Land => {
                let anchor = *self.land_anchor.get_or_insert(estimate.position);
                if estimate.position.z < 0.15 && estimate.velocity.norm() < 0.5 {
                    self.advance();
                    return None;
                }
                // Descend at ~1 m/s by dragging the target below.
                let target = Vec3::new(anchor.x, anchor.y, (estimate.position.z - 1.5).max(-1.0));
                Some(Setpoint::position(target, 0.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rules() {
        assert_eq!(Mission::new(vec![]).unwrap_err(), MissionError::Empty);
        assert_eq!(
            Mission::new(vec![MissionItem::Land]).unwrap_err(),
            MissionError::MissingTakeoff
        );
        assert!(matches!(
            Mission::new(vec![MissionItem::Takeoff { altitude: -1.0 }]).unwrap_err(),
            MissionError::InvalidParameter(_)
        ));
        assert!(matches!(
            Mission::new(vec![
                MissionItem::Takeoff { altitude: 5.0 },
                MissionItem::Waypoint {
                    position: Vec3::new(f64::NAN, 0.0, 5.0),
                    acceptance_radius: 1.0,
                    yaw: 0.0
                }
            ])
            .unwrap_err(),
            MissionError::InvalidParameter(_)
        ));
    }

    #[test]
    fn survey_square_structure() {
        let m = Mission::survey_square(Vec3::new(0.0, 0.0, 15.0), 30.0);
        assert_eq!(m.items().len(), 7);
        assert!(matches!(m.items()[0], MissionItem::Takeoff { .. }));
        assert!(matches!(m.items()[6], MissionItem::Land));
    }

    #[test]
    fn runner_walks_takeoff_then_waypoint() {
        let mission = Mission::new(vec![
            MissionItem::Takeoff { altitude: 10.0 },
            MissionItem::Waypoint {
                position: Vec3::new(5.0, 0.0, 10.0),
                acceptance_radius: 1.0,
                yaw: 0.0,
            },
            MissionItem::Land,
        ])
        .unwrap();
        let mut runner = MissionRunner::new(mission, Vec3::ZERO);

        // On the ground: setpoint is the takeoff column.
        let mut state = RigidBodyState::at_rest();
        let sp = runner.update(&state, 0.02).unwrap();
        assert_eq!(sp, Setpoint::position(Vec3::new(0.0, 0.0, 10.0), 0.0));

        // Reached altitude → advances to the waypoint.
        state.position.z = 9.8;
        let _ = runner.update(&state, 0.02).unwrap();
        let sp = runner.update(&state, 0.02).unwrap();
        assert_eq!(sp, Setpoint::position(Vec3::new(5.0, 0.0, 10.0), 0.0));

        // Reached waypoint → advances to land.
        state.position = Vec3::new(4.5, 0.0, 10.0);
        let _ = runner.update(&state, 0.02);
        assert!(matches!(runner.current_item(), Some(MissionItem::Land)));
    }

    #[test]
    fn loiter_times_out() {
        let mission = Mission::new(vec![
            MissionItem::Takeoff { altitude: 5.0 },
            MissionItem::Loiter { seconds: 1.0 },
            MissionItem::Land,
        ])
        .unwrap();
        let mut runner = MissionRunner::new(mission, Vec3::ZERO);
        let mut state = RigidBodyState::at_altitude(5.0);
        let _ = runner.update(&state, 0.02); // completes takeoff
        state.position.x = 0.3; // drifting while loitering
        for _ in 0..49 {
            let sp = runner.update(&state, 0.02).unwrap();
            // Loiter anchors at the first-seen position.
            assert_eq!(sp, Setpoint::position(Vec3::new(0.3, 0.0, 5.0), 0.0));
        }
        let _ = runner.update(&state, 0.02);
        assert!(matches!(runner.current_item(), Some(MissionItem::Land)));
    }

    #[test]
    fn landing_completes_on_touchdown() {
        let mission = Mission::hover_test(5.0, 0.0);
        let mut runner = MissionRunner::new(mission, Vec3::ZERO);
        let mut state = RigidBodyState::at_altitude(5.0);
        let _ = runner.update(&state, 0.02); // takeoff done
        let _ = runner.update(&state, 0.02); // loiter(0) done
                                             // Descending…
        let sp = runner.update(&state, 0.02).unwrap();
        match sp {
            Setpoint::Position { position, .. } => assert!(position.z < 5.0),
            other => panic!("unexpected setpoint {other:?}"),
        }
        // Touchdown.
        state.position = Vec3::new(0.0, 0.0, 0.05);
        state.velocity = Vec3::ZERO;
        assert!(runner.update(&state, 0.02).is_none());
        assert!(runner.is_complete());
        assert!(runner.update(&state, 0.02).is_none(), "stays complete");
    }

    #[test]
    fn display_items() {
        assert_eq!(
            MissionItem::Takeoff { altitude: 10.0 }.to_string(),
            "takeoff to 10.0 m"
        );
        assert_eq!(MissionItem::Land.to_string(), "land");
    }
}
