//! Ground-station link supervision.
//!
//! Real autopilots declare *link loss* when ground-station heartbeats
//! stop arriving for a configured window, trigger an RC/GCS failsafe,
//! and keep trying to re-establish the link with exponentially backed-off
//! reconnect attempts. This module is that watchdog, decoupled from the
//! transport: the autopilot feeds it heartbeat arrivals and ticks it at
//! the firmware rate.

use serde::{Deserialize, Serialize};

/// Seconds without a heartbeat before the link is declared lost.
pub const DEFAULT_LINK_TIMEOUT: f64 = 2.0;

/// First reconnect attempt fires this long after link loss.
pub const RECONNECT_BACKOFF_INITIAL: f64 = 0.5;

/// Reconnect backoff doubles up to this ceiling.
pub const RECONNECT_BACKOFF_MAX: f64 = 8.0;

/// What the monitor observed during one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkEvent {
    /// The heartbeat timeout just expired: the link is now lost.
    Lost,
    /// A reconnect attempt is due (the transport should try to
    /// re-establish; the next attempt waits twice as long, bounded).
    ReconnectAttempt,
    /// A heartbeat arrived while the link was down: recovered.
    Recovered,
}

/// Heartbeat watchdog with bounded-exponential reconnect backoff.
///
/// The monitor starts in a *never connected* state: until the first
/// heartbeat arrives there is no link to lose, so no failsafe fires on
/// the bench or with no ground station attached.
///
/// # Example
///
/// ```
/// use drone_firmware::link::{LinkMonitor, LinkEvent};
/// let mut link = LinkMonitor::new(2.0);
/// link.heartbeat();
/// assert!(link.is_connected());
/// let mut events = Vec::new();
/// for _ in 0..300 {
///     events.extend(link.tick(0.01)); // 3 s of silence
/// }
/// assert!(events.contains(&LinkEvent::Lost));
/// assert!(!link.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkMonitor {
    timeout: f64,
    /// Seconds since the last heartbeat.
    silence: f64,
    /// A heartbeat has been seen at least once.
    ever_connected: bool,
    connected: bool,
    /// Seconds until the next reconnect attempt (while disconnected).
    next_attempt_in: f64,
    /// Wait before the attempt after next, seconds.
    backoff: f64,
    /// Link losses observed.
    drops: u64,
    /// Reconnect attempts issued since the last loss.
    attempts_this_outage: u32,
    /// Reconnect attempts issued in total.
    attempts_total: u64,
}

impl LinkMonitor {
    /// Creates a monitor with the given heartbeat timeout, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is not positive.
    pub fn new(timeout: f64) -> LinkMonitor {
        assert!(timeout > 0.0, "link timeout must be positive");
        LinkMonitor {
            timeout,
            silence: 0.0,
            ever_connected: false,
            connected: false,
            next_attempt_in: 0.0,
            backoff: RECONNECT_BACKOFF_INITIAL,
            drops: 0,
            attempts_this_outage: 0,
            attempts_total: 0,
        }
    }

    /// Whether the link is currently up.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Whether a ground station has ever been heard. Link failsafe is
    /// meaningless before this.
    pub fn ever_connected(&self) -> bool {
        self.ever_connected
    }

    /// Link losses observed since boot.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Total reconnect attempts issued since boot.
    pub fn reconnect_attempts(&self) -> u64 {
        self.attempts_total
    }

    /// Seconds since the last heartbeat.
    pub fn silence(&self) -> f64 {
        self.silence
    }

    /// Records a ground-station heartbeat arrival. Returns
    /// [`LinkEvent::Recovered`] when this ends an outage.
    pub fn heartbeat(&mut self) -> Option<LinkEvent> {
        self.silence = 0.0;
        self.ever_connected = true;
        if self.connected {
            return None;
        }
        self.connected = true;
        self.backoff = RECONNECT_BACKOFF_INITIAL;
        self.attempts_this_outage = 0;
        Some(LinkEvent::Recovered)
    }

    /// Advances the watchdog by `dt` seconds, returning any events.
    pub fn tick(&mut self, dt: f64) -> Vec<LinkEvent> {
        let mut events = Vec::new();
        self.silence += dt;
        if self.connected && self.silence >= self.timeout {
            self.connected = false;
            self.drops += 1;
            self.next_attempt_in = self.backoff;
            events.push(LinkEvent::Lost);
        }
        if !self.connected && self.ever_connected {
            self.next_attempt_in -= dt;
            if self.next_attempt_in <= 0.0 {
                self.attempts_this_outage += 1;
                self.attempts_total += 1;
                self.backoff = (self.backoff * 2.0).min(RECONNECT_BACKOFF_MAX);
                self.next_attempt_in = self.backoff;
                events.push(LinkEvent::ReconnectAttempt);
            }
        }
        events
    }
}

impl Default for LinkMonitor {
    fn default() -> Self {
        LinkMonitor::new(DEFAULT_LINK_TIMEOUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tick for `seconds`, collecting events.
    fn run(link: &mut LinkMonitor, seconds: f64) -> Vec<LinkEvent> {
        let dt = 0.01;
        let mut events = Vec::new();
        for _ in 0..(seconds / dt).round() as usize {
            events.extend(link.tick(dt));
        }
        events
    }

    #[test]
    fn never_connected_never_fails() {
        let mut link = LinkMonitor::default();
        let events = run(&mut link, 60.0);
        assert!(events.is_empty(), "no GCS was ever attached: {events:?}");
        assert!(!link.is_connected());
        assert_eq!(link.drops(), 0);
    }

    #[test]
    fn heartbeats_keep_the_link_up() {
        let mut link = LinkMonitor::new(2.0);
        link.heartbeat();
        for _ in 0..100 {
            assert!(run(&mut link, 1.0).is_empty());
            link.heartbeat(); // 1 Hz GCS heartbeat, well inside timeout
        }
        assert!(link.is_connected());
        assert_eq!(link.drops(), 0);
    }

    #[test]
    fn silence_drops_the_link_after_the_timeout() {
        let mut link = LinkMonitor::new(2.0);
        link.heartbeat();
        let events = run(&mut link, 1.9);
        assert!(events.is_empty(), "still inside the timeout: {events:?}");
        let events = run(&mut link, 0.2);
        assert_eq!(events.first(), Some(&LinkEvent::Lost));
        assert!(!link.is_connected());
        assert_eq!(link.drops(), 1);
    }

    #[test]
    fn reconnect_backoff_doubles_and_saturates() {
        let mut link = LinkMonitor::new(1.0);
        link.heartbeat();
        let mut times = Vec::new();
        let dt = 0.01;
        let mut t = 0.0;
        for _ in 0..(60.0 / dt) as usize {
            t += dt;
            for e in link.tick(dt) {
                if e == LinkEvent::ReconnectAttempt {
                    times.push(t);
                }
            }
        }
        // Loss at 1 s; attempts at +0.5, then gaps 1, 2, 4, 8, 8, 8…
        assert!(times.len() >= 6, "attempts: {times:?}");
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        for (i, expect) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            assert!(
                (gaps[i] - expect).abs() < 0.03,
                "gap {i} = {} ≠ {expect}",
                gaps[i]
            );
        }
        // Saturation: every later gap pins at the ceiling.
        for g in &gaps[4..] {
            assert!(
                (g - RECONNECT_BACKOFF_MAX).abs() < 0.03,
                "saturated gap {g}"
            );
        }
        assert_eq!(link.reconnect_attempts(), times.len() as u64);
    }

    #[test]
    fn recovery_resets_the_backoff() {
        let mut link = LinkMonitor::new(1.0);
        link.heartbeat();
        run(&mut link, 10.0); // lose the link, burn through backoff
        assert!(!link.is_connected());
        assert_eq!(link.heartbeat(), Some(LinkEvent::Recovered));
        assert!(link.is_connected());
        // Second outage starts from the initial backoff again.
        let mut times = Vec::new();
        let dt = 0.01;
        let mut t = 0.0;
        for _ in 0..(3.0 / dt) as usize {
            t += dt;
            for e in link.tick(dt) {
                if e == LinkEvent::ReconnectAttempt {
                    times.push(t);
                }
            }
        }
        // Loss at 1 s, first attempt 0.5 s later.
        assert!(
            (times[0] - 1.5).abs() < 0.03,
            "first attempt at {}",
            times[0]
        );
    }

    #[test]
    #[should_panic(expected = "link timeout must be positive")]
    fn zero_timeout_panics() {
        let _ = LinkMonitor::new(0.0);
    }
}
