//! Autopilot firmware substrate (paper §4's software stack, rebuilt).
//!
//! The paper's open-source drone runs ArduCopter on a Navio2+RPi with a
//! MAVLink link to a ground station and a real-time-patched Linux kernel.
//! This crate rebuilds the pieces of that stack the experiments need:
//!
//! * [`mode`] — the flight-mode state machine with validated transitions.
//! * [`mission`] — waypoint missions and the runner that turns them into
//!   outer-loop [`drone_control::Setpoint`]s.
//! * [`mavlink`] — a MAVLink-flavoured framed telemetry protocol with
//!   X25 checksums and a robust stream parser.
//! * [`gcs`] — the ground-station counterpart: mission-upload handshake,
//!   command issuing, vehicle-state tracking.
//! * [`link`] — the ground-station link watchdog: heartbeat timeout,
//!   bounded-exponential reconnect backoff, feeding the link-loss
//!   failsafe.
//! * [`scheduler`] — a preemptive rate-group scheduler with deadline
//!   accounting: the instrument behind the paper's §5.1 observation that
//!   co-locating SLAM with the autopilot makes outer-loop deadlines slip.
//! * [`autopilot`] — the glue: estimator + mode machine + mission runner
//!   + control cascade, stepped like firmware.
//!
//! # Example
//!
//! ```
//! use drone_firmware::{Autopilot, Mission};
//! use drone_sim::QuadcopterParams;
//! use drone_math::Vec3;
//!
//! let params = QuadcopterParams::default_450mm();
//! let mut ap = Autopilot::new(&params);
//! ap.upload_mission(Mission::survey_square(Vec3::new(0.0, 0.0, 10.0), 20.0)).unwrap();
//! assert!(ap.arm().is_ok());
//! ```

pub mod autopilot;
pub mod gcs;
pub mod link;
pub mod mavlink;
pub mod mission;
pub mod mode;
pub mod scheduler;

pub use autopilot::{Autopilot, TelemetryRecord};
pub use gcs::{GroundStation, MissionReceiver};
pub use link::{LinkEvent, LinkMonitor};
pub use mavlink::{Message, StreamParser};
pub use mission::{Mission, MissionItem, MissionRunner};
pub use mode::FlightMode;
pub use scheduler::{
    RateScheduler, SchedulerEvent, SchedulerReport, ShedOutcome, ShedPolicy, Task, TaskReport,
};
