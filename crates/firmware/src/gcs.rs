//! Ground-station side of the MAVLink link, plus the vehicle-side
//! mission-upload receiver — the paper's DroneKit/MissionPlanner role:
//! "connect to the drone, issue flight commands, and monitor the drone"
//! (§4), including reconfiguring the mission over the link.
//!
//! The mission upload follows the MAVLink handshake: the GCS announces
//! `MISSION_COUNT`, the vehicle requests each item in order with
//! `MISSION_REQUEST`, and the vehicle closes with `MISSION_ACK`.

use crate::mavlink::Message;
use crate::mission::{Mission, MissionItem};
use drone_math::Vec3;
use serde::{Deserialize, Serialize};

/// `MAV_CMD_COMPONENT_ARM_DISARM`-style opcode used by [`GroundStation::arm_command`].
pub const CMD_ARM: u16 = 400;

/// Wire encoding of one mission item.
fn encode_item(seq: u16, item: &MissionItem) -> Message {
    match *item {
        MissionItem::Takeoff { altitude } => Message::MissionItem {
            seq,
            kind: 0,
            x: 0.0,
            y: 0.0,
            z: altitude as f32,
            param: 0.0,
        },
        // Yaw is not carried over the wire (the reference autopilot's
        // NAV_WAYPOINT leaves yaw to the vehicle as well).
        MissionItem::Waypoint {
            position,
            acceptance_radius,
            yaw: _,
        } => Message::MissionItem {
            seq,
            kind: 1,
            x: position.x as f32,
            y: position.y as f32,
            z: position.z as f32,
            param: acceptance_radius as f32,
        },
        MissionItem::Loiter { seconds } => Message::MissionItem {
            seq,
            kind: 2,
            x: 0.0,
            y: 0.0,
            z: 0.0,
            param: seconds as f32,
        },
        MissionItem::Land => Message::MissionItem {
            seq,
            kind: 3,
            x: 0.0,
            y: 0.0,
            z: 0.0,
            param: 0.0,
        },
    }
}

/// Decodes a wire mission item; `None` for an unknown kind.
fn decode_item(kind: u8, x: f32, y: f32, z: f32, param: f32) -> Option<MissionItem> {
    match kind {
        0 => Some(MissionItem::Takeoff {
            altitude: f64::from(z),
        }),
        1 => Some(MissionItem::Waypoint {
            position: Vec3::new(f64::from(x), f64::from(y), f64::from(z)),
            acceptance_radius: f64::from(param).max(0.1),
            yaw: 0.0,
        }),
        2 => Some(MissionItem::Loiter {
            seconds: f64::from(param),
        }),
        3 => Some(MissionItem::Land),
        _ => None,
    }
}

/// Vehicle-side mission-upload receiver state machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MissionReceiver {
    expecting: Option<(u16, Vec<MissionItem>)>,
    received: Option<Mission>,
}

impl MissionReceiver {
    /// Creates an idle receiver.
    pub fn new() -> MissionReceiver {
        MissionReceiver::default()
    }

    /// Takes a completed mission out of the receiver, if one landed.
    pub fn take_mission(&mut self) -> Option<Mission> {
        self.received.take()
    }

    /// Processes one incoming message, returning any replies.
    pub fn handle(&mut self, msg: &Message) -> Vec<Message> {
        match msg {
            Message::MissionCount { count } => {
                if *count == 0 {
                    self.expecting = None;
                    return vec![Message::MissionAck { result: 1 }];
                }
                self.expecting = Some((*count, Vec::new()));
                vec![Message::MissionRequest { seq: 0 }]
            }
            Message::MissionItem {
                seq,
                kind,
                x,
                y,
                z,
                param,
            } => {
                let Some((count, items)) = &mut self.expecting else {
                    return vec![Message::MissionAck { result: 3 }]; // unsolicited
                };
                if *seq as usize != items.len() {
                    // Out-of-order: re-request what we actually need
                    // (lossy radios re-send; the protocol is idempotent).
                    return vec![Message::MissionRequest {
                        seq: items.len() as u16,
                    }];
                }
                match decode_item(*kind, *x, *y, *z, *param) {
                    Some(item) => items.push(item),
                    None => {
                        self.expecting = None;
                        return vec![Message::MissionAck { result: 2 }]; // bad item
                    }
                }
                if items.len() < *count as usize {
                    vec![Message::MissionRequest {
                        seq: items.len() as u16,
                    }]
                } else {
                    let (_, items) = self.expecting.take().expect("in upload");
                    match Mission::new(items) {
                        Ok(mission) => {
                            self.received = Some(mission);
                            vec![Message::MissionAck { result: 0 }]
                        }
                        Err(_) => vec![Message::MissionAck { result: 2 }],
                    }
                }
            }
            _ => Vec::new(),
        }
    }
}

/// Last-seen vehicle state assembled from the telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleSnapshot {
    /// Position, if a position message has been seen.
    pub position: Option<Vec3>,
    /// Battery percentage, if seen.
    pub battery_pct: Option<u8>,
    /// Last heartbeat mode ordinal.
    pub mode: Option<u8>,
    /// Armed flag from the last heartbeat.
    pub armed: bool,
}

/// The ground station: uploads missions, issues commands, tracks state.
///
/// # Example
///
/// ```
/// use drone_firmware::gcs::{GroundStation, MissionReceiver};
/// use drone_firmware::Mission;
/// use drone_math::Vec3;
///
/// let mut gcs = GroundStation::new();
/// let mut vehicle = MissionReceiver::new();
/// // Pump the handshake until the ack arrives.
/// let mut inbox = vec![gcs.begin_mission_upload(Mission::hover_test(5.0, 2.0))];
/// for _ in 0..32 {
///     let mut next = Vec::new();
///     for m in &inbox {
///         next.extend(vehicle.handle(m));
///     }
///     inbox.clear();
///     for m in &next {
///         inbox.extend(gcs.handle(m));
///     }
///     if gcs.upload_result().is_some() { break; }
/// }
/// assert_eq!(gcs.upload_result(), Some(0));
/// assert!(vehicle.take_mission().is_some());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundStation {
    uploading: Option<Vec<MissionItem>>,
    upload_result: Option<u8>,
    vehicle: VehicleSnapshot,
}

impl GroundStation {
    /// Creates a ground station with no link state.
    pub fn new() -> GroundStation {
        GroundStation::default()
    }

    /// Starts a mission upload; returns the `MISSION_COUNT` to send.
    pub fn begin_mission_upload(&mut self, mission: Mission) -> Message {
        let items = mission.items().to_vec();
        let count = items.len() as u16;
        self.uploading = Some(items);
        self.upload_result = None;
        Message::MissionCount { count }
    }

    /// The final `MISSION_ACK` result (0 = accepted), once received.
    pub fn upload_result(&self) -> Option<u8> {
        self.upload_result
    }

    /// The arm command message.
    pub fn arm_command(&self) -> Message {
        Message::CommandLong {
            command: CMD_ARM,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        }
    }

    /// Latest vehicle state snapshot from telemetry.
    pub fn vehicle(&self) -> VehicleSnapshot {
        self.vehicle
    }

    /// Processes one message from the vehicle, returning replies.
    pub fn handle(&mut self, msg: &Message) -> Vec<Message> {
        match msg {
            Message::MissionRequest { seq } => {
                let Some(items) = &self.uploading else {
                    return Vec::new();
                };
                match items.get(*seq as usize) {
                    Some(item) => vec![encode_item(*seq, item)],
                    None => Vec::new(),
                }
            }
            Message::MissionAck { result } => {
                self.upload_result = Some(*result);
                self.uploading = None;
                Vec::new()
            }
            Message::Heartbeat { mode, armed } => {
                self.vehicle.mode = Some(*mode);
                self.vehicle.armed = *armed;
                Vec::new()
            }
            Message::Position { position, .. } => {
                self.vehicle.position = Some(Vec3::new(
                    f64::from(position[0]),
                    f64::from(position[1]),
                    f64::from(position[2]),
                ));
                Vec::new()
            }
            Message::BatteryStatus { remaining_pct, .. } => {
                self.vehicle.battery_pct = Some(*remaining_pct);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pump messages between GCS and receiver until quiescent.
    fn pump(gcs: &mut GroundStation, rx: &mut MissionReceiver, first: Message) -> usize {
        let mut to_vehicle = vec![first];
        let mut rounds = 0;
        while !to_vehicle.is_empty() && rounds < 64 {
            rounds += 1;
            let mut to_gcs = Vec::new();
            for m in &to_vehicle {
                to_gcs.extend(rx.handle(m));
            }
            to_vehicle.clear();
            for m in &to_gcs {
                to_vehicle.extend(gcs.handle(m));
            }
        }
        rounds
    }

    #[test]
    fn full_upload_handshake() {
        let mut gcs = GroundStation::new();
        let mut rx = MissionReceiver::new();
        let mission = Mission::survey_square(Vec3::new(0.0, 0.0, 12.0), 16.0);
        let n = mission.items().len();
        let first = gcs.begin_mission_upload(mission);
        pump(&mut gcs, &mut rx, first);
        assert_eq!(gcs.upload_result(), Some(0));
        let received = rx.take_mission().expect("mission landed");
        assert_eq!(received.items().len(), n);
        assert!(matches!(received.items()[0], MissionItem::Takeoff { .. }));
        assert!(matches!(received.items()[n - 1], MissionItem::Land));
    }

    #[test]
    fn waypoints_roundtrip_with_tolerable_precision() {
        let mut gcs = GroundStation::new();
        let mut rx = MissionReceiver::new();
        let mission = Mission::new(vec![
            MissionItem::Takeoff { altitude: 12.5 },
            MissionItem::Waypoint {
                position: Vec3::new(10.25, -3.5, 12.5),
                acceptance_radius: 1.5,
                yaw: 0.0,
            },
            MissionItem::Land,
        ])
        .unwrap();
        let first = gcs.begin_mission_upload(mission);
        pump(&mut gcs, &mut rx, first);
        let received = rx.take_mission().unwrap();
        match received.items()[1] {
            MissionItem::Waypoint {
                position,
                acceptance_radius,
                ..
            } => {
                assert!((position - Vec3::new(10.25, -3.5, 12.5)).norm() < 1e-3);
                assert!((acceptance_radius - 1.5).abs() < 0.1);
            }
            ref other => panic!("wrong item {other:?}"),
        }
    }

    #[test]
    fn empty_count_is_rejected() {
        let mut rx = MissionReceiver::new();
        let replies = rx.handle(&Message::MissionCount { count: 0 });
        assert_eq!(replies, vec![Message::MissionAck { result: 1 }]);
        assert!(rx.take_mission().is_none());
    }

    #[test]
    fn unsolicited_item_is_rejected() {
        let mut rx = MissionReceiver::new();
        let replies = rx.handle(&Message::MissionItem {
            seq: 0,
            kind: 0,
            x: 0.0,
            y: 0.0,
            z: 5.0,
            param: 0.0,
        });
        assert_eq!(replies, vec![Message::MissionAck { result: 3 }]);
    }

    #[test]
    fn duplicate_items_are_rerequested_not_fatal() {
        // A lossy radio re-delivers item 0; the receiver re-requests the
        // one it needs and the upload still completes.
        let mut gcs = GroundStation::new();
        let mut rx = MissionReceiver::new();
        let mission = Mission::hover_test(5.0, 1.0);
        let first = gcs.begin_mission_upload(mission);
        let mut replies = rx.handle(&first);
        // Deliver item 0 twice.
        let item0 = gcs.handle(&replies.pop().unwrap()).pop().unwrap();
        let _ = rx.handle(&item0);
        let re_request = rx.handle(&item0);
        assert_eq!(re_request, vec![Message::MissionRequest { seq: 1 }]);
        // Finish normally.
        let mut to_vehicle: Vec<Message> = re_request.iter().flat_map(|m| gcs.handle(m)).collect();
        for _ in 0..16 {
            let mut to_gcs = Vec::new();
            for m in &to_vehicle {
                to_gcs.extend(rx.handle(m));
            }
            to_vehicle.clear();
            for m in &to_gcs {
                to_vehicle.extend(gcs.handle(m));
            }
        }
        assert_eq!(gcs.upload_result(), Some(0));
    }

    #[test]
    fn invalid_mission_shape_is_refused() {
        // A mission that does not start with takeoff fails validation on
        // the vehicle and acks nonzero.
        let mut rx = MissionReceiver::new();
        let mut replies = rx.handle(&Message::MissionCount { count: 1 });
        assert_eq!(replies.pop(), Some(Message::MissionRequest { seq: 0 }));
        let ack = rx.handle(&Message::MissionItem {
            seq: 0,
            kind: 3, // land only
            x: 0.0,
            y: 0.0,
            z: 0.0,
            param: 0.0,
        });
        assert_eq!(ack, vec![Message::MissionAck { result: 2 }]);
        assert!(rx.take_mission().is_none());
    }

    #[test]
    fn telemetry_updates_the_snapshot() {
        let mut gcs = GroundStation::new();
        gcs.handle(&Message::Heartbeat {
            mode: 3,
            armed: true,
        });
        gcs.handle(&Message::Position {
            time_ms: 1,
            position: [1.0, 2.0, 3.0],
            velocity: [0.0; 3],
        });
        gcs.handle(&Message::BatteryStatus {
            voltage_mv: 11_100,
            remaining_pct: 72,
        });
        let v = gcs.vehicle();
        assert!(v.armed);
        assert_eq!(v.mode, Some(3));
        assert_eq!(v.battery_pct, Some(72));
        assert!((v.position.unwrap() - Vec3::new(1.0, 2.0, 3.0)).norm() < 1e-6);
    }

    #[test]
    fn arm_command_shape() {
        let gcs = GroundStation::new();
        match gcs.arm_command() {
            Message::CommandLong { command, params } => {
                assert_eq!(command, CMD_ARM);
                assert_eq!(params[0], 1.0);
            }
            other => panic!("wrong message {other}"),
        }
    }
}
