//! Flight-mode state machine.
//!
//! Mirrors the mode discipline of real autopilots: you cannot jump from
//! `Disarmed` to `Mission`; take-off must complete before waypoints; any
//! armed mode may fall into `Failsafe`, which lands.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Autopilot flight mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlightMode {
    /// Motors off, on the ground.
    Disarmed,
    /// Motors armed, waiting on the ground.
    Armed,
    /// Climbing to the mission's take-off altitude.
    Takeoff,
    /// Executing mission waypoints.
    Mission,
    /// Holding the current position.
    Hold,
    /// Descending to land at the current horizontal position.
    Land,
    /// Battery/link failsafe: immediate landing.
    Failsafe,
}

impl FlightMode {
    /// Whether the motors may spin in this mode.
    pub fn is_armed(self) -> bool {
        !matches!(self, FlightMode::Disarmed)
    }

    /// Whether the vehicle is expected to be airborne.
    pub fn is_flying(self) -> bool {
        matches!(
            self,
            FlightMode::Takeoff
                | FlightMode::Mission
                | FlightMode::Hold
                | FlightMode::Land
                | FlightMode::Failsafe
        )
    }

    /// Whether `self → to` is a legal transition.
    pub fn can_transition_to(self, to: FlightMode) -> bool {
        use FlightMode::*;
        match (self, to) {
            // No self loops.
            (a, b) if a == b => false,
            // Anything armed can failsafe or land.
            (a, Failsafe) | (a, Land) if a.is_flying() => true,
            (Disarmed, Armed) => true,
            (Armed, Takeoff) => true,
            (Armed, Disarmed) => true,
            (Takeoff, Mission) | (Takeoff, Hold) => true,
            (Mission, Hold) | (Hold, Mission) => true,
            (Land, Disarmed) | (Failsafe, Disarmed) => true,
            _ => false,
        }
    }
}

impl fmt::Display for FlightMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlightMode::Disarmed => "disarmed",
            FlightMode::Armed => "armed",
            FlightMode::Takeoff => "takeoff",
            FlightMode::Mission => "mission",
            FlightMode::Hold => "hold",
            FlightMode::Land => "land",
            FlightMode::Failsafe => "failsafe",
        };
        f.write_str(s)
    }
}

/// Error for an illegal mode transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// Mode the machine was in.
    pub from: FlightMode,
    /// Mode that was requested.
    pub to: FlightMode,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal flight-mode transition {} -> {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for TransitionError {}

/// A mode holder that enforces legal transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeMachine {
    mode: FlightMode,
}

impl ModeMachine {
    /// Starts disarmed.
    pub fn new() -> ModeMachine {
        ModeMachine {
            mode: FlightMode::Disarmed,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> FlightMode {
        self.mode
    }

    /// Attempts a transition.
    ///
    /// # Errors
    ///
    /// Returns [`TransitionError`] when the transition is not legal.
    pub fn transition(&mut self, to: FlightMode) -> Result<(), TransitionError> {
        if self.mode.can_transition_to(to) {
            self.mode = to;
            Ok(())
        } else {
            Err(TransitionError {
                from: self.mode,
                to,
            })
        }
    }
}

impl Default for ModeMachine {
    fn default() -> Self {
        ModeMachine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FlightMode::*;

    #[test]
    fn nominal_mission_path() {
        let mut m = ModeMachine::new();
        for mode in [Armed, Takeoff, Mission, Land, Disarmed] {
            m.transition(mode).unwrap_or_else(|e| panic!("{e}"));
        }
        assert_eq!(m.mode(), Disarmed);
    }

    #[test]
    fn cannot_skip_takeoff() {
        let mut m = ModeMachine::new();
        m.transition(Armed).unwrap();
        let err = m.transition(Mission).unwrap_err();
        assert_eq!(err.from, Armed);
        assert_eq!(err.to, Mission);
        assert!(err.to_string().contains("illegal"));
    }

    #[test]
    fn cannot_fly_while_disarmed() {
        let mut m = ModeMachine::new();
        assert!(m.transition(Takeoff).is_err());
        assert!(m.transition(Land).is_err());
        assert!(m.transition(Failsafe).is_err());
    }

    #[test]
    fn failsafe_from_any_flying_mode() {
        for start in [Takeoff, Mission, Hold, Land] {
            assert!(start.can_transition_to(Failsafe), "{start}");
        }
        assert!(!Disarmed.can_transition_to(Failsafe));
        assert!(!Armed.can_transition_to(Failsafe));
    }

    #[test]
    fn hold_and_resume() {
        let mut m = ModeMachine::new();
        for mode in [Armed, Takeoff, Mission, Hold, Mission] {
            m.transition(mode).unwrap();
        }
        assert_eq!(m.mode(), Mission);
    }

    #[test]
    fn no_self_transition() {
        let mut m = ModeMachine::new();
        m.transition(Armed).unwrap();
        assert!(m.transition(Armed).is_err());
    }

    #[test]
    fn armed_and_flying_predicates() {
        assert!(!Disarmed.is_armed());
        assert!(Armed.is_armed());
        assert!(!Armed.is_flying());
        assert!(Mission.is_flying());
        assert!(Failsafe.is_flying());
    }
}
