//! Property-based tests for the exploration engine's two load-bearing
//! guarantees: Pareto dominance is a strict partial order whose
//! extracted frontier is exactly the maximal set, and the parallel
//! executor is a drop-in for serial iteration at any thread count.

use drone_components::battery::CellCount;
use drone_dse::eval::DesignQuery;
use drone_explorer::{extract_frontier, Explorer, GridRange, ParallelExecutor, ParetoFrontier};
use drone_math::{dominates, Sense};
use proptest::prelude::*;

/// A random 3-objective point.
fn point() -> impl Strategy<Value = [f64; 3]> {
    (0.0f64..100.0, 0.0f64..100.0, 0.0f64..100.0).prop_map(|(a, b, c)| [a, b, c])
}

fn points() -> impl Strategy<Value = Vec<[f64; 3]>> {
    prop::collection::vec(point(), 1..40)
}

/// One of the eight max/min sense assignments over three axes.
fn senses() -> impl Strategy<Value = [Sense; 3]> {
    (0usize..8).prop_map(|bits| {
        let pick = |bit: usize| {
            if bits >> bit & 1 == 0 {
                Sense::Maximize
            } else {
                Sense::Minimize
            }
        };
        [pick(0), pick(1), pick(2)]
    })
}

proptest! {
    #[test]
    fn dominance_is_irreflexive(p in point(), senses in senses()) {
        prop_assert!(!dominates(&p, &p, &senses), "{p:?} dominates itself");
    }

    #[test]
    fn dominance_is_antisymmetric(a in point(), b in point(), senses in senses()) {
        prop_assert!(
            !(dominates(&a, &b, &senses) && dominates(&b, &a, &senses)),
            "{a:?} and {b:?} dominate each other"
        );
    }

    #[test]
    fn extracted_frontier_is_mutually_non_dominated(
        points in points(),
        senses in senses(),
    ) {
        let frontier = extract_frontier(&points, &senses);
        prop_assert!(!frontier.is_empty(), "a non-empty finite set has maximal points");
        for &i in &frontier {
            for &j in &frontier {
                prop_assert!(
                    !dominates(&points[i], &points[j], &senses),
                    "frontier member {i} dominates frontier member {j}"
                );
            }
        }
    }

    #[test]
    fn every_dropped_point_is_dominated_by_a_frontier_member(
        points in points(),
        senses in senses(),
    ) {
        let frontier = extract_frontier(&points, &senses);
        for i in 0..points.len() {
            if frontier.contains(&i) {
                continue;
            }
            prop_assert!(
                frontier
                    .iter()
                    .any(|&k| dominates(&points[k], &points[i], &senses)),
                "dropped point {i} ({:?}) is not dominated by any frontier member",
                points[i]
            );
        }
    }

    #[test]
    fn incremental_frontier_matches_batch_extraction(
        points in points(),
        senses in senses(),
    ) {
        let mut incremental = ParetoFrontier::new(&senses);
        for (i, p) in points.iter().enumerate() {
            incremental.insert(i, p);
        }
        let mut ids = incremental.ids();
        ids.sort_unstable();
        let mut batch = extract_frontier(&points, &senses);
        batch.sort_unstable();
        prop_assert_eq!(ids, batch);
    }

    #[test]
    fn grid_values_are_strictly_monotone_with_exact_endpoints(
        min in 0.001f64..10_000.0,
        span in 0.001f64..10_000.0,
        steps in 2usize..100,
    ) {
        // Values are computed as `min + i·step`, never by running
        // accumulation — so endpoints are exact and ordering strict.
        let range = GridRange::new(min, min + span, steps);
        let values = range.values();
        prop_assert_eq!(values.len(), steps);
        prop_assert_eq!(values[0], min, "first value must be exactly min");
        prop_assert_eq!(
            values[steps - 1],
            min + span,
            "last value must be exactly max"
        );
        for pair in values.windows(2) {
            prop_assert!(
                pair[0] < pair[1],
                "values not strictly increasing: {} >= {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn parallel_executor_matches_serial_at_every_thread_count(
        items in prop::collection::vec(-1.0e3f64..1.0e3, 0..120),
    ) {
        // A mapping that depends on both index and value, so any
        // dropped, duplicated, or reordered item changes the output.
        let f = |i: usize, x: &f64| (i, x * x + i as f64);
        let serial = ParallelExecutor::new(1).map(&items, f);
        for threads in [2usize, 8] {
            let parallel = ParallelExecutor::new(threads).map(&items, f);
            prop_assert_eq!(&parallel, &serial, "{} threads diverged", threads);
        }
    }

    #[test]
    fn blocked_map_matches_serial_at_every_thread_count(
        items in prop::collection::vec(-1.0e3f64..1.0e3, 0..120),
    ) {
        // The block callback sees (worker, start, block) — fold all
        // three into the output so that any wrong block boundary, any
        // misplaced scatter offset, or any dropped item changes a slot.
        // Worker id must NOT leak into results (it varies run to run),
        // so it is deliberately excluded.
        let f = |_worker: usize, start: usize, block: &[f64]| {
            block
                .iter()
                .enumerate()
                .map(|(k, x)| Ok((start + k, x * x + (start + k) as f64)))
                .collect::<Vec<Result<_, drone_explorer::TaskPanic>>>()
        };
        let serial = ParallelExecutor::new(1).try_map_blocked(&items, f);
        for threads in [2usize, 3, 8] {
            let parallel = ParallelExecutor::new(threads).try_map_blocked(&items, f);
            prop_assert_eq!(&parallel, &serial, "{} threads diverged", threads);
        }
    }

    #[test]
    fn engine_answers_are_bit_identical_at_every_thread_count(
        corners in prop::collection::vec(
            (60.0f64..1200.0, 0usize..6, 400.0f64..8000.0, 1.2f64..8.0),
            1..24,
        ),
    ) {
        // The full engine path: cache partitioning, block batching,
        // batched kernel, scatter — none of it may let thread count
        // reach the answer bits.
        let points: Vec<DesignQuery> = corners
            .into_iter()
            .map(|(wb, cell, cap, twr)| {
                DesignQuery::new(wb, CellCount::ALL[cell], cap).with_twr(twr)
            })
            .collect();
        let serial = Explorer::new(1).evaluate_points(&points);
        for threads in [2usize, 5] {
            let parallel = Explorer::new(threads).evaluate_points(&points);
            prop_assert_eq!(parallel.len(), serial.len());
            for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
                match (p, s) {
                    (Ok(pe), Ok(se)) => {
                        prop_assert_eq!(
                            pe.weight_g.to_bits(), se.weight_g.to_bits(),
                            "{} threads: point {} weight bits differ", threads, i
                        );
                        prop_assert_eq!(
                            pe.flight_time_min.to_bits(), se.flight_time_min.to_bits(),
                            "{} threads: point {} flight-time bits differ", threads, i
                        );
                        prop_assert_eq!(
                            pe.hover_power_w.to_bits(), se.hover_power_w.to_bits(),
                            "{} threads: point {} hover-power bits differ", threads, i
                        );
                    }
                    (p, s) => prop_assert_eq!(
                        p, s,
                        "{} threads: point {} outcome class differs", threads, i
                    ),
                }
            }
        }
    }
}
