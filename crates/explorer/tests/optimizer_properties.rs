//! Property-based tests for the seeded search subsystem's guarantees:
//! sampling is deterministic in the seed and invariant to the engine's
//! thread count, Latin Hypercube stratification is exact, Sobol points
//! never leave the query's range bounds, and successive halving never
//! crowns a constraint-infeasible winner.

use drone_components::battery::CellCount;
use drone_explorer::optimize::{lhs::latin_hypercube, sample, SobolSequence, AXES};
// `SearchStrategy` keeps the engine's `Strategy` enum from shadowing
// the proptest `Strategy` trait the prelude brings in.
use drone_explorer::{
    Constraints, Explorer, GridRange, Lattice, Objective, OptimizeRequest, QueryRanges,
    Strategy as SearchStrategy,
};
use proptest::prelude::*;

/// A small random swept region — a few dozen lattice points, so the
/// engine-backed properties stay fast while still varying grid shape,
/// cell palette, and pinned coordinates case to case.
fn region() -> impl Strategy<Value = QueryRanges> {
    (
        (150.0f64..400.0, 100.0f64..300.0, 2usize..5),
        (1000.0f64..3000.0, 1000.0f64..4000.0, 2usize..6),
        0usize..3,
        (5.0f64..20.0, 1.5f64..3.0, 0.0f64..100.0),
    )
        .prop_map(|(wheelbase, capacity, cells, (compute, twr, payload))| {
            let palette = match cells {
                0 => vec![CellCount::S3],
                1 => vec![CellCount::S4],
                _ => vec![CellCount::S3, CellCount::S6],
            };
            QueryRanges {
                wheelbase_mm: GridRange::new(wheelbase.0, wheelbase.0 + wheelbase.1, wheelbase.2),
                cells: palette,
                capacity_mah: GridRange::new(capacity.0, capacity.0 + capacity.1, capacity.2),
                compute_power_w: GridRange::fixed(compute),
                twr: GridRange::fixed(twr),
                payload_g: GridRange::fixed(payload),
            }
        })
}

fn objective() -> impl Strategy<Value = Objective> {
    (0usize..3).prop_map(|i| {
        [
            Objective::MaxFlightTime,
            Objective::MinWeight,
            Objective::MinComputeShare,
        ][i]
    })
}

fn strategy() -> impl Strategy<Value = SearchStrategy> {
    (0usize..4).prop_map(|i| SearchStrategy::ALL[i])
}

fn constraints() -> impl Strategy<Value = Constraints> {
    (0usize..4, 800.0f64..2500.0, 2.0f64..10.0).prop_map(|(shape, weight, flight)| Constraints {
        max_weight_g: (shape & 1 != 0).then_some(weight),
        min_flight_time_min: (shape & 2 != 0).then_some(flight),
        ..Constraints::default()
    })
}

proptest! {
    #[test]
    fn samplers_are_seed_deterministic_and_in_bounds(
        ranges in region(),
        strategy in strategy(),
        seed in 0u64..1_000_000,
        n in 1usize..80,
    ) {
        let lattice = Lattice::new(&ranges);
        let a = sample(strategy, &lattice, seed, n);
        let b = sample(strategy, &lattice, seed, n);
        prop_assert_eq!(&a, &b, "strategy {} not seed-deterministic", strategy);
        prop_assert_eq!(a.len(), n);
        for p in &a {
            for axis in 0..AXES {
                prop_assert!(p.idx[axis] < lattice.dims()[axis]);
            }
        }
    }

    #[test]
    fn lhs_covers_every_stratum_exactly_once_per_axis(
        seed in 0u64..1_000_000,
        n in 1usize..60,
        dims in 1usize..8,
    ) {
        let points = latin_hypercube(seed, n, dims);
        prop_assert_eq!(points.len(), n);
        for dim in 0..dims {
            let mut hit = vec![false; n];
            for p in &points {
                prop_assert!((0.0..1.0).contains(&p[dim]), "axis {} out of unit range", dim);
                let stratum = ((p[dim] * n as f64) as usize).min(n - 1);
                prop_assert!(!hit[stratum], "axis {} stratum {} hit twice", dim, stratum);
                hit[stratum] = true;
            }
            prop_assert!(hit.iter().all(|&h| h), "axis {} missed a stratum", dim);
        }
    }

    #[test]
    fn sobol_points_stay_inside_range_bounds(
        ranges in region(),
        seed in 0u64..1_000_000,
        n in 1usize..120,
    ) {
        // Unit-cube coordinates first…
        let mut seq = SobolSequence::new(AXES, seed);
        for _ in 0..n {
            for (d, x) in seq.next_point().into_iter().enumerate() {
                prop_assert!((0.0..1.0).contains(&x), "dim {} left the unit cube: {}", d, x);
            }
        }
        // …then the lattice-snapped design points they map to: every
        // coordinate must sit inside its query range, cells included.
        let lattice = Lattice::new(&ranges);
        for point in sample(SearchStrategy::Sobol, &lattice, seed, n) {
            let q = lattice.query(&point);
            let within = |r: &GridRange, v: f64| r.min <= v && v <= r.max;
            prop_assert!(within(&ranges.wheelbase_mm, q.wheelbase_mm));
            prop_assert!(within(&ranges.capacity_mah, q.capacity_mah));
            prop_assert!(within(&ranges.compute_power_w, q.compute_power_w));
            prop_assert!(within(&ranges.twr, q.twr));
            prop_assert!(within(&ranges.payload_g, q.payload_g));
            prop_assert!(ranges.cells.contains(&q.cells));
        }
    }
}

// Engine-backed properties run real design evaluations per case, so a
// smaller case count keeps the suite quick; each case still randomizes
// region, objective, constraints, seed and budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn optimize_answers_are_thread_count_invariant(
        ranges in region(),
        strategy in strategy(),
        objective in objective(),
        constraints in constraints(),
        seed in 0u64..1_000_000,
        budget in 1usize..30,
    ) {
        let req = OptimizeRequest::new("prop", ranges, objective, strategy, budget)
            .with_constraints(constraints)
            .with_seed(seed);
        let serial = Explorer::new(1).optimize(&req);
        let parallel = Explorer::new(4).optimize(&req);
        prop_assert_eq!(&serial, &parallel, "threads 1 vs 4 diverged");
        let replay = Explorer::new(4).optimize(&req);
        prop_assert_eq!(&parallel, &replay, "same seed replay diverged");
        prop_assert!(serial.evaluated <= budget, "budget overrun");
    }

    #[test]
    fn halving_never_returns_a_constraint_infeasible_winner(
        ranges in region(),
        objective in objective(),
        constraints in constraints(),
        seed in 0u64..1_000_000,
        budget in 4usize..40,
    ) {
        let req = OptimizeRequest::new(
            "prop_halving",
            ranges,
            objective,
            SearchStrategy::Halving,
            budget,
        )
        .with_constraints(constraints)
        .with_seed(seed);
        let answer = Explorer::new(2).optimize(&req);
        if let Some(best) = &answer.best {
            prop_assert!(
                constraints.admits(best),
                "winner violates constraints: {:?}",
                best
            );
        }
        for member in &answer.frontier {
            prop_assert!(
                constraints.admits(member),
                "frontier member violates constraints: {:?}",
                member
            );
        }
    }
}
