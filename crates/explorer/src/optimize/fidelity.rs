//! Constraint pre-filtering and coarse-proxy ranking.
//!
//! The pre-filter rejects candidates *before any kernel call* using
//! sound lower bounds: the kernel's own parameter envelope (a design
//! outside it always returns `InvalidTwr`/`InvalidWheelbase`) and a
//! take-off-weight
//! lower bound — frame + compute + sensors + payload + battery is the
//! sizing fixed point's starting weight, which motors, ESCs, props and
//! wiring only ever add to. A candidate whose *floor* already breaks
//! `max_weight_g` can never be feasible, so evaluating it would waste
//! a kernel call on a foregone conclusion.
//!
//! The ranking comparator orders halving-round candidates by their
//! coarse proxy outcome: admitted proxies first (best objective
//! value first), then sized-but-constraint-violating, then failed or
//! unevaluated — with `total_cmp` and stable sorting keeping the order
//! deterministic at any thread count.

use crate::query::{Constraints, Objective};
use drone_dse::eval::{DesignEval, DesignQuery};
use drone_math::Sense;
use std::cmp::Ordering;

/// The kernel's modelled parameter envelope (`DesignSpec::size`
/// rejects outside it). Pinned by a test against `evaluate` so the
/// two can never drift apart silently.
const TWR_RANGE: (f64, f64) = (1.05, 10.0);
const WHEELBASE_RANGE: (f64, f64) = (30.0, 1500.0);

/// Why the pre-filter rejected a candidate without evaluating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterReject {
    /// Outside the kernel's modelled parameter range: `evaluate`
    /// would deterministically return a parameter error.
    Parameter,
    /// The take-off-weight lower bound already exceeds the query's
    /// `max_weight_g`: no sizing outcome can be feasible.
    WeightBound,
}

/// Checks a candidate against the pre-filter. `None` means "evaluate
/// it". Sound by construction: a rejected candidate can never produce
/// a constraint-admissible [`DesignEval`].
pub fn prefilter(query: &DesignQuery, constraints: &Constraints) -> Option<PrefilterReject> {
    if !(TWR_RANGE.0..=TWR_RANGE.1).contains(&query.twr)
        || !(WHEELBASE_RANGE.0..=WHEELBASE_RANGE.1).contains(&query.wheelbase_mm)
    {
        return Some(PrefilterReject::Parameter);
    }
    if let Some(bound) = constraints.max_weight_g {
        if weight_floor(query) > bound {
            return Some(PrefilterReject::WeightBound);
        }
    }
    None
}

/// A lower bound on the sized take-off weight: every component of the
/// fixed-point's starting weight (`fixed = basic + battery`), none of
/// the weight the iteration adds. Uses the battery weight *fit*
/// directly (not `Battery::new`, whose positivity asserts could panic
/// on degenerate capacities the kernel itself guards).
pub fn weight_floor(query: &DesignQuery) -> f64 {
    let battery = drone_components::paper::battery_weight_fit(query.cells)
        .predict(query.capacity_mah)
        .max(0.0);
    query.to_spec().basic_weight().0 + battery
}

/// A halving candidate's proxy outcome class, best (0) to worst (2).
fn class(proxy: Option<&Result<DesignEval, drone_dse::design::DesignError>>, admitted: bool) -> u8 {
    match proxy {
        Some(Ok(_)) if admitted => 0,
        Some(Ok(_)) => 1,
        _ => 2,
    }
}

/// Compares two candidates by proxy outcome for a halving round:
/// admitted before inadmissible before failed/missing, and within the
/// admitted class by objective value in the objective's sense. Equal
/// outcomes compare `Equal`, so a *stable* sort preserves candidate
/// order — the deterministic tie-break.
pub fn compare_proxies(
    objective: Objective,
    a: (
        Option<&Result<DesignEval, drone_dse::design::DesignError>>,
        bool,
    ),
    b: (
        Option<&Result<DesignEval, drone_dse::design::DesignError>>,
        bool,
    ),
) -> Ordering {
    let (class_a, class_b) = (class(a.0, a.1), class(b.0, b.1));
    if class_a != class_b {
        return class_a.cmp(&class_b);
    }
    let score = |proxy: Option<&Result<DesignEval, drone_dse::design::DesignError>>| {
        proxy
            .and_then(|r| r.as_ref().ok())
            .map(|e| objective.value(e))
    };
    match (score(a.0), score(b.0)) {
        (Some(va), Some(vb)) => match objective.sense() {
            Sense::Maximize => vb.total_cmp(&va),
            Sense::Minimize => va.total_cmp(&vb),
        },
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_components::battery::CellCount;
    use drone_dse::eval::evaluate;

    #[test]
    fn parameter_prefilter_agrees_with_the_kernel_envelope() {
        // Just inside: kernel evaluates (feasibly or not, but no
        // parameter error); just outside: prefilter fires and the
        // kernel confirms with a typed parameter error.
        let base = DesignQuery::new(450.0, CellCount::S3, 4000.0);
        for (twr, wheelbase, rejected) in [
            (1.05, 450.0, false),
            (10.0, 450.0, false),
            (1.04, 450.0, true),
            (10.01, 450.0, true),
            (2.0, 29.9, true),
            (2.0, 1500.1, true),
        ] {
            let q = DesignQuery {
                twr,
                wheelbase_mm: wheelbase,
                ..base
            };
            let pre = prefilter(&q, &Constraints::default());
            assert_eq!(pre.is_some(), rejected, "twr {twr} wheelbase {wheelbase}");
            if rejected {
                assert!(matches!(
                    evaluate(&q),
                    Err(drone_dse::design::DesignError::InvalidTwr(_)
                        | drone_dse::design::DesignError::InvalidWheelbase(_))
                ));
            }
        }
    }

    #[test]
    fn weight_floor_never_exceeds_the_sized_weight() {
        for wheelbase in [150.0, 450.0, 800.0] {
            for capacity in [1000.0, 4000.0, 8000.0] {
                let q = DesignQuery::new(wheelbase, CellCount::S3, capacity);
                if let Ok(eval) = evaluate(&q) {
                    assert!(
                        weight_floor(&q) <= eval.weight_g,
                        "{wheelbase} mm / {capacity} mAh: floor above actual"
                    );
                }
            }
        }
    }

    #[test]
    fn weight_prefilter_rejects_only_impossible_candidates() {
        let q = DesignQuery::new(450.0, CellCount::S3, 4000.0);
        let floor = weight_floor(&q);
        let reject = Constraints {
            max_weight_g: Some(floor - 1.0),
            ..Constraints::default()
        };
        assert_eq!(prefilter(&q, &reject), Some(PrefilterReject::WeightBound));
        let admit = Constraints {
            max_weight_g: Some(floor + 10_000.0),
            ..Constraints::default()
        };
        assert_eq!(prefilter(&q, &admit), None);
    }

    #[test]
    fn proxy_comparison_orders_admitted_best_then_by_objective() {
        let good = evaluate(&DesignQuery::new(450.0, CellCount::S3, 4000.0)).unwrap();
        let heavier = evaluate(&DesignQuery::new(650.0, CellCount::S3, 8000.0)).unwrap();
        let ok_good = Ok(good);
        let ok_heavy = Ok(heavier);
        let failed: Result<DesignEval, _> = Err(drone_dse::design::DesignError::SizingDiverged);
        // Admitted beats inadmissible beats failed.
        assert_eq!(
            compare_proxies(
                Objective::MinWeight,
                (Some(&ok_good), true),
                (Some(&ok_heavy), false)
            ),
            Ordering::Less
        );
        assert_eq!(
            compare_proxies(
                Objective::MinWeight,
                (Some(&ok_heavy), false),
                (Some(&failed), false)
            ),
            Ordering::Less
        );
        // Within the admitted class, the objective decides in sense.
        assert_eq!(
            compare_proxies(
                Objective::MinWeight,
                (Some(&ok_good), true),
                (Some(&ok_heavy), true)
            ),
            Ordering::Less
        );
        assert_eq!(
            compare_proxies(
                Objective::MaxFlightTime,
                (Some(&ok_good), true),
                (Some(&ok_heavy), true)
            ),
            if good.flight_time_min >= heavier.flight_time_min {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        );
        // Identical outcomes are Equal: stable sort keeps input order.
        assert_eq!(
            compare_proxies(
                Objective::MinWeight,
                (Some(&ok_good), true),
                (Some(&ok_good), true)
            ),
            Ordering::Equal
        );
    }
}
