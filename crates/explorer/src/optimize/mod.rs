//! Seeded sampling + multi-fidelity search over the DSE engine.
//!
//! The exhaustive grid answers "what does the whole region look like";
//! this module answers "where is the optimum (and the frontier)"
//! without paying for the whole region. Four deterministic strategies
//! — seeded Monte Carlo, Latin Hypercube, Sobol, and multi-fidelity
//! successive halving — draw candidates from the *same lattice* the
//! grid sweeps, pre-filter them against sound constraint bounds before
//! any kernel call, dispatch survivors through the engine's parallel
//! executor + memo cache, and finish with Pareto local search around
//! the recovered frontier. Answers are byte-identical at any thread
//! count and across cache-warm re-runs.
//!
//! Layout: [`sobol`] and [`lhs`] are the low-level point streams,
//! [`sampler`] snaps streams onto the query lattice, [`fidelity`]
//! holds the pre-filter and coarse-proxy ranking, and [`optimizer`]
//! runs the strategies and hangs the public API off
//! [`crate::Explorer`].

pub mod fidelity;
pub mod lhs;
pub mod optimizer;
pub mod sampler;
pub mod sobol;

pub use fidelity::{prefilter, weight_floor, PrefilterReject};
pub use optimizer::{OptimizeAnswer, OptimizeRequest, Optimizer};
pub use sampler::{sample, Lattice, LatticePoint, Strategy, AXES};
pub use sobol::SobolSequence;
