//! Candidate generation over the query lattice.
//!
//! Every strategy searches the *same finite lattice* the exhaustive
//! grid would enumerate: a sampled unit-hypercube point maps to per-
//! axis grid indices, and indices map to coordinates through
//! [`GridRange::value_at`]. Snapping to the lattice is what makes the
//! optimizer commensurable with the grid baseline — a recovered
//! frontier member is *the same cache key* the grid would have found —
//! and lets every strategy share the engine's memoization cache.

use crate::query::{GridRange, QueryRanges};
use drone_dse::eval::DesignQuery;
use serde::{Deserialize, Serialize};

use super::lhs::latin_hypercube;
use super::sobol::SobolSequence;
use drone_math::rng::Pcg32;

/// Axes of the sampling hypercube: cells + the five numeric ranges.
pub const AXES: usize = 6;

/// A deterministic seeded search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Independent uniform draws from a seeded PCG32 stream.
    MonteCarlo,
    /// Latin Hypercube: every axis stratified, one sample per stratum.
    LatinHypercube,
    /// Sobol low-discrepancy sequence with a seeded digital shift.
    Sobol,
    /// Multi-fidelity successive halving over a Sobol candidate pool:
    /// coarse-lattice proxies rank the pool, survivors graduate to
    /// full fidelity.
    Halving,
}

impl Strategy {
    /// Every strategy, in wire/report order.
    pub const ALL: [Strategy; 4] = [
        Strategy::MonteCarlo,
        Strategy::LatinHypercube,
        Strategy::Sobol,
        Strategy::Halving,
    ];

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::MonteCarlo => "monte_carlo",
            Strategy::LatinHypercube => "lhs",
            Strategy::Sobol => "sobol",
            Strategy::Halving => "halving",
        }
    }

    /// The inverse of [`Strategy::as_str`].
    pub fn from_name(name: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.as_str() == name)
    }

    /// A stable index for per-strategy telemetry slots.
    pub(crate) fn slot(self) -> usize {
        match self {
            Strategy::MonteCarlo => 0,
            Strategy::LatinHypercube => 1,
            Strategy::Sobol => 2,
            Strategy::Halving => 3,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A candidate as per-axis lattice indices (cells axis first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatticePoint {
    /// Grid index on each axis, `[cells, wheelbase, capacity,
    /// compute, twr, payload]`.
    pub idx: [usize; AXES],
}

/// The finite search lattice a [`QueryRanges`] spans.
#[derive(Debug, Clone)]
pub struct Lattice {
    ranges: QueryRanges,
    dims: [usize; AXES],
}

impl Lattice {
    /// The lattice of a validated range set.
    pub fn new(ranges: &QueryRanges) -> Lattice {
        let dims = [
            ranges.cells.len().max(1),
            ranges.wheelbase_mm.steps,
            ranges.capacity_mah.steps,
            ranges.compute_power_w.steps,
            ranges.twr.steps,
            ranges.payload_g.steps,
        ];
        Lattice {
            ranges: ranges.clone(),
            dims,
        }
    }

    /// Distinct lattice points (the exhaustive grid's size).
    pub fn point_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Per-axis index counts.
    pub fn dims(&self) -> &[usize; AXES] {
        &self.dims
    }

    /// Snaps a unit-hypercube sample onto the lattice:
    /// `floor(u·steps)`, clamped to the last index.
    pub fn from_unit(&self, unit: &[f64]) -> LatticePoint {
        let mut idx = [0usize; AXES];
        for (axis, slot) in idx.iter_mut().enumerate() {
            let steps = self.dims[axis];
            let u = unit[axis].clamp(0.0, 1.0);
            *slot = ((u * steps as f64) as usize).min(steps - 1);
        }
        LatticePoint { idx }
    }

    /// The design point at a lattice position.
    pub fn query(&self, point: &LatticePoint) -> DesignQuery {
        let at = |range: &GridRange, i: usize| range.value_at(i);
        DesignQuery {
            wheelbase_mm: at(&self.ranges.wheelbase_mm, point.idx[1]),
            cells: self.ranges.cells[point.idx[0].min(self.ranges.cells.len() - 1)],
            capacity_mah: at(&self.ranges.capacity_mah, point.idx[2]),
            compute_power_w: at(&self.ranges.compute_power_w, point.idx[3]),
            twr: at(&self.ranges.twr, point.idx[4]),
            payload_g: at(&self.ranges.payload_g, point.idx[5]),
        }
    }

    /// Appends the ±1-index lattice neighbours of `point` (single-axis
    /// moves, every axis including cells) to `out`, in a fixed axis
    /// order — the Pareto local-search neighbourhood.
    pub fn neighbors(&self, point: &LatticePoint, out: &mut Vec<LatticePoint>) {
        for axis in 0..AXES {
            if point.idx[axis] > 0 {
                let mut p = *point;
                p.idx[axis] -= 1;
                out.push(p);
            }
            if point.idx[axis] + 1 < self.dims[axis] {
                let mut p = *point;
                p.idx[axis] += 1;
                out.push(p);
            }
        }
    }

    /// Snaps a point onto the sub-lattice of indices divisible by
    /// `2^level` — the coarse fidelity the halving loop ranks with.
    /// Level 0 is the point itself.
    pub fn snap_to_level(&self, point: &LatticePoint, level: u32) -> LatticePoint {
        let stride = 1usize << level;
        let mut idx = point.idx;
        for i in idx.iter_mut() {
            *i -= *i % stride;
        }
        LatticePoint { idx }
    }
}

/// Draws `n` seeded candidates for a strategy. [`Strategy::Halving`]
/// pools through the Sobol stream (the halving *loop* lives in the
/// optimizer; only its candidate generation is a sampler concern).
pub fn sample(strategy: Strategy, lattice: &Lattice, seed: u64, n: usize) -> Vec<LatticePoint> {
    match strategy {
        Strategy::MonteCarlo => {
            let mut rng = Pcg32::new(seed, 0x3C4D);
            (0..n)
                .map(|_| {
                    let unit: Vec<f64> = (0..AXES).map(|_| rng.next_f64()).collect();
                    lattice.from_unit(&unit)
                })
                .collect()
        }
        Strategy::LatinHypercube => latin_hypercube(seed, n, AXES)
            .iter()
            .map(|unit| lattice.from_unit(unit))
            .collect(),
        Strategy::Sobol | Strategy::Halving => {
            let mut seq = SobolSequence::new(AXES, seed);
            (0..n)
                .map(|_| lattice.from_unit(&seq.next_point()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_components::battery::CellCount;

    fn ranges() -> QueryRanges {
        QueryRanges {
            wheelbase_mm: GridRange::new(150.0, 750.0, 13),
            cells: vec![CellCount::S3, CellCount::S6],
            capacity_mah: GridRange::new(1000.0, 8000.0, 15),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        }
    }

    #[test]
    fn lattice_matches_the_grid() {
        let r = ranges();
        let lattice = Lattice::new(&r);
        assert_eq!(lattice.point_count(), r.point_count());
        // Index 0 on every axis is the grid's first point; the last
        // indices give the all-maxima corner of the last cell config.
        let first = lattice.query(&LatticePoint { idx: [0; AXES] });
        assert_eq!(first, r.grid()[0]);
        let last = lattice.query(&LatticePoint {
            idx: [1, 12, 14, 0, 0, 0],
        });
        assert_eq!(last.wheelbase_mm, 750.0);
        assert_eq!(last.capacity_mah, 8000.0);
        assert_eq!(last.cells, CellCount::S6);
    }

    #[test]
    fn unit_mapping_clamps_and_snaps() {
        let lattice = Lattice::new(&ranges());
        let p = lattice.from_unit(&[0.999_999, 0.999_999, 0.0, 0.5, 1.0, 0.2]);
        assert_eq!(p.idx, [1, 12, 0, 0, 0, 0]);
        let q = lattice.from_unit(&[0.0; AXES]);
        assert_eq!(q.idx, [0; AXES]);
    }

    #[test]
    fn every_strategy_is_seed_deterministic_and_in_bounds() {
        let lattice = Lattice::new(&ranges());
        for strategy in Strategy::ALL {
            let a = sample(strategy, &lattice, 11, 64);
            let b = sample(strategy, &lattice, 11, 64);
            assert_eq!(a, b, "{strategy}");
            assert_eq!(a.len(), 64);
            for p in &a {
                for (axis, &i) in p.idx.iter().enumerate() {
                    assert!(i < lattice.dims()[axis], "{strategy} axis {axis}");
                }
            }
        }
    }

    #[test]
    fn neighbors_stay_in_bounds_and_cover_all_axes() {
        let lattice = Lattice::new(&ranges());
        let mut out = Vec::new();
        lattice.neighbors(&LatticePoint { idx: [0; AXES] }, &mut out);
        // Corner point: only +1 moves on the swept axes (cells,
        // wheelbase, capacity — the rest are pinned).
        assert_eq!(out.len(), 3);
        out.clear();
        lattice.neighbors(
            &LatticePoint {
                idx: [1, 6, 7, 0, 0, 0],
            },
            &mut out,
        );
        assert_eq!(out.len(), 5, "interior point: ± on three swept axes");
    }

    #[test]
    fn coarse_snapping_floors_to_the_stride() {
        let lattice = Lattice::new(&ranges());
        let p = LatticePoint {
            idx: [1, 11, 7, 0, 0, 0],
        };
        assert_eq!(lattice.snap_to_level(&p, 0), p);
        assert_eq!(lattice.snap_to_level(&p, 2).idx, [0, 8, 4, 0, 0, 0]);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_name(s.as_str()), Some(s));
        }
        assert_eq!(Strategy::from_name("grid"), None);
    }
}
