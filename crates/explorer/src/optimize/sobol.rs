//! A seeded Sobol low-discrepancy sequence.
//!
//! Gray-code construction over Joe–Kuo direction numbers for up to
//! [`MAX_DIMS`] dimensions. The raw sequence is fully deterministic;
//! the seed applies a per-dimension *digital shift* (an XOR with a
//! seeded 32-bit mask, the cheap end of Owen scrambling) so distinct
//! seeds draw distinct — but equally well-spread — point sets. Every
//! coordinate lands in `[0, 1)` by construction.

use drone_math::rng::Pcg32;

/// Most dimensions the direction-number table covers.
pub const MAX_DIMS: usize = 8;

const BITS: usize = 32;

/// Primitive polynomial degree `s`, coefficient word `a`, and initial
/// direction numbers `m` for dimensions 2..=8 (dimension 1 is the van
/// der Corput sequence in base 2). Values from the Joe–Kuo tables.
const POLYS: [(usize, u32, [u32; 5]); 7] = [
    (1, 0, [1, 0, 0, 0, 0]),
    (2, 1, [1, 3, 0, 0, 0]),
    (3, 1, [1, 3, 1, 0, 0]),
    (3, 2, [1, 1, 1, 0, 0]),
    (4, 1, [1, 1, 3, 3, 0]),
    (4, 4, [1, 3, 5, 13, 0]),
    (5, 2, [1, 1, 5, 5, 17]),
];

/// The direction numbers `v[k] = m[k]/2^(k+1)` scaled into the top
/// bits of a `u32`, extended by the polynomial recurrence.
fn direction_numbers(dim: usize) -> [u32; BITS] {
    let mut v = [0u32; BITS];
    if dim == 0 {
        for (k, slot) in v.iter_mut().enumerate() {
            *slot = 1 << (31 - k);
        }
        return v;
    }
    let (s, a, m) = POLYS[dim - 1];
    for k in 0..s {
        v[k] = m[k] << (31 - k);
    }
    for k in s..BITS {
        let mut value = v[k - s] ^ (v[k - s] >> s);
        for i in 1..s {
            if (a >> (s - 1 - i)) & 1 == 1 {
                value ^= v[k - i];
            }
        }
        v[k] = value;
    }
    v
}

/// A seeded Sobol point stream over the unit hypercube `[0, 1)^dims`.
pub struct SobolSequence {
    v: Vec<[u32; BITS]>,
    state: Vec<u32>,
    shift: Vec<u32>,
    index: u32,
}

impl SobolSequence {
    /// A sequence over `dims` dimensions, digitally shifted by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is zero or exceeds [`MAX_DIMS`].
    pub fn new(dims: usize, seed: u64) -> SobolSequence {
        assert!(
            (1..=MAX_DIMS).contains(&dims),
            "sobol supports 1..={MAX_DIMS} dimensions"
        );
        let mut rng = Pcg32::new(seed, 0x50B0);
        SobolSequence {
            v: (0..dims).map(direction_numbers).collect(),
            state: vec![0; dims],
            shift: (0..dims).map(|_| rng.next_u32()).collect(),
            index: 0,
        }
    }

    /// The next point, one coordinate per dimension, each in `[0, 1)`.
    pub fn next_point(&mut self) -> Vec<f64> {
        // Gray-code update: point k flips point k-1 along direction
        // `trailing_ones(k - 1)`. Point 0 is the shift itself.
        if self.index > 0 {
            let c = (self.index - 1).trailing_ones() as usize;
            for (state, v) in self.state.iter_mut().zip(&self.v) {
                *state ^= v[c.min(BITS - 1)];
            }
        }
        self.index = self.index.wrapping_add(1);
        self.state
            .iter()
            .zip(&self.shift)
            .map(|(&x, &shift)| f64::from(x ^ shift) / (1u64 << BITS) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unshifted_sequence_matches_the_textbook_prefix() {
        // Seed streams only shift; check the raw lattice through a
        // zero shift by cancelling it out.
        let mut seq = SobolSequence::new(2, 1);
        let shift: Vec<u32> = seq.shift.clone();
        let mut raw = Vec::new();
        for _ in 0..4 {
            let p = seq.next_point();
            raw.push(
                p.iter()
                    .zip(&shift)
                    .map(|(&x, &s)| {
                        let bits = (x * (1u64 << BITS) as f64) as u32 ^ s;
                        f64::from(bits) / (1u64 << BITS) as f64
                    })
                    .collect::<Vec<f64>>(),
            );
        }
        // Van der Corput x Sobol dim 2: 0, 1/2, 1/4|3/4 pattern.
        assert_eq!(raw[0], vec![0.0, 0.0]);
        assert_eq!(raw[1], vec![0.5, 0.5]);
        assert_eq!(raw[2], vec![0.75, 0.25]);
        assert_eq!(raw[3], vec![0.25, 0.75]);
    }

    #[test]
    fn points_stay_in_the_unit_cube_and_spread() {
        let mut seq = SobolSequence::new(MAX_DIMS, 7);
        let mut low = [false; MAX_DIMS];
        let mut high = [false; MAX_DIMS];
        for _ in 0..256 {
            let p = seq.next_point();
            assert_eq!(p.len(), MAX_DIMS);
            for (d, &x) in p.iter().enumerate() {
                assert!((0.0..1.0).contains(&x), "dim {d}: {x}");
                low[d] |= x < 0.5;
                high[d] |= x >= 0.5;
            }
        }
        // Low-discrepancy: every dimension visits both halves.
        assert!(low.iter().all(|&b| b) && high.iter().all(|&b| b));
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let draw = |seed: u64| {
            let mut seq = SobolSequence::new(3, seed);
            (0..16).map(|_| seq.next_point()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
