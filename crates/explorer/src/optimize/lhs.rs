//! Seeded Latin Hypercube sampling.
//!
//! `n` samples over `dims` dimensions: each axis is cut into `n` equal
//! strata and each stratum is visited by exactly one sample (a seeded
//! permutation per axis decides which), with a seeded jitter placing
//! the sample inside its stratum. Marginal coverage is therefore
//! perfect on every axis however small `n` is — the property the
//! optimizer proptests pin.

use drone_math::rng::Pcg32;

/// Draws `n` Latin-Hypercube points in `[0, 1)^dims`. Deterministic in
/// `(seed, n, dims)`; per-axis RNG streams are independent, so adding
/// a dimension never reshuffles the existing ones.
pub fn latin_hypercube(seed: u64, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut points = vec![vec![0.0; dims]; n];
    for dim in 0..dims {
        let mut rng = Pcg32::new(seed, 0x1457 + dim as u64);
        let mut strata: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut strata);
        for (point, stratum) in points.iter_mut().zip(strata) {
            point[dim] = (stratum as f64 + rng.next_f64()) / n as f64;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stratum_is_hit_exactly_once_per_axis() {
        let n = 17;
        let points = latin_hypercube(3, n, 4);
        assert_eq!(points.len(), n);
        for dim in 0..4 {
            let mut hit = vec![false; n];
            for p in &points {
                let stratum = ((p[dim] * n as f64) as usize).min(n - 1);
                assert!(!hit[stratum], "axis {dim} stratum {stratum} hit twice");
                hit[stratum] = true;
            }
            assert!(hit.iter().all(|&h| h), "axis {dim} missed a stratum");
        }
    }

    #[test]
    fn seeded_and_bounded() {
        assert_eq!(latin_hypercube(9, 8, 3), latin_hypercube(9, 8, 3));
        assert_ne!(latin_hypercube(9, 8, 3), latin_hypercube(10, 8, 3));
        for p in latin_hypercube(1, 50, 6) {
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }
}
