//! The optimizer: seeded sampling + Pareto local search, with a
//! multi-fidelity successive-halving variant.
//!
//! Every strategy runs the same two-phase shape. Phase one seeds the
//! feasible pool: the samplers evaluate one seeded candidate batch;
//! halving ranks a (larger) Sobol pool through coarse-lattice proxies
//! and only graduates survivors to full fidelity. Phase two is Pareto
//! local search: the current frontier's lattice neighbours are
//! evaluated wave by wave until the frontier stops growing — on a
//! connected frontier, one recovered member pulls in the rest, which
//! is how a ≤25 %-of-grid budget recovers ≥80 % of the exhaustive
//! frontier. Constraint pre-filtering (see [`super::fidelity`]) runs
//! before *every* kernel call in both phases.
//!
//! Determinism: sampling, pre-filtering, bookkeeping and ranking all
//! happen on the coordinating thread; only kernel evaluation fans out,
//! through the same executor + cache path as grid queries, so an
//! [`OptimizeAnswer`] is identical at any thread count, warm cache or
//! cold.

use crate::cache::CacheKey;
use crate::engine::{EvalResult, Explorer};
use crate::executor::TaskPanic;
use crate::pareto::ParetoFrontier;
use crate::query::{Constraints, Objective, QueryError, QueryLimits, QueryRanges};
use drone_dse::eval::{DesignEval, DesignQuery, OBJECTIVE_SENSES};
use drone_math::stats::{argmax, argmin};
use drone_math::Sense;
use drone_telemetry::trace::Span;
use drone_telemetry::{Clock, Counter, Registry, SharedHistogram};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::fidelity::{compare_proxies, prefilter};
use super::sampler::{sample, Lattice, LatticePoint, Strategy};

/// Coarsest halving fidelity: proxies snap to every `2^3`-rd index.
const START_LEVEL: u32 = 3;

/// Local-search wave cap — a backstop, not a tuning knob; waves stop
/// on their own when the frontier saturates or the budget runs out.
const MAX_WAVES: usize = 64;

/// One optimization request: find the constrained optimum (and the
/// feasible Pareto frontier) of a gridded region without sweeping it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// Label carried into the answer and reports.
    pub name: String,
    /// The region to search (the same lattice a grid query sweeps).
    pub ranges: QueryRanges,
    /// Feasibility bounds on the evaluated outputs.
    pub constraints: Constraints,
    /// What to optimize.
    pub objective: Objective,
    /// The search strategy.
    pub strategy: Strategy,
    /// Most unique lattice points the run may dispatch to the engine —
    /// the kernel-call ceiling the answer's `evaluated` respects.
    pub budget: usize,
    /// Seed for the strategy's random streams.
    pub seed: u64,
}

impl OptimizeRequest {
    /// A request with default constraints and seed 0.
    pub fn new(
        name: &str,
        ranges: QueryRanges,
        objective: Objective,
        strategy: Strategy,
        budget: usize,
    ) -> OptimizeRequest {
        OptimizeRequest {
            name: name.to_owned(),
            ranges,
            constraints: Constraints::default(),
            objective,
            strategy,
            budget,
            seed: 0,
        }
    }

    /// Sets the constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> OptimizeRequest {
        self.constraints = constraints;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> OptimizeRequest {
        self.seed = seed;
        self
    }

    /// Validates the request against the service limits: axis sanity
    /// plus the optimize budget cap. The gate the serving layer runs
    /// on untrusted input.
    pub fn validate(&self, limits: &QueryLimits) -> Result<(), QueryError> {
        if self.name.len() > limits.max_name_bytes {
            return Err(QueryError::NameTooLong {
                len: self.name.len(),
                max: limits.max_name_bytes,
            });
        }
        self.ranges.validate(limits)?;
        if self.budget == 0 || self.budget > limits.max_optimize_budget {
            return Err(QueryError::BadBudget {
                budget: self.budget,
                max: limits.max_optimize_budget,
            });
        }
        Ok(())
    }

    /// Worst-case evaluation cost in the serving layer's cost units:
    /// the budget is a hard ceiling on dispatched points, so it *is*
    /// the estimate the per-request deadline sheds against.
    pub fn estimated_cost_units(&self) -> u64 {
        self.budget as u64
    }
}

/// The optimizer's answer to one [`OptimizeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeAnswer {
    /// The request's label.
    pub name: String,
    /// The strategy that ran.
    pub strategy: Strategy,
    /// The constrained optimum, when any evaluated point was feasible.
    pub best: Option<DesignEval>,
    /// Pareto frontier (flight time ↑, weight ↓, compute share ↓) of
    /// the evaluated feasible set, in admission order.
    pub frontier: Vec<DesignEval>,
    /// Candidates the strategy drew (before dedup and pre-filtering).
    pub sampled: usize,
    /// Unique lattice points dispatched to the engine — the number the
    /// budget caps and the grid comparison counts. Cache hits from
    /// earlier runs still count; within-run revisits never dispatch.
    pub evaluated: usize,
    /// Of `evaluated`, points dispatched at reduced fidelity (the
    /// halving loop's coarse proxies; 0 for the samplers).
    pub coarse_evals: usize,
    /// Candidates rejected by the constraint pre-filter before any
    /// kernel call.
    pub prefiltered: usize,
    /// Unique points that sized and met the constraints.
    pub feasible: usize,
    /// Unique points that failed to size, broke a constraint, or were
    /// pre-filtered.
    pub infeasible: usize,
    /// Candidate-generation rounds (1 for the samplers; ranking rounds
    /// plus the full-fidelity confirmation for halving).
    pub rounds: usize,
    /// Pareto local-search waves run after candidate generation.
    pub refine_waves: usize,
    /// Halving pool size entering each round (empty for the samplers).
    pub pool_sizes: Vec<usize>,
    /// The request's budget, echoed for reports.
    pub budget: usize,
}

struct PerStrategy {
    runs: Arc<Counter>,
    points: Arc<SharedHistogram>,
    frontier_size: Arc<SharedHistogram>,
}

/// Per-strategy optimizer metrics, registered by
/// [`Explorer::attach_telemetry`] as `optimizer.*`.
pub(crate) struct OptimizerTelemetry {
    clock: Clock,
    latency: Arc<SharedHistogram>,
    prefiltered: Arc<Counter>,
    pool_survival: Arc<SharedHistogram>,
    per: [PerStrategy; 4],
}

impl OptimizerTelemetry {
    pub(crate) fn register(registry: &Registry) -> OptimizerTelemetry {
        let per = Strategy::ALL.map(|s| PerStrategy {
            runs: registry.counter(&format!("optimizer.runs.{s}")),
            points: registry.histogram(&format!("optimizer.points.{s}")),
            frontier_size: registry.histogram(&format!("optimizer.frontier_size.{s}")),
        });
        OptimizerTelemetry {
            clock: registry.clock().clone(),
            latency: registry.histogram("optimizer.latency_s"),
            prefiltered: registry.counter("optimizer.prefiltered"),
            pool_survival: registry.histogram("optimizer.pool_survival"),
            per,
        }
    }
}

/// One optimization run's working state. Public for direct embedding;
/// most callers go through [`Explorer::optimize`].
pub struct Optimizer<'a> {
    explorer: &'a Explorer,
    req: &'a OptimizeRequest,
    lattice: Lattice,
    /// Keys already handled this run (dispatched or pre-filtered).
    seen: HashSet<CacheKey>,
    /// Outcome per handled key; `None` = pre-filtered, never evaluated.
    outcomes: HashMap<CacheKey, Option<EvalResult>>,
    feasible: Vec<(LatticePoint, DesignEval)>,
    frontier: ParetoFrontier,
    sampled: usize,
    evaluated: usize,
    coarse_evals: usize,
    prefiltered: usize,
    infeasible: usize,
    pool_sizes: Vec<usize>,
    child_order: u64,
}

impl<'a> Optimizer<'a> {
    /// A run over `explorer` for one request.
    pub fn new(explorer: &'a Explorer, req: &'a OptimizeRequest) -> Optimizer<'a> {
        Optimizer {
            explorer,
            req,
            lattice: Lattice::new(&req.ranges),
            seen: HashSet::new(),
            outcomes: HashMap::new(),
            feasible: Vec::new(),
            frontier: ParetoFrontier::new(&OBJECTIVE_SENSES),
            sampled: 0,
            evaluated: 0,
            coarse_evals: 0,
            prefiltered: 0,
            infeasible: 0,
            pool_sizes: Vec::new(),
            child_order: 0,
        }
    }

    /// Runs the strategy to completion. See the module docs for the
    /// phase structure; `parent` threads causal tracing through every
    /// phase span and point span.
    pub fn run(mut self, parent: Option<&Span>) -> Result<OptimizeAnswer, TaskPanic> {
        let started = self.explorer.opt_telemetry.as_ref().map(|t| t.clock.now());

        let pool_target = match self.req.strategy {
            // Coarse proxies coalesce heavily, so halving affords a
            // pool as large as the whole budget.
            Strategy::Halving => self.req.budget,
            // Samplers evaluate every kept candidate: spend ~2/5 of
            // the budget seeding, leave the rest for local search.
            _ => (self.req.budget * 2 / 5).max(1),
        }
        .min(self.lattice.point_count());
        let pool = sample(self.req.strategy, &self.lattice, self.req.seed, pool_target);
        self.sampled = pool.len();

        match self.req.strategy {
            Strategy::Halving => self.halve(pool, parent)?,
            _ => {
                self.process(&pool, "optimize.sample", false, parent)?;
            }
        }
        let refine_waves = self.refine(parent)?;

        let best = self.best_of();
        let frontier: Vec<DesignEval> = self
            .frontier
            .members()
            .iter()
            .map(|m| self.feasible[m.id].1)
            .collect();
        let rounds = if self.pool_sizes.is_empty() {
            1
        } else {
            self.pool_sizes.len()
        };

        if let Some(t) = self.explorer.opt_telemetry.as_ref() {
            if let Some(start) = started {
                t.latency.record(t.clock.now() - start);
            }
            let per = &t.per[self.req.strategy.slot()];
            per.runs.inc();
            per.points.record(self.evaluated as f64);
            per.frontier_size.record(frontier.len() as f64);
            t.prefiltered.add(self.prefiltered as u64);
            for pair in self.pool_sizes.windows(2) {
                t.pool_survival
                    .record(pair[1] as f64 / pair[0].max(1) as f64);
            }
        }

        Ok(OptimizeAnswer {
            name: self.req.name.clone(),
            strategy: self.req.strategy,
            best,
            frontier,
            sampled: self.sampled,
            evaluated: self.evaluated,
            coarse_evals: self.coarse_evals,
            prefiltered: self.prefiltered,
            feasible: self.feasible.len(),
            infeasible: self.infeasible,
            rounds,
            refine_waves,
            pool_sizes: self.pool_sizes,
            budget: self.req.budget,
        })
    }

    /// Evaluates a candidate batch: dedup against everything handled
    /// this run, pre-filter, enforce the budget, then one parallel
    /// fan-out through the engine's cache. Feasible results join the
    /// pool and the incremental frontier in input order.
    fn process(
        &mut self,
        points: &[LatticePoint],
        span_name: &'static str,
        coarse: bool,
        parent: Option<&Span>,
    ) -> Result<(), TaskPanic> {
        let mut batch: Vec<(LatticePoint, DesignQuery, CacheKey)> = Vec::new();
        let mut batch_keys: HashSet<CacheKey> = HashSet::new();
        for point in points {
            let query = self.lattice.query(point);
            let key = CacheKey::quantize(&query);
            if self.seen.contains(&key) || batch_keys.contains(&key) {
                continue;
            }
            if prefilter(&query, &self.req.constraints).is_some() {
                self.seen.insert(key);
                self.outcomes.insert(key, None);
                self.prefiltered += 1;
                self.infeasible += 1;
                continue;
            }
            batch_keys.insert(key);
            batch.push((*point, query, key));
        }
        // The budget caps dispatched points. Overflow candidates are
        // dropped *unseen*, so a later wave can still reach them if
        // earlier points turn out cache-warm — but dispatch never can
        // exceed the ceiling.
        let room = self.req.budget.saturating_sub(self.evaluated);
        batch.truncate(room);
        if batch.is_empty() {
            return Ok(());
        }

        let span = parent.map(|p| {
            let mut span = p.child(span_name, self.child_order);
            span.tag("points", batch.len());
            span.tag("coarse", coarse);
            span
        });
        self.child_order += 1;
        let queries: Vec<DesignQuery> = batch.iter().map(|(_, q, _)| *q).collect();
        self.evaluated += queries.len();
        if coarse {
            self.coarse_evals += queries.len();
        }
        let results = self
            .explorer
            .try_evaluate_points_spanned(&queries, span.as_ref())?;
        for ((point, _, key), result) in batch.into_iter().zip(results) {
            self.seen.insert(key);
            self.outcomes.insert(key, Some(result));
            match result {
                Ok(eval) if self.req.constraints.admits(&eval) => {
                    self.feasible.push((point, eval));
                    self.frontier
                        .insert(self.feasible.len() - 1, &eval.objectives());
                }
                _ => self.infeasible += 1,
            }
        }
        Ok(())
    }

    /// Multi-fidelity successive halving: rank the pool by coarse
    /// proxies, keep the better half, sharpen the fidelity, repeat;
    /// survivors evaluate at full fidelity.
    fn halve(
        &mut self,
        mut candidates: Vec<LatticePoint>,
        parent: Option<&Span>,
    ) -> Result<(), TaskPanic> {
        let elite = (candidates.len() / 8).max(4);
        let mut level = START_LEVEL;
        while candidates.len() > elite && level > 0 && self.evaluated < self.req.budget {
            let proxies: Vec<LatticePoint> = candidates
                .iter()
                .map(|c| self.lattice.snap_to_level(c, level))
                .collect();
            self.process(&proxies, "optimize.round", true, parent)?;
            self.pool_sizes.push(candidates.len());
            let objective = self.req.objective;
            let constraints = self.req.constraints;
            let lattice = &self.lattice;
            let outcomes = &self.outcomes;
            let proxy_outcome = |c: &LatticePoint| {
                let key = CacheKey::quantize(&lattice.query(&lattice.snap_to_level(c, level)));
                match outcomes.get(&key) {
                    Some(Some(result)) => {
                        let admitted = matches!(result, Ok(e) if constraints.admits(e));
                        (Some(result), admitted)
                    }
                    _ => (None, false),
                }
            };
            candidates
                .sort_by(|a, b| compare_proxies(objective, proxy_outcome(a), proxy_outcome(b)));
            candidates.truncate(
                candidates
                    .len()
                    .div_ceil(2)
                    .max(elite.min(candidates.len())),
            );
            level -= 1;
        }
        self.pool_sizes.push(candidates.len());
        // Survivors graduate to full fidelity.
        self.process(&candidates, "optimize.round", false, parent)
    }

    /// Pareto local search: evaluate the lattice neighbours of every
    /// frontier member, admit what survives, repeat until the frontier
    /// stops producing unexpanded members (or the budget is gone).
    fn refine(&mut self, parent: Option<&Span>) -> Result<usize, TaskPanic> {
        let mut expanded: HashSet<usize> = HashSet::new();
        let mut waves = 0usize;
        while waves < MAX_WAVES && self.evaluated < self.req.budget {
            let pending: Vec<usize> = self
                .frontier
                .members()
                .iter()
                .map(|m| m.id)
                .filter(|id| !expanded.contains(id))
                .collect();
            if pending.is_empty() {
                break;
            }
            let mut wave: Vec<LatticePoint> = Vec::new();
            for id in pending {
                expanded.insert(id);
                let member = self.feasible[id].0;
                self.lattice.neighbors(&member, &mut wave);
            }
            self.process(&wave, "optimize.refine", false, parent)?;
            waves += 1;
        }
        Ok(waves)
    }

    /// The incumbent under the request's objective; ties resolve to
    /// the earliest admission, like the grid engine.
    fn best_of(&self) -> Option<DesignEval> {
        let scores: Vec<f64> = self
            .feasible
            .iter()
            .map(|(_, e)| self.req.objective.value(e))
            .collect();
        let idx = match self.req.objective.sense() {
            Sense::Maximize => argmax(&scores),
            Sense::Minimize => argmin(&scores),
        }?;
        Some(self.feasible[idx].1)
    }
}

impl Explorer {
    /// Answers one optimize request.
    ///
    /// # Panics
    ///
    /// Re-raises a caught evaluation panic; serving layers use
    /// [`Explorer::try_optimize`] for a structured error instead.
    pub fn optimize(&self, req: &OptimizeRequest) -> OptimizeAnswer {
        match self.try_optimize(req) {
            Ok(answer) => answer,
            Err(caught) => panic!("{caught}"),
        }
    }

    /// [`Explorer::optimize`] with panic isolation: a panicking
    /// evaluation anywhere in the run aborts *this request only*; the
    /// engine stays healthy.
    pub fn try_optimize(&self, req: &OptimizeRequest) -> Result<OptimizeAnswer, TaskPanic> {
        self.try_optimize_spanned(req, None)
    }

    /// [`Explorer::try_optimize`] with causal tracing: each phase
    /// opens a child span under `parent` (`optimize.sample` /
    /// `optimize.round` / `optimize.refine`, orders sequential), and
    /// every point traces through the engine's per-point spans. With
    /// `parent = None` this *is* `try_optimize`.
    pub fn try_optimize_spanned(
        &self,
        req: &OptimizeRequest,
        parent: Option<&Span>,
    ) -> Result<OptimizeAnswer, TaskPanic> {
        Optimizer::new(self, req).run(parent)
    }
}
