//! The query vocabulary of the batch exploration service.
//!
//! A [`Query`] names a region of the design space (grid ranges over the
//! six design coordinates), output constraints, and an objective; the
//! engine answers with the constrained optimum, the Pareto frontier of
//! the feasible set, and evaluation statistics. The ISSUE's running
//! example — "max flight time for wheelbase ≤ 450 mm, payload ≥ 200 g,
//! compute ≥ 20 W" — is a range upper/lower bound plus
//! `Objective::MaxFlightTime`.

use drone_components::battery::CellCount;
use drone_dse::eval::{DesignEval, DesignQuery};
use drone_math::Sense;
use serde::{Deserialize, Serialize};

/// An inclusive `[min, max]` interval sampled at `steps` evenly spaced
/// values (`steps == 1` pins the coordinate at `min`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridRange {
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
    /// Sample count (≥ 1).
    pub steps: usize,
}

impl GridRange {
    /// A sampled interval.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0` or `max < min`.
    pub fn new(min: f64, max: f64, steps: usize) -> GridRange {
        assert!(steps >= 1, "a range needs at least one sample");
        assert!(max >= min, "range [{min}, {max}] is inverted");
        GridRange { min, max, steps }
    }

    /// A coordinate pinned to a single value.
    pub fn fixed(value: f64) -> GridRange {
        GridRange::new(value, value, 1)
    }

    /// The sampled values, low to high.
    pub fn values(&self) -> Vec<f64> {
        if self.steps == 1 {
            return vec![self.min];
        }
        (0..self.steps)
            .map(|i| self.min + (self.max - self.min) * i as f64 / (self.steps - 1) as f64)
            .collect()
    }

    /// Spacing between adjacent samples (0 for a pinned coordinate).
    pub fn step_size(&self) -> f64 {
        if self.steps <= 1 {
            0.0
        } else {
            (self.max - self.min) / (self.steps - 1) as f64
        }
    }

    /// A refined range: one grid cell either side of `center`, clamped
    /// to this range's bounds, resampled at `steps` points. Used by the
    /// adaptive refinement rounds; a pinned coordinate stays pinned.
    pub fn refined_around(&self, center: f64, steps: usize) -> GridRange {
        if self.steps <= 1 {
            return *self;
        }
        let half = self.step_size();
        GridRange::new(
            (center - half).max(self.min),
            (center + half).min(self.max),
            steps.max(2),
        )
    }
}

/// The gridded region of design space a query covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRanges {
    /// Wheelbase, mm.
    pub wheelbase_mm: GridRange,
    /// Candidate cell configurations.
    pub cells: Vec<CellCount>,
    /// Battery capacity, mAh.
    pub capacity_mah: GridRange,
    /// Compute power, W.
    pub compute_power_w: GridRange,
    /// Thrust-to-weight target.
    pub twr: GridRange,
    /// Dead payload, g.
    pub payload_g: GridRange,
}

impl QueryRanges {
    /// The paper's Figure 10 neighbourhood: 100–800 mm, 1S/3S/6S,
    /// 1000–8000 mAh, a 3 W chip at TWR 2 with no payload.
    pub fn figure10_defaults() -> QueryRanges {
        QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 800.0, 8),
            cells: vec![CellCount::S1, CellCount::S3, CellCount::S6],
            capacity_mah: GridRange::new(1000.0, 8000.0, 15),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        }
    }

    /// Materializes the full grid, cells outermost, in a fixed
    /// deterministic order.
    pub fn grid(&self) -> Vec<DesignQuery> {
        let mut points = Vec::with_capacity(self.point_count());
        for &cells in &self.cells {
            for &wheelbase in &self.wheelbase_mm.values() {
                for &capacity in &self.capacity_mah.values() {
                    for &compute in &self.compute_power_w.values() {
                        for &twr in &self.twr.values() {
                            for &payload in &self.payload_g.values() {
                                points.push(DesignQuery {
                                    wheelbase_mm: wheelbase,
                                    cells,
                                    capacity_mah: capacity,
                                    compute_power_w: compute,
                                    twr,
                                    payload_g: payload,
                                });
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// How many points [`QueryRanges::grid`] will produce.
    pub fn point_count(&self) -> usize {
        self.cells.len()
            * self.wheelbase_mm.steps
            * self.capacity_mah.steps
            * self.compute_power_w.steps
            * self.twr.steps
            * self.payload_g.steps
    }

    /// The ranges re-centred on one design point for a refinement
    /// round: every swept coordinate shrinks to one grid cell around
    /// the incumbent, the cell list collapses to the incumbent's.
    pub fn refined_around(&self, best: &DesignQuery, steps: usize) -> QueryRanges {
        QueryRanges {
            wheelbase_mm: self.wheelbase_mm.refined_around(best.wheelbase_mm, steps),
            cells: vec![best.cells],
            capacity_mah: self.capacity_mah.refined_around(best.capacity_mah, steps),
            compute_power_w: self
                .compute_power_w
                .refined_around(best.compute_power_w, steps),
            twr: self.twr.refined_around(best.twr, steps),
            payload_g: self.payload_g.refined_around(best.payload_g, steps),
        }
    }
}

/// Output-side feasibility constraints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Take-off weight ceiling, g.
    pub max_weight_g: Option<f64>,
    /// Flight-time floor, min.
    pub min_flight_time_min: Option<f64>,
    /// Hover compute-share ceiling.
    pub max_compute_share_hover: Option<f64>,
    /// Hover power ceiling, W.
    pub max_hover_power_w: Option<f64>,
}

impl Constraints {
    /// True when the evaluated design satisfies every bound.
    pub fn admits(&self, eval: &DesignEval) -> bool {
        self.max_weight_g.is_none_or(|b| eval.weight_g <= b)
            && self
                .min_flight_time_min
                .is_none_or(|b| eval.flight_time_min >= b)
            && self
                .max_compute_share_hover
                .is_none_or(|b| eval.compute_share_hover <= b)
            && self
                .max_hover_power_w
                .is_none_or(|b| eval.hover_power_w <= b)
    }
}

/// What the query optimizes among constraint-feasible points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Longest hover flight time.
    MaxFlightTime,
    /// Lightest take-off weight.
    MinWeight,
    /// Smallest hover compute share.
    MinComputeShare,
}

impl Objective {
    /// The scalar this objective ranks.
    pub fn value(self, eval: &DesignEval) -> f64 {
        match self {
            Objective::MaxFlightTime => eval.flight_time_min,
            Objective::MinWeight => eval.weight_g,
            Objective::MinComputeShare => eval.compute_share_hover,
        }
    }

    /// The optimization direction.
    pub fn sense(self) -> Sense {
        match self {
            Objective::MaxFlightTime => Sense::Maximize,
            Objective::MinWeight | Objective::MinComputeShare => Sense::Minimize,
        }
    }
}

/// One exploration request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Label carried into the answer and reports.
    pub name: String,
    /// The region to explore.
    pub ranges: QueryRanges,
    /// Feasibility bounds on the evaluated outputs.
    pub constraints: Constraints,
    /// What to optimize.
    pub objective: Objective,
    /// Adaptive refinement rounds around the incumbent (0 = grid only).
    pub refine_rounds: usize,
    /// Samples per swept coordinate in each refinement round.
    pub refine_steps: usize,
}

impl Query {
    /// A grid query with two refinement rounds of 5 samples per axis.
    pub fn new(name: &str, ranges: QueryRanges, objective: Objective) -> Query {
        Query {
            name: name.to_owned(),
            ranges,
            constraints: Constraints::default(),
            objective,
            refine_rounds: 2,
            refine_steps: 5,
        }
    }

    /// Sets the constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> Query {
        self.constraints = constraints;
        self
    }

    /// Sets the refinement schedule.
    pub fn with_refinement(mut self, rounds: usize, steps: usize) -> Query {
        self.refine_rounds = rounds;
        self.refine_steps = steps;
        self
    }
}

/// The engine's answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The query's label.
    pub name: String,
    /// The constrained optimum, when any point was feasible.
    pub best: Option<DesignEval>,
    /// Pareto frontier (flight time ↑, weight ↓, compute share ↓) of
    /// the feasible set, in admission order.
    pub frontier: Vec<DesignEval>,
    /// Points dispatched, including ones served from the cache and
    /// refinement-round revisits.
    pub evaluated: usize,
    /// Unique designs that sized and met the constraints.
    pub feasible: usize,
    /// Unique designs that failed to size or broke a constraint.
    pub infeasible: usize,
    /// Rounds run (1 grid round + refinements that had an incumbent).
    pub rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ranges_sample_inclusively() {
        let r = GridRange::new(0.0, 10.0, 5);
        assert_eq!(r.values(), vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        assert_eq!(r.step_size(), 2.5);
        assert_eq!(GridRange::fixed(4.0).values(), vec![4.0]);
    }

    #[test]
    fn refinement_shrinks_around_the_center_and_clamps() {
        let r = GridRange::new(0.0, 10.0, 5);
        let refined = r.refined_around(5.0, 5);
        assert_eq!((refined.min, refined.max), (2.5, 7.5));
        let edge = r.refined_around(0.0, 5);
        assert_eq!(edge.min, 0.0);
        // Pinned coordinates never widen.
        let pinned = GridRange::fixed(3.0).refined_around(3.0, 5);
        assert_eq!(pinned.values(), vec![3.0]);
    }

    #[test]
    fn grid_enumerates_the_product_space() {
        let ranges = QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 450.0, 2),
            cells: vec![CellCount::S1, CellCount::S3],
            capacity_mah: GridRange::new(1000.0, 3000.0, 3),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        };
        let grid = ranges.grid();
        assert_eq!(grid.len(), ranges.point_count());
        assert_eq!(grid.len(), 12);
        // Deterministic order: first point is the all-minima corner of
        // the first cell config.
        assert_eq!(grid[0].cells, CellCount::S1);
        assert_eq!(grid[0].wheelbase_mm, 100.0);
        assert_eq!(grid[0].capacity_mah, 1000.0);
    }

    #[test]
    fn constraints_gate_on_outputs() {
        let eval = drone_dse::eval::evaluate(&DesignQuery::new(450.0, CellCount::S3, 4000.0))
            .expect("feasible");
        assert!(Constraints::default().admits(&eval));
        let tight = Constraints {
            max_weight_g: Some(eval.weight_g - 1.0),
            ..Constraints::default()
        };
        assert!(!tight.admits(&eval));
        let loose = Constraints {
            min_flight_time_min: Some(eval.flight_time_min / 2.0),
            max_hover_power_w: Some(eval.hover_power_w + 1.0),
            ..Constraints::default()
        };
        assert!(loose.admits(&eval));
    }

    #[test]
    fn objectives_rank_in_their_sense() {
        assert_eq!(Objective::MaxFlightTime.sense(), Sense::Maximize);
        assert_eq!(Objective::MinWeight.sense(), Sense::Minimize);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = GridRange::new(5.0, 1.0, 3);
    }
}
