//! The query vocabulary of the batch exploration service.
//!
//! A [`Query`] names a region of the design space (grid ranges over the
//! six design coordinates), output constraints, and an objective; the
//! engine answers with the constrained optimum, the Pareto frontier of
//! the feasible set, and evaluation statistics. The ISSUE's running
//! example — "max flight time for wheelbase ≤ 450 mm, payload ≥ 200 g,
//! compute ≥ 20 W" — is a range upper/lower bound plus
//! `Objective::MaxFlightTime`.

use drone_components::battery::CellCount;
use drone_dse::eval::{DesignEval, DesignQuery};
use drone_math::Sense;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive `[min, max]` interval sampled at `steps` evenly spaced
/// values (`steps == 1` pins the coordinate at `min`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridRange {
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
    /// Sample count (≥ 1).
    pub steps: usize,
}

impl GridRange {
    /// A sampled interval.
    ///
    /// # Panics
    ///
    /// Panics when `steps == 0` or `max < min`.
    pub fn new(min: f64, max: f64, steps: usize) -> GridRange {
        assert!(steps >= 1, "a range needs at least one sample");
        assert!(max >= min, "range [{min}, {max}] is inverted");
        GridRange { min, max, steps }
    }

    /// A coordinate pinned to a single value.
    pub fn fixed(value: f64) -> GridRange {
        GridRange::new(value, value, 1)
    }

    /// The `i`-th sampled value, computed as `min + i·step` — one
    /// multiply per value, no running accumulation to drift — with the
    /// endpoints pinned exactly: index 0 is `min` and index `steps - 1`
    /// is `max`, whatever rounding `min + (steps-1)·step` would have
    /// produced. Indices past the end clamp to `max`.
    pub fn value_at(&self, i: usize) -> f64 {
        if self.steps <= 1 {
            self.min
        } else if i >= self.steps - 1 {
            self.max
        } else {
            self.min + i as f64 * self.step_size()
        }
    }

    /// The sampled values, low to high.
    pub fn values(&self) -> Vec<f64> {
        (0..self.steps).map(|i| self.value_at(i)).collect()
    }

    /// Spacing between adjacent samples (0 for a pinned coordinate).
    pub fn step_size(&self) -> f64 {
        if self.steps <= 1 {
            0.0
        } else {
            (self.max - self.min) / (self.steps - 1) as f64
        }
    }

    /// A refined range: one grid cell either side of `center`, clamped
    /// to this range's bounds, resampled at `steps` points. Used by the
    /// adaptive refinement rounds; a pinned coordinate stays pinned.
    pub fn refined_around(&self, center: f64, steps: usize) -> GridRange {
        if self.steps <= 1 {
            return *self;
        }
        // The incumbent always lies on the grid, but clamp anyway so an
        // unvalidated caller-supplied center cannot invert the range.
        let center = center.clamp(self.min, self.max);
        let half = self.step_size();
        GridRange::new(
            (center - half).max(self.min),
            (center + half).min(self.max),
            steps.max(2),
        )
    }

    /// Validates one axis against the service limits: finite, ordered,
    /// bounded magnitude, and a sane sample count.
    pub fn validate(&self, field: &'static str, limits: &QueryLimits) -> Result<(), QueryError> {
        for value in [self.min, self.max] {
            if !value.is_finite() {
                return Err(QueryError::NonFinite { field, value });
            }
            if value.abs() > limits.max_coordinate {
                return Err(QueryError::OutOfRange {
                    field,
                    value,
                    bound: limits.max_coordinate,
                });
            }
        }
        if self.max < self.min {
            return Err(QueryError::InvertedRange {
                field,
                min: self.min,
                max: self.max,
            });
        }
        if self.steps == 0 || self.steps > limits.max_steps {
            return Err(QueryError::BadStepCount {
                field,
                steps: self.steps,
                max: limits.max_steps,
            });
        }
        Ok(())
    }
}

/// Resource bounds a query must respect before the engine will touch
/// it. Untrusted traffic (the `drone-serve` request path) validates
/// against these; the defaults bound a query to a grid the engine
/// answers in well under a second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryLimits {
    /// Largest per-axis sample count.
    pub max_steps: usize,
    /// Largest total grid size, counting worst-case refinement rounds.
    pub max_points: usize,
    /// Largest absolute coordinate value accepted on any axis.
    pub max_coordinate: f64,
    /// Most refinement rounds a query may request.
    pub max_refine_rounds: usize,
    /// Most per-axis samples a refinement round may request.
    pub max_refine_steps: usize,
    /// Longest accepted query name, bytes.
    pub max_name_bytes: usize,
    /// Largest kernel-evaluation budget an optimize request may ask
    /// for (see [`crate::optimize::OptimizeRequest`]).
    pub max_optimize_budget: usize,
}

impl Default for QueryLimits {
    fn default() -> QueryLimits {
        QueryLimits {
            max_steps: 64,
            max_points: 20_000,
            max_coordinate: 1.0e6,
            max_refine_rounds: 4,
            max_refine_steps: 9,
            max_name_bytes: 200,
            max_optimize_budget: 4096,
        }
    }
}

/// Why a query was rejected before evaluation. Unlike [`DesignQuery`]
/// infeasibility (a modelled answer), these are request-shape errors:
/// the engine never sees the query. Every variant is a typed, printable
/// error — the serving layer must never panic on untrusted input.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A coordinate bound is NaN or infinite.
    NonFinite {
        /// Offending axis.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A coordinate bound exceeds the service's magnitude cap.
    OutOfRange {
        /// Offending axis.
        field: &'static str,
        /// Offending value.
        value: f64,
        /// The configured `max_coordinate`.
        bound: f64,
    },
    /// `max < min` on an axis.
    InvertedRange {
        /// Offending axis.
        field: &'static str,
        /// Lower bound supplied.
        min: f64,
        /// Upper bound supplied.
        max: f64,
    },
    /// A step count of zero or beyond the per-axis cap.
    BadStepCount {
        /// Offending axis.
        field: &'static str,
        /// Steps supplied.
        steps: usize,
        /// The configured `max_steps`.
        max: usize,
    },
    /// The cell-configuration list is empty.
    NoCells,
    /// The grid (plus worst-case refinement) exceeds the point budget.
    TooManyPoints {
        /// Points the query would evaluate.
        points: usize,
        /// The configured `max_points`.
        max: usize,
    },
    /// The refinement schedule exceeds the configured caps.
    RefinementTooDeep {
        /// Rounds requested.
        rounds: usize,
        /// Per-axis samples requested.
        steps: usize,
    },
    /// The query name is longer than the service accepts.
    NameTooLong {
        /// Name length, bytes.
        len: usize,
        /// The configured `max_name_bytes`.
        max: usize,
    },
    /// An optimize request's kernel-evaluation budget is zero or past
    /// the configured cap.
    BadBudget {
        /// Budget requested.
        budget: usize,
        /// The configured `max_optimize_budget`.
        max: usize,
    },
    /// A shard spec with a zero/oversized count or an out-of-range
    /// index.
    BadShard {
        /// Shard index requested.
        index: u32,
        /// Shard count requested.
        count: u32,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NonFinite { field, value } => {
                write!(f, "{field}: bound {value} is not finite")
            }
            QueryError::OutOfRange {
                field,
                value,
                bound,
            } => write!(f, "{field}: |{value}| exceeds the coordinate cap {bound}"),
            QueryError::InvertedRange { field, min, max } => {
                write!(f, "{field}: range [{min}, {max}] is inverted")
            }
            QueryError::BadStepCount { field, steps, max } => {
                write!(f, "{field}: step count {steps} outside 1..={max}")
            }
            QueryError::NoCells => f.write_str("cells: at least one cell configuration required"),
            QueryError::TooManyPoints { points, max } => {
                write!(f, "grid of {points} points exceeds the budget of {max}")
            }
            QueryError::RefinementTooDeep { rounds, steps } => {
                write!(f, "refinement {rounds} round(s) x {steps} step(s) too deep")
            }
            QueryError::NameTooLong { len, max } => {
                write!(f, "query name of {len} bytes exceeds {max}")
            }
            QueryError::BadBudget { budget, max } => {
                write!(f, "optimize budget {budget} outside 1..={max}")
            }
            QueryError::BadShard { index, count } => {
                write!(
                    f,
                    "shard: index {index} / count {count} invalid (need 1 <= count <= {} and index < count)",
                    ShardSpec::MAX_COUNT
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The gridded region of design space a query covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRanges {
    /// Wheelbase, mm.
    pub wheelbase_mm: GridRange,
    /// Candidate cell configurations.
    pub cells: Vec<CellCount>,
    /// Battery capacity, mAh.
    pub capacity_mah: GridRange,
    /// Compute power, W.
    pub compute_power_w: GridRange,
    /// Thrust-to-weight target.
    pub twr: GridRange,
    /// Dead payload, g.
    pub payload_g: GridRange,
}

impl QueryRanges {
    /// The paper's Figure 10 neighbourhood: 100–800 mm, 1S/3S/6S,
    /// 1000–8000 mAh, a 3 W chip at TWR 2 with no payload.
    pub fn figure10_defaults() -> QueryRanges {
        QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 800.0, 8),
            cells: vec![CellCount::S1, CellCount::S3, CellCount::S6],
            capacity_mah: GridRange::new(1000.0, 8000.0, 15),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
            payload_g: GridRange::fixed(0.0),
        }
    }

    /// Materializes the full grid, cells outermost, in a fixed
    /// deterministic order.
    pub fn grid(&self) -> Vec<DesignQuery> {
        let mut points = Vec::with_capacity(self.point_count());
        for &cells in &self.cells {
            for &wheelbase in &self.wheelbase_mm.values() {
                for &capacity in &self.capacity_mah.values() {
                    for &compute in &self.compute_power_w.values() {
                        for &twr in &self.twr.values() {
                            for &payload in &self.payload_g.values() {
                                points.push(DesignQuery {
                                    wheelbase_mm: wheelbase,
                                    cells,
                                    capacity_mah: capacity,
                                    compute_power_w: compute,
                                    twr,
                                    payload_g: payload,
                                });
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// How many points [`QueryRanges::grid`] will produce.
    pub fn point_count(&self) -> usize {
        self.cells.len()
            * self.wheelbase_mm.steps
            * self.capacity_mah.steps
            * self.compute_power_w.steps
            * self.twr.steps
            * self.payload_g.steps
    }

    /// How many axes are actually swept (more than one sample).
    pub fn swept_axes(&self) -> usize {
        [
            self.wheelbase_mm.steps,
            self.capacity_mah.steps,
            self.compute_power_w.steps,
            self.twr.steps,
            self.payload_g.steps,
        ]
        .iter()
        .filter(|&&s| s > 1)
        .count()
    }

    /// Validates every axis and the cell list against the limits.
    pub fn validate(&self, limits: &QueryLimits) -> Result<(), QueryError> {
        self.wheelbase_mm.validate("wheelbase_mm", limits)?;
        self.capacity_mah.validate("capacity_mah", limits)?;
        self.compute_power_w.validate("compute_power_w", limits)?;
        self.twr.validate("twr", limits)?;
        self.payload_g.validate("payload_g", limits)?;
        if self.cells.is_empty() {
            return Err(QueryError::NoCells);
        }
        Ok(())
    }

    /// The ranges re-centred on one design point for a refinement
    /// round: every swept coordinate shrinks to one grid cell around
    /// the incumbent, the cell list collapses to the incumbent's.
    pub fn refined_around(&self, best: &DesignQuery, steps: usize) -> QueryRanges {
        QueryRanges {
            wheelbase_mm: self.wheelbase_mm.refined_around(best.wheelbase_mm, steps),
            cells: vec![best.cells],
            capacity_mah: self.capacity_mah.refined_around(best.capacity_mah, steps),
            compute_power_w: self
                .compute_power_w
                .refined_around(best.compute_power_w, steps),
            twr: self.twr.refined_around(best.twr, steps),
            payload_g: self.payload_g.refined_around(best.payload_g, steps),
        }
    }
}

/// A process-level shard assignment: restrict evaluation to the grid
/// points whose quantized-coordinate FNV hash routes to `index` of
/// `count` shards — the memo cache's shard scheme lifted to process
/// level (see [`crate::cache::shard_of`]). Each round's grid is
/// partitioned exactly: the `count` shard grids are disjoint and their
/// union is the full grid, so per-shard `evaluated` counts sum to the
/// unsharded total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This shard's position in `0..count`.
    pub index: u32,
    /// Total shard count (≥ 1, ≤ [`ShardSpec::MAX_COUNT`]).
    pub count: u32,
}

impl ShardSpec {
    /// Most shards a query may name; bounds untrusted input.
    pub const MAX_COUNT: u32 = 4096;

    /// Checks `1 <= count <= MAX_COUNT` and `index < count`.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.count == 0 || self.count > ShardSpec::MAX_COUNT || self.index >= self.count {
            return Err(QueryError::BadShard {
                index: self.index,
                count: self.count,
            });
        }
        Ok(())
    }
}

/// Output-side feasibility constraints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Take-off weight ceiling, g.
    pub max_weight_g: Option<f64>,
    /// Flight-time floor, min.
    pub min_flight_time_min: Option<f64>,
    /// Hover compute-share ceiling.
    pub max_compute_share_hover: Option<f64>,
    /// Hover power ceiling, W.
    pub max_hover_power_w: Option<f64>,
}

impl Constraints {
    /// True when the evaluated design satisfies every bound.
    pub fn admits(&self, eval: &DesignEval) -> bool {
        self.max_weight_g.is_none_or(|b| eval.weight_g <= b)
            && self
                .min_flight_time_min
                .is_none_or(|b| eval.flight_time_min >= b)
            && self
                .max_compute_share_hover
                .is_none_or(|b| eval.compute_share_hover <= b)
            && self
                .max_hover_power_w
                .is_none_or(|b| eval.hover_power_w <= b)
    }
}

/// What the query optimizes among constraint-feasible points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Longest hover flight time.
    MaxFlightTime,
    /// Lightest take-off weight.
    MinWeight,
    /// Smallest hover compute share.
    MinComputeShare,
}

impl Objective {
    /// The scalar this objective ranks.
    pub fn value(self, eval: &DesignEval) -> f64 {
        match self {
            Objective::MaxFlightTime => eval.flight_time_min,
            Objective::MinWeight => eval.weight_g,
            Objective::MinComputeShare => eval.compute_share_hover,
        }
    }

    /// The optimization direction.
    pub fn sense(self) -> Sense {
        match self {
            Objective::MaxFlightTime => Sense::Maximize,
            Objective::MinWeight | Objective::MinComputeShare => Sense::Minimize,
        }
    }
}

/// One exploration request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Label carried into the answer and reports.
    pub name: String,
    /// The region to explore.
    pub ranges: QueryRanges,
    /// Feasibility bounds on the evaluated outputs.
    pub constraints: Constraints,
    /// What to optimize.
    pub objective: Objective,
    /// Adaptive refinement rounds around the incumbent (0 = grid only).
    pub refine_rounds: usize,
    /// Samples per swept coordinate in each refinement round.
    pub refine_steps: usize,
    /// When set, evaluate only this process-level partition of each
    /// round's grid (the router's scatter path); `None` — the default
    /// everywhere outside the router — evaluates the full grid.
    pub shard: Option<ShardSpec>,
}

impl Query {
    /// A grid query with two refinement rounds of 5 samples per axis.
    pub fn new(name: &str, ranges: QueryRanges, objective: Objective) -> Query {
        Query {
            name: name.to_owned(),
            ranges,
            constraints: Constraints::default(),
            objective,
            refine_rounds: 2,
            refine_steps: 5,
            shard: None,
        }
    }

    /// Restricts evaluation to one process-level shard of the grid.
    pub fn with_shard(mut self, index: u32, count: u32) -> Query {
        self.shard = Some(ShardSpec { index, count });
        self
    }

    /// Sets the constraints.
    pub fn with_constraints(mut self, constraints: Constraints) -> Query {
        self.constraints = constraints;
        self
    }

    /// Sets the refinement schedule.
    pub fn with_refinement(mut self, rounds: usize, steps: usize) -> Query {
        self.refine_rounds = rounds;
        self.refine_steps = steps;
        self
    }

    /// Validates the whole request against the service limits: axis
    /// sanity, refinement depth, and the total evaluation budget
    /// (the base grid plus the worst-case refinement rounds).
    ///
    /// This is the gate the serving layer runs on untrusted input;
    /// a query that passes cannot panic the engine or blow the point
    /// budget.
    pub fn validate(&self, limits: &QueryLimits) -> Result<(), QueryError> {
        if self.name.len() > limits.max_name_bytes {
            return Err(QueryError::NameTooLong {
                len: self.name.len(),
                max: limits.max_name_bytes,
            });
        }
        self.ranges.validate(limits)?;
        if self.refine_rounds > limits.max_refine_rounds
            || (self.refine_rounds > 0 && self.refine_steps > limits.max_refine_steps)
        {
            return Err(QueryError::RefinementTooDeep {
                rounds: self.refine_rounds,
                steps: self.refine_steps,
            });
        }
        if let Some(shard) = self.shard {
            shard.validate()?;
        }
        let points = self.estimated_cost_units();
        if points as usize > limits.max_points {
            return Err(QueryError::TooManyPoints {
                points: points as usize,
                max: limits.max_points,
            });
        }
        Ok(())
    }

    /// Worst-case evaluation budget in cost units (grid points): the
    /// base grid plus every refinement round resampling each swept axis
    /// at `refine_steps` (the engine floors each round at 2 per swept
    /// axis). This is the number the serving layer's per-request
    /// deadline sheds against *before* any evaluation starts.
    pub fn estimated_cost_units(&self) -> u64 {
        let per_round = self
            .refine_steps
            .max(2)
            .saturating_pow(self.ranges.swept_axes() as u32);
        self.ranges
            .point_count()
            .saturating_add(self.refine_rounds.saturating_mul(per_round)) as u64
    }
}

/// The engine's answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// The query's label.
    pub name: String,
    /// The constrained optimum, when any point was feasible.
    pub best: Option<DesignEval>,
    /// Pareto frontier (flight time ↑, weight ↓, compute share ↓) of
    /// the feasible set, in admission order.
    pub frontier: Vec<DesignEval>,
    /// Points dispatched, including ones served from the cache and
    /// refinement-round revisits.
    pub evaluated: usize,
    /// Unique designs that sized and met the constraints.
    pub feasible: usize,
    /// Unique designs that failed to size or broke a constraint.
    pub infeasible: usize,
    /// Rounds run (1 grid round + refinements that had an incumbent).
    pub rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_ranges_sample_inclusively() {
        let r = GridRange::new(0.0, 10.0, 5);
        assert_eq!(r.values(), vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        assert_eq!(r.step_size(), 2.5);
        assert_eq!(GridRange::fixed(4.0).values(), vec![4.0]);
    }

    #[test]
    fn refinement_shrinks_around_the_center_and_clamps() {
        let r = GridRange::new(0.0, 10.0, 5);
        let refined = r.refined_around(5.0, 5);
        assert_eq!((refined.min, refined.max), (2.5, 7.5));
        let edge = r.refined_around(0.0, 5);
        assert_eq!(edge.min, 0.0);
        // Pinned coordinates never widen.
        let pinned = GridRange::fixed(3.0).refined_around(3.0, 5);
        assert_eq!(pinned.values(), vec![3.0]);
    }

    #[test]
    fn grid_enumerates_the_product_space() {
        let ranges = QueryRanges {
            wheelbase_mm: GridRange::new(100.0, 450.0, 2),
            cells: vec![CellCount::S1, CellCount::S3],
            capacity_mah: GridRange::new(1000.0, 3000.0, 3),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        };
        let grid = ranges.grid();
        assert_eq!(grid.len(), ranges.point_count());
        assert_eq!(grid.len(), 12);
        // Deterministic order: first point is the all-minima corner of
        // the first cell config.
        assert_eq!(grid[0].cells, CellCount::S1);
        assert_eq!(grid[0].wheelbase_mm, 100.0);
        assert_eq!(grid[0].capacity_mah, 1000.0);
    }

    #[test]
    fn constraints_gate_on_outputs() {
        let eval = drone_dse::eval::evaluate(&DesignQuery::new(450.0, CellCount::S3, 4000.0))
            .expect("feasible");
        assert!(Constraints::default().admits(&eval));
        let tight = Constraints {
            max_weight_g: Some(eval.weight_g - 1.0),
            ..Constraints::default()
        };
        assert!(!tight.admits(&eval));
        let loose = Constraints {
            min_flight_time_min: Some(eval.flight_time_min / 2.0),
            max_hover_power_w: Some(eval.hover_power_w + 1.0),
            ..Constraints::default()
        };
        assert!(loose.admits(&eval));
    }

    #[test]
    fn objectives_rank_in_their_sense() {
        assert_eq!(Objective::MaxFlightTime.sense(), Sense::Maximize);
        assert_eq!(Objective::MinWeight.sense(), Sense::Minimize);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = GridRange::new(5.0, 1.0, 3);
    }

    #[test]
    fn refinement_clamps_an_out_of_range_center() {
        // An unvalidated center outside the range must not invert it.
        let r = GridRange::new(0.0, 10.0, 5);
        let refined = r.refined_around(99.0, 3);
        assert!(refined.min <= refined.max);
        assert_eq!(refined.max, 10.0);
        let nan = r.refined_around(f64::NAN, 3);
        assert!(nan.min <= nan.max);
    }

    fn valid_query() -> Query {
        Query::new(
            "ok",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 3),
                cells: vec![CellCount::S3],
                capacity_mah: GridRange::new(2000.0, 6000.0, 5),
                compute_power_w: GridRange::fixed(3.0),
                twr: GridRange::fixed(2.0),
                payload_g: GridRange::fixed(0.0),
            },
            Objective::MaxFlightTime,
        )
    }

    #[test]
    fn validation_accepts_the_running_example() {
        assert_eq!(valid_query().validate(&QueryLimits::default()), Ok(()));
    }

    #[test]
    fn validation_rejects_every_malformed_shape_with_a_typed_error() {
        let limits = QueryLimits::default();

        let mut q = valid_query();
        q.ranges.wheelbase_mm = GridRange {
            min: f64::NAN,
            max: 450.0,
            steps: 3,
        };
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::NonFinite {
                field: "wheelbase_mm",
                ..
            })
        ));

        let mut q = valid_query();
        q.ranges.capacity_mah = GridRange {
            min: 6000.0,
            max: 2000.0,
            steps: 5,
        };
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::InvertedRange {
                field: "capacity_mah",
                ..
            })
        ));

        let mut q = valid_query();
        q.ranges.payload_g = GridRange {
            min: 0.0,
            max: 100.0,
            steps: 0,
        };
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::BadStepCount {
                field: "payload_g",
                ..
            })
        ));

        let mut q = valid_query();
        q.ranges.twr = GridRange {
            min: 2.0,
            max: 1.0e9,
            steps: 2,
        };
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::OutOfRange { .. })
        ));

        let mut q = valid_query();
        q.ranges.cells.clear();
        assert_eq!(q.validate(&limits), Err(QueryError::NoCells));

        let mut q = valid_query();
        q.ranges.capacity_mah.steps = 64;
        q.ranges.wheelbase_mm.steps = 64;
        q.ranges.payload_g = GridRange::new(0.0, 100.0, 10);
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::TooManyPoints { .. })
        ));

        let q = valid_query().with_refinement(100, 5);
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::RefinementTooDeep { .. })
        ));

        let mut q = valid_query();
        q.name = "n".repeat(1000);
        assert!(matches!(
            q.validate(&limits),
            Err(QueryError::NameTooLong { .. })
        ));
    }

    #[test]
    fn validation_budget_counts_refinement_rounds() {
        // 15-point grid, but 2 rounds x 5^2 samples on the two swept
        // axes add 50 more: a 40-point budget must reject it.
        let q = valid_query().with_refinement(2, 5);
        let tight = QueryLimits {
            max_points: 40,
            ..QueryLimits::default()
        };
        assert!(matches!(
            q.validate(&tight),
            Err(QueryError::TooManyPoints { points: 65, .. })
        ));
        assert_eq!(q.validate(&QueryLimits::default()), Ok(()));
    }

    #[test]
    fn shard_specs_validate_index_and_count() {
        let limits = QueryLimits::default();
        assert_eq!(valid_query().with_shard(0, 1).validate(&limits), Ok(()));
        assert_eq!(valid_query().with_shard(3, 4).validate(&limits), Ok(()));
        for (index, count) in [(0, 0), (4, 4), (0, ShardSpec::MAX_COUNT + 1)] {
            assert!(matches!(
                valid_query().with_shard(index, count).validate(&limits),
                Err(QueryError::BadShard { .. })
            ));
        }
    }

    #[test]
    fn query_errors_render_for_humans() {
        let err = QueryError::InvertedRange {
            field: "twr",
            min: 3.0,
            max: 1.0,
        };
        assert!(err.to_string().contains("twr"));
        assert!(QueryError::NoCells.to_string().contains("cells"));
    }
}
