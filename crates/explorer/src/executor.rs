//! A deterministic work-stealing executor over `std::thread`.
//!
//! Design-point evaluation is embarrassingly parallel but wildly
//! uneven: infeasible corners fail in microseconds while deep sizing
//! fixed points iterate for a while. A static split would leave workers
//! idle, so each worker owns a deque of contiguous index blocks, drains
//! it from the front, and steals from the *back* of a victim's deque
//! when its own runs dry — the classic Blumofe/Leiserson discipline,
//! here with mutexed `VecDeque`s since blocks are coarse enough that
//! queue traffic is negligible.
//!
//! **Determinism contract:** results are keyed by the input index, and
//! the output vector is assembled from those keys — the caller sees
//! byte-identical output at any thread count, no matter how the blocks
//! were interleaved or stolen. Scheduling order is *not* deterministic;
//! result placement is.
//!
//! **Panic isolation contract:** every task body runs inside
//! [`std::panic::catch_unwind`], so one panicking item cannot kill a
//! worker thread, poison a deque lock, or take down the other items in
//! the batch. [`ParallelExecutor::try_map`] surfaces each panic as a
//! per-index [`TaskPanic`]; [`ParallelExecutor::map`] keeps its classic
//! contract by re-raising the first one on the calling thread *after*
//! every worker has parked cleanly. Deque locks recover from poisoning
//! via `into_inner` semantics as a second line of defense.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Session-wide default thread count; 0 means "ask the OS". The `repro`
/// binary's `--threads N` flag lands here.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default worker count used by
/// [`ParallelExecutor::with_default_threads`]. Pass 0 to restore the
/// hardware default.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count [`ParallelExecutor::with_default_threads`] will
/// use: the [`set_default_threads`] override when set, otherwise the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// One task body panicked: the caught payload, rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload (`&str`/`String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a caught panic payload as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Locks a deque, recovering the guard if a previous holder panicked.
/// Task bodies are unwind-caught so this should never trigger, but a
/// poisoned queue must degrade to "keep scheduling", not abort the map.
fn lock_deque<T>(deque: &Mutex<T>) -> MutexGuard<'_, T> {
    deque.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-width pool that fans an indexed workload across cores.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// An executor sized by [`default_threads`].
    pub fn with_default_threads() -> ParallelExecutor {
        ParallelExecutor::new(default_threads())
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker computed what.
    ///
    /// `f` receives `(index, &item)`; it must be pure with respect to
    /// the output (side effects run in nondeterministic order).
    ///
    /// # Panics
    ///
    /// If any task body panics, the first panic (by input index) is
    /// re-raised here on the calling thread — but only after every
    /// worker has finished and parked, so no thread leaks and no lock
    /// stays poisoned. Callers that want the panic as data use
    /// [`ParallelExecutor::try_map`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|slot| match slot {
                Ok(value) => value,
                Err(caught) => panic!("{caught}"),
            })
            .collect()
    }

    /// [`ParallelExecutor::map`] with per-item panic isolation: each
    /// task body runs inside `catch_unwind`, so a panicking item
    /// becomes `Err(TaskPanic)` in its own slot while every other item
    /// still evaluates. Workers never die and deques never poison,
    /// whatever `f` does.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map_located(items, |_, i, item| f(i, item))
    }

    /// [`ParallelExecutor::try_map`] where the task body also learns
    /// *which worker* it runs on: `f` receives
    /// `(worker, index, &item)`. The worker index is scheduling
    /// -dependent — tracing annotates spans with it but must never let
    /// it influence the output.
    pub fn try_map_located<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &T) -> R + Sync,
    {
        let guarded = |worker: usize, i: usize, item: &T| -> Result<R, TaskPanic> {
            catch_unwind(AssertUnwindSafe(|| f(worker, i, item))).map_err(|payload| TaskPanic {
                message: panic_message(payload.as_ref()),
            })
        };
        if self.threads == 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| guarded(0, i, t))
                .collect();
        }

        // Coarse contiguous blocks: a few per worker so stealing has
        // something to grab without making queue traffic the hot path.
        let block = items.len().div_ceil(self.threads * 4).max(1);
        let deques: Vec<Mutex<VecDeque<Range<usize>>>> = (0..self.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (b, start) in (0..items.len()).step_by(block).enumerate() {
            let end = (start + block).min(items.len());
            lock_deque(&deques[b % self.threads]).push_back(start..end);
        }

        let mut slots: Vec<Option<Result<R, TaskPanic>>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        let locals = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|worker| {
                    let deques = &deques;
                    let guarded = &guarded;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, Result<R, TaskPanic>)> = Vec::new();
                        loop {
                            // Own work first (front), then steal from a
                            // victim's back. No new blocks ever appear,
                            // so one empty sweep over every deque means
                            // this worker is done.
                            let next = {
                                let own = lock_deque(&deques[worker]).pop_front();
                                own.or_else(|| {
                                    (1..deques.len()).find_map(|offset| {
                                        let victim = (worker + offset) % deques.len();
                                        lock_deque(&deques[victim]).pop_back()
                                    })
                                })
                            };
                            let Some(range) = next else { break };
                            for i in range {
                                local.push((i, guarded(worker, i, &items[i])));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // Task bodies are unwind-caught, so a worker thread
                    // itself cannot panic; keep the join non-fatal
                    // anyway so a scheduling bug degrades per item.
                    h.join().unwrap_or_default()
                })
                .collect::<Vec<_>>()
        });
        for local in locals {
            for (i, r) in local {
                debug_assert!(slots[i].is_none(), "index {i} evaluated twice");
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    Err(TaskPanic {
                        message: format!("index {i} was never evaluated (worker died)"),
                    })
                })
            })
            .collect()
    }

    /// Block-batched dispatch: instead of one call per item, `f` is
    /// invoked once per contiguous *block* `(worker, start, &items
    /// [start..start+len])` and must return exactly one `Result` per
    /// block item, in block order. This is the seam batched kernels
    /// plug into: a block becomes one `evaluate_many` call instead of
    /// `len` scalar calls.
    ///
    /// Blocks are the same contiguous ranges [`ParallelExecutor::
    /// try_map`] schedules (a few per worker, work-stealing between
    /// them); the serial path hands the whole slice over as one block.
    /// Results are scattered back by input index, so the output — like
    /// `try_map`'s — is in input order at any thread count. How items
    /// are *grouped into blocks* does depend on the thread count;
    /// callers needing byte-identical output must use a per-item-
    /// independent `f` (a batched kernel whose lanes never interact
    /// qualifies).
    ///
    /// A panic inside `f` fails only that block: every slot of the
    /// block gets an `Err(TaskPanic)` with the payload text. Callers
    /// wanting finer isolation catch per item inside `f` and report
    /// through the per-slot `Result`s.
    pub fn try_map_blocked<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> Vec<Result<R, TaskPanic>> + Sync,
    {
        let run_block = |worker: usize, range: Range<usize>| -> Vec<Result<R, TaskPanic>> {
            let block = &items[range.clone()];
            match catch_unwind(AssertUnwindSafe(|| f(worker, range.start, block))) {
                Ok(results) => {
                    assert_eq!(
                        results.len(),
                        block.len(),
                        "block callback must return one result per item"
                    );
                    results
                }
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    block
                        .iter()
                        .map(|_| {
                            Err(TaskPanic {
                                message: message.clone(),
                            })
                        })
                        .collect()
                }
            }
        };
        if self.threads == 1 || items.len() <= 1 {
            return run_block(0, 0..items.len());
        }

        let block = items.len().div_ceil(self.threads * 4).max(1);
        let deques: Vec<Mutex<VecDeque<Range<usize>>>> = (0..self.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        for (b, start) in (0..items.len()).step_by(block).enumerate() {
            let end = (start + block).min(items.len());
            lock_deque(&deques[b % self.threads]).push_back(start..end);
        }

        let mut slots: Vec<Option<Result<R, TaskPanic>>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        let locals = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|worker| {
                    let deques = &deques;
                    let run_block = &run_block;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, Vec<Result<R, TaskPanic>>)> = Vec::new();
                        loop {
                            let next = {
                                let own = lock_deque(&deques[worker]).pop_front();
                                own.or_else(|| {
                                    (1..deques.len()).find_map(|offset| {
                                        let victim = (worker + offset) % deques.len();
                                        lock_deque(&deques[victim]).pop_back()
                                    })
                                })
                            };
                            let Some(range) = next else { break };
                            let start = range.start;
                            local.push((start, run_block(worker, range)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect::<Vec<_>>()
        });
        for local in locals {
            for (start, results) in local {
                for (offset, r) in results.into_iter().enumerate() {
                    let i = start + offset;
                    debug_assert!(slots[i].is_none(), "index {i} evaluated twice");
                    slots[i] = Some(r);
                }
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    Err(TaskPanic {
                        message: format!("index {i} was never evaluated (worker died)"),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn output_is_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let out = ParallelExecutor::new(threads).map(&items, |_, &x| x * x);
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..777).collect();
        let out = ParallelExecutor::new(4).map(&items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 777);
        assert_eq!(out.len(), 777);
    }

    #[test]
    fn uneven_workloads_still_key_by_index() {
        // Early indices are much slower: the tail gets stolen.
        let items: Vec<u64> = (0..64).collect();
        let out = ParallelExecutor::new(8).map(&items, |i, &x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(ParallelExecutor::new(4).map(&none, |_, &x| x).is_empty());
        assert_eq!(
            ParallelExecutor::new(4).map(&[41u32], |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn thread_count_clamps_to_one() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
    }

    #[test]
    fn try_map_isolates_panics_to_their_own_slot() {
        let items: Vec<u64> = (0..200).collect();
        for threads in [1, 4] {
            let out = ParallelExecutor::new(threads).try_map(&items, |_, &x| {
                if x % 50 == 7 {
                    panic!("poisoned item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 200);
            for (i, slot) in out.iter().enumerate() {
                if i % 50 == 7 {
                    let err = slot.as_ref().unwrap_err();
                    assert_eq!(
                        err.message,
                        format!("poisoned item {i}"),
                        "{threads} threads"
                    );
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i as u64 * 2), "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn map_reraises_the_first_panic_after_workers_park() {
        let result = std::panic::catch_unwind(|| {
            ParallelExecutor::new(4).map(&[1u32, 2, 3], |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn a_panicking_batch_leaves_the_executor_reusable() {
        let pool = ParallelExecutor::new(4);
        let items: Vec<u32> = (0..64).collect();
        let first = pool.try_map(&items, |_, &x| {
            if x % 2 == 0 {
                panic!("even");
            }
            x
        });
        assert_eq!(first.iter().filter(|r| r.is_err()).count(), 32);
        // The pool (and a fresh map on it) still works normally.
        let second = pool.map(&items, |_, &x| x + 1);
        assert_eq!(second, (1..=64).collect::<Vec<u32>>());
    }

    #[test]
    fn located_map_reports_in_range_workers_without_changing_output() {
        let items: Vec<u64> = (0..300).collect();
        for threads in [1, 4] {
            let pool = ParallelExecutor::new(threads);
            let out = pool.try_map_located(&items, |worker, i, &x| {
                assert!(worker < threads, "worker {worker} out of range");
                if threads == 1 {
                    assert_eq!(worker, 0, "serial path pins worker 0");
                }
                (worker, x + i as u64)
            });
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap().1).collect();
            assert_eq!(values, (0..300).map(|x| x * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn blocked_map_matches_per_item_map_at_any_thread_count() {
        let items: Vec<u64> = (0..1003).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let out = ParallelExecutor::new(threads).try_map_blocked(&items, |_, start, block| {
                block
                    .iter()
                    .enumerate()
                    .map(|(k, &x)| {
                        assert_eq!(items[start + k], x, "block offsets line up");
                        Ok(x * 3 + 1)
                    })
                    .collect()
            });
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, expected, "{threads} threads");
        }
    }

    #[test]
    fn blocked_map_serial_path_hands_over_one_block() {
        let items: Vec<u32> = (0..40).collect();
        let calls = AtomicU64::new(0);
        let out = ParallelExecutor::new(1).try_map_blocked(&items, |worker, start, block| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(worker, 0);
            assert_eq!(start, 0);
            assert_eq!(block.len(), 40);
            block.iter().map(|&x| Ok(x)).collect()
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn a_panicking_block_fails_only_its_own_slots() {
        let items: Vec<u64> = (0..200).collect();
        for threads in [1, 4] {
            let out = ParallelExecutor::new(threads).try_map_blocked(&items, |_, start, block| {
                if (start..start + block.len()).contains(&7) {
                    panic!("poisoned block at {start}");
                }
                block.iter().map(|&x| Ok(x * 2)).collect()
            });
            assert_eq!(out.len(), 200);
            let failed: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_err())
                .map(|(i, _)| i)
                .collect();
            // Exactly the block containing index 7 failed; everything
            // else evaluated (at 1 thread the whole slice is one block).
            assert!(failed.contains(&7), "{threads} threads: {failed:?}");
            if threads == 1 {
                assert_eq!(failed.len(), 200);
            } else {
                assert!(failed.len() < 200, "{threads} threads");
                for (i, r) in out.iter().enumerate() {
                    if !failed.contains(&i) {
                        assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2));
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_map_empty_input() {
        let none: Vec<u32> = vec![];
        assert!(ParallelExecutor::new(4)
            .try_map_blocked(&none, |_, _, block| block.iter().map(|&x| Ok(x)).collect())
            .is_empty());
    }

    #[test]
    fn default_thread_override_round_trips() {
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(ParallelExecutor::with_default_threads().threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }
}
