//! Memoized design-point evaluation.
//!
//! The analytical model is cheap per point but query traffic is not:
//! batch queries overlap (refinement rounds revisit the incumbent,
//! neighbouring queries share grid corners), so the engine memoizes
//! [`evaluate`] results — feasible *and* infeasible — behind a sharded
//! map keyed by quantized design-point coordinates. Shards keep lock
//! hold times tiny under parallel lookups; hit/miss/eviction counters
//! surface through `drone-telemetry` as `explorer.cache.*`.
//!
//! Keys quantize each coordinate to a model-insignificant granule
//! (0.1 mm wheelbase, 1 mAh, 0.01 W, 0.001 TWR, 0.1 g payload): two
//! points closer than a granule size to each other evaluate identically
//! for every practical purpose, and quantization makes the float
//! coordinates hashable without bit-pattern traps.

use drone_dse::design::DesignError;
use drone_dse::eval::{DesignEval, DesignQuery};
use drone_math::hash::{fnv1a_fold, BuildFnv, FNV_OFFSET};
use drone_telemetry::{Counter, Registry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A memoized evaluation outcome (infeasibility is cached too).
pub type CachedEval = Result<DesignEval, DesignError>;

/// A design point quantized onto the cache lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Wheelbase in 0.1 mm granules.
    wheelbase_dmm: i64,
    /// Cell count.
    cells: u8,
    /// Capacity in 1 mAh granules.
    capacity_mah: i64,
    /// Compute power in 0.01 W granules.
    compute_cw: i64,
    /// TWR in 0.001 granules.
    twr_milli: i64,
    /// Payload in 0.1 g granules.
    payload_dg: i64,
}

fn granule(value: f64, granule: f64) -> i64 {
    (value / granule).round() as i64
}

impl CacheKey {
    /// Quantizes a design point onto the lattice.
    pub fn quantize(query: &DesignQuery) -> CacheKey {
        CacheKey {
            wheelbase_dmm: granule(query.wheelbase_mm, 0.1),
            cells: query.cells.cells(),
            capacity_mah: granule(query.capacity_mah, 1.0),
            compute_cw: granule(query.compute_power_w, 0.01),
            twr_milli: granule(query.twr, 0.001),
            payload_dg: granule(query.payload_g, 0.1),
        }
    }

    /// Word-wise FNV-1a over the lattice coordinates: a
    /// process-independent hash, so shard placement (and therefore
    /// eviction behaviour) is reproducible run to run — `std`'s
    /// SipHash seeds are not. One xor+multiply per coordinate keeps
    /// the cold path's two hashings (lookup + insert) off the profile.
    fn fnv(&self) -> u64 {
        let mut h = fnv1a_fold(FNV_OFFSET, self.wheelbase_dmm as u64);
        h = fnv1a_fold(h, self.cells as u64);
        h = fnv1a_fold(h, self.capacity_mah as u64);
        h = fnv1a_fold(h, self.compute_cw as u64);
        h = fnv1a_fold(h, self.twr_milli as u64);
        fnv1a_fold(h, self.payload_dg as u64)
    }
}

/// The process-level shard a design point routes to: FNV-1a over the
/// quantized lattice key, modulo `count`. This is the memo cache's
/// in-process shard scheme lifted to server level — the router uses it
/// to partition a query's grid across `count` shard servers, and
/// because it hashes the *quantized* coordinates, every point a shard
/// evaluates also lands in that shard's own cache partition.
pub fn shard_of(query: &DesignQuery, count: u32) -> u32 {
    (CacheKey::quantize(query).fnv() % u64::from(count.max(1))) as u32
}

struct Shard {
    // FNV-hashed: every cold point pays a lookup *and* an insert, so
    // the per-operation hash must be a handful of multiplies, not
    // SipHash over the 41-byte key.
    map: HashMap<CacheKey, CachedEval, BuildFnv>,
    // FIFO insertion order backing eviction.
    order: VecDeque<CacheKey>,
}

/// The sharded memoization table.
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl EvalCache {
    /// A cache with `shards` lock shards holding at most
    /// `shard_capacity` entries each (FIFO eviction past that).
    pub fn new(shards: usize, shard_capacity: usize) -> EvalCache {
        let shards = shards.max(1);
        EvalCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::default(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity: shard_capacity.max(1),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }

    /// The default exploration cache: 16 shards × 8192 entries.
    pub fn with_defaults() -> EvalCache {
        EvalCache::new(16, 8192)
    }

    /// Re-homes the hit/miss/eviction counters onto a registry as
    /// `explorer.cache.{hits,misses,evictions}`. Counts accumulated so
    /// far carry over.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        for (name, counter) in [
            ("explorer.cache.hits", &mut self.hits),
            ("explorer.cache.misses", &mut self.misses),
            ("explorer.cache.evictions", &mut self.evictions),
        ] {
            let registered = registry.counter(name);
            registered.add(counter.get());
            *counter = registered;
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.fnv() % self.shards.len() as u64) as usize]
    }

    /// Looks a key up, counting a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<CachedEval> {
        let shard = self.shard(key).lock().expect("cache shard lock");
        match shard.map.get(key) {
            Some(value) => {
                self.hits.inc();
                Some(*value)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Counts a lookup served by coalescing with an identical in-flight
    /// evaluation (a duplicate key inside one parallel round).
    pub fn note_coalesced_hit(&self) {
        self.hits.inc();
    }

    /// Stores an evaluation, evicting the shard's oldest entry when the
    /// shard is full. Re-inserting an existing key refreshes the value
    /// without growing the shard.
    pub fn insert(&self, key: CacheKey, value: CachedEval) {
        let mut shard = self.shard(&key).lock().expect("cache shard lock");
        if shard.map.insert(key, value).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > self.shard_capacity {
                let oldest = shard.order.pop_front().expect("order tracks map");
                shard.map.remove(&oldest);
                self.evictions.inc();
            }
        }
    }

    /// Serves a point from the cache or evaluates and stores it.
    pub fn get_or_evaluate(&self, query: &DesignQuery) -> CachedEval {
        let key = CacheKey::quantize(query);
        if let Some(cached) = self.get(&key) {
            return cached;
        }
        let fresh = drone_dse::eval::evaluate(query);
        self.insert(key, fresh);
        fresh
    }

    /// Lifetime hit count.
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }

    /// Lifetime miss count.
    pub fn miss_count(&self) -> u64 {
        self.misses.get()
    }

    /// Lifetime eviction count.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.get()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drone_components::battery::CellCount;

    fn q(capacity: f64) -> DesignQuery {
        DesignQuery::new(450.0, CellCount::S3, capacity)
    }

    #[test]
    fn shard_of_partitions_deterministically() {
        let points: Vec<DesignQuery> = (0..200).map(|i| q(1000.0 + 25.0 * i as f64)).collect();
        for count in [1u32, 2, 4, 7] {
            let mut per_shard = vec![0usize; count as usize];
            for p in &points {
                let s = shard_of(p, count);
                assert!(s < count);
                assert_eq!(s, shard_of(p, count), "placement must be stable");
                per_shard[s as usize] += 1;
            }
            // Disjoint by construction; together the shards cover the set.
            assert_eq!(per_shard.iter().sum::<usize>(), points.len());
        }
        // A zero count is clamped rather than dividing by zero.
        assert_eq!(shard_of(&q(1000.0), 0), 0);
    }

    #[test]
    fn second_lookup_is_a_hit_with_identical_value() {
        let cache = EvalCache::with_defaults();
        let first = cache.get_or_evaluate(&q(3000.0));
        let second = cache.get_or_evaluate(&q(3000.0));
        assert_eq!(first, second);
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn quantization_merges_model_insignificant_neighbours() {
        let a = CacheKey::quantize(&q(3000.0));
        let b = CacheKey::quantize(&q(3000.0004));
        let c = CacheKey::quantize(&q(3002.0));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn infeasible_results_are_cached_too() {
        let cache = EvalCache::with_defaults();
        let bad = DesignQuery::new(450.0, CellCount::S3, 150.0).with_payload(900.0);
        assert!(cache.get_or_evaluate(&bad).is_err());
        assert!(cache.get_or_evaluate(&bad).is_err());
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn fifo_eviction_is_counted_and_bounded() {
        // One shard of two entries: the third insert evicts the first.
        let cache = EvalCache::new(1, 2);
        for capacity in [1000.0, 2000.0, 3000.0] {
            cache.insert(
                CacheKey::quantize(&q(capacity)),
                drone_dse::eval::evaluate(&q(capacity)),
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.eviction_count(), 1);
        // The oldest key (1000 mAh) was the victim.
        assert!(cache.get(&CacheKey::quantize(&q(1000.0))).is_none());
        assert!(cache.get(&CacheKey::quantize(&q(3000.0))).is_some());
    }

    #[test]
    fn attach_telemetry_carries_counts_over() {
        let mut cache = EvalCache::with_defaults();
        let _ = cache.get_or_evaluate(&q(3000.0));
        let _ = cache.get_or_evaluate(&q(3000.0));
        let registry = Registry::with_wall_clock();
        cache.attach_telemetry(&registry);
        assert_eq!(registry.counter("explorer.cache.hits").get(), 1);
        assert_eq!(registry.counter("explorer.cache.misses").get(), 1);
        let _ = cache.get_or_evaluate(&q(3000.0));
        assert_eq!(registry.counter("explorer.cache.hits").get(), 2);
    }
}
