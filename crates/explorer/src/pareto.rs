//! Pareto frontier maintenance over exploration objectives.
//!
//! The engine ranks feasible designs on three axes — hover flight time
//! (maximize), take-off weight (minimize), compute share (minimize) —
//! and keeps the mutually non-dominated set incrementally as results
//! stream out of the executor. Dominance itself is
//! [`drone_math::pareto::dominates`]; this module owns the bookkeeping
//! and the 2-D/3-D extraction helpers.

use drone_math::pareto::{dominates, Sense};

/// One frontier member: the caller's point id plus its objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierEntry {
    /// Caller-side identifier (typically an index into the evaluated
    /// pool), which keeps extraction deterministic.
    pub id: usize,
    /// Objective coordinates, in the frontier's sense order.
    pub objectives: Vec<f64>,
}

/// An incrementally maintained Pareto frontier.
#[derive(Debug, Clone)]
pub struct ParetoFrontier {
    senses: Vec<Sense>,
    members: Vec<FrontierEntry>,
}

impl ParetoFrontier {
    /// An empty frontier over the given objective senses.
    pub fn new(senses: &[Sense]) -> ParetoFrontier {
        ParetoFrontier {
            senses: senses.to_vec(),
            members: Vec::new(),
        }
    }

    /// Offers a point. Returns `true` when it joins the frontier
    /// (evicting any members it dominates), `false` when an existing
    /// member dominates it.
    ///
    /// # Panics
    ///
    /// Panics when the objective arity does not match the senses.
    pub fn insert(&mut self, id: usize, objectives: &[f64]) -> bool {
        assert_eq!(
            objectives.len(),
            self.senses.len(),
            "objective arity mismatch"
        );
        if self
            .members
            .iter()
            .any(|m| dominates(&m.objectives, objectives, &self.senses))
        {
            return false;
        }
        self.members
            .retain(|m| !dominates(objectives, &m.objectives, &self.senses));
        self.members.push(FrontierEntry {
            id,
            objectives: objectives.to_vec(),
        });
        true
    }

    /// The frontier members, in insertion order of their admission.
    pub fn members(&self) -> &[FrontierEntry] {
        &self.members
    }

    /// Member ids, ascending.
    pub fn ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.members.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids
    }

    /// The objective senses.
    pub fn senses(&self) -> &[Sense] {
        &self.senses
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no point has been admitted.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Extracts the non-dominated subset of `points` (full dimensionality),
/// returning ascending indices into `points`.
pub fn extract_frontier<P: AsRef<[f64]>>(points: &[P], senses: &[Sense]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other.as_ref(), points[i].as_ref(), senses))
        })
        .collect()
}

/// Extracts the 2-D frontier over the projection of `points` onto two
/// objective axes. Note a 2-D frontier must be computed over the *full*
/// point set: projection changes which points dominate, so it is not a
/// subset of the 3-D frontier members in general.
pub fn extract_frontier_2d<P: AsRef<[f64]>>(
    points: &[P],
    senses: &[Sense],
    axes: (usize, usize),
) -> Vec<usize> {
    let projected: Vec<[f64; 2]> = points
        .iter()
        .map(|p| [p.as_ref()[axes.0], p.as_ref()[axes.1]])
        .collect();
    extract_frontier(&projected, &[senses[axes.0], senses[axes.1]])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SENSES: [Sense; 3] = [Sense::Maximize, Sense::Minimize, Sense::Minimize];

    #[test]
    fn dominated_points_are_rejected_and_evicted() {
        let mut f = ParetoFrontier::new(&SENSES);
        assert!(f.insert(0, &[10.0, 1000.0, 0.10]));
        // Strictly better everywhere: evicts the first.
        assert!(f.insert(1, &[12.0, 900.0, 0.08]));
        assert_eq!(f.ids(), vec![1]);
        // Strictly worse everywhere: rejected.
        assert!(!f.insert(2, &[11.0, 950.0, 0.09]));
        // Trades flight time for weight: joins.
        assert!(f.insert(3, &[8.0, 500.0, 0.12]));
        assert_eq!(f.ids(), vec![1, 3]);
    }

    #[test]
    fn frontier_members_are_mutually_non_dominated() {
        let mut f = ParetoFrontier::new(&SENSES);
        let pts = [
            [10.0, 1000.0, 0.10],
            [12.0, 1200.0, 0.12],
            [8.0, 800.0, 0.05],
            [11.0, 1100.0, 0.04],
            [9.0, 900.0, 0.20],
        ];
        for (i, p) in pts.iter().enumerate() {
            f.insert(i, p);
        }
        for a in f.members() {
            for b in f.members() {
                assert!(!dominates(&a.objectives, &b.objectives, &SENSES) || a.id == b.id);
            }
        }
    }

    #[test]
    fn extraction_matches_incremental_insertion() {
        let pts: Vec<[f64; 3]> = vec![
            [10.0, 1000.0, 0.10],
            [12.0, 900.0, 0.08],
            [11.0, 950.0, 0.09],
            [8.0, 500.0, 0.12],
            [8.0, 500.0, 0.12], // duplicate: both non-dominated (neither dominates the other)
        ];
        let mut f = ParetoFrontier::new(&SENSES);
        for (i, p) in pts.iter().enumerate() {
            f.insert(i, p);
        }
        let extracted = extract_frontier(&pts, &SENSES);
        assert_eq!(f.ids(), extracted);
    }

    #[test]
    fn two_d_projection_recomputes_dominance() {
        // On (flight, weight) alone, point 1 dominates point 0; in 3-D
        // point 0 survives thanks to its compute share.
        let pts: Vec<[f64; 3]> = vec![[10.0, 1000.0, 0.01], [11.0, 900.0, 0.50]];
        assert_eq!(extract_frontier(&pts, &SENSES), vec![0, 1]);
        assert_eq!(extract_frontier_2d(&pts, &SENSES, (0, 1)), vec![1]);
    }
}
