//! The exploration engine: executor + cache + frontier + telemetry.
//!
//! [`Explorer::run`] answers one [`Query`] in rounds. Round 0 fans the
//! materialized grid across the executor; each refinement round
//! re-centres the swept coordinates on the incumbent optimum (one grid
//! cell either side, resampled) and fans out again. Every round
//! deduplicates its points against the cache *and* within itself before
//! dispatch, so the hit/miss counters — and therefore the exported
//! artifacts — are identical at any thread count: cache state only ever
//! changes between rounds, on the coordinating thread, in point order.

use crate::cache::{CacheKey, EvalCache};
use crate::executor::{panic_message, ParallelExecutor, TaskPanic};
use crate::pareto::ParetoFrontier;
use crate::query::{Query, QueryAnswer};
use drone_dse::eval::{evaluate_many, evaluate_traced, DesignEval, DesignQuery, OBJECTIVE_SENSES};
use drone_math::stats::{argmax, argmin};
use drone_math::{BuildFnv, Sense};
use drone_telemetry::trace::Span;
use drone_telemetry::{Clock, Registry, SharedHistogram};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Cached evaluation outcome (shared with [`EvalCache`]).
pub type EvalResult = Result<DesignEval, drone_dse::design::DesignError>;

/// A pre-evaluation hook run on every *fresh* (uncached) design point.
/// This is the chaos-engineering seam: tests and the `repro chaos`
/// campaign install a hook that panics on a marker coordinate to prove
/// the panic-isolation path end to end.
pub type EvalHook = Arc<dyn Fn(&DesignQuery) + Send + Sync>;

struct QueryTelemetry {
    latency: Arc<SharedHistogram>,
    points: Arc<SharedHistogram>,
    clock: Clock,
}

/// The parallel, memoizing design-space exploration engine.
pub struct Explorer {
    executor: ParallelExecutor,
    cache: EvalCache,
    telemetry: Option<QueryTelemetry>,
    /// Optimizer metrics, populated by [`Explorer::attach_telemetry`]
    /// and consumed by [`crate::optimize::Optimizer`].
    pub(crate) opt_telemetry: Option<crate::optimize::optimizer::OptimizerTelemetry>,
    eval_hook: Option<EvalHook>,
}

impl Explorer {
    /// An engine with `threads` workers and the default cache.
    pub fn new(threads: usize) -> Explorer {
        Explorer {
            executor: ParallelExecutor::new(threads),
            cache: EvalCache::with_defaults(),
            telemetry: None,
            opt_telemetry: None,
            eval_hook: None,
        }
    }

    /// An engine sized by [`crate::executor::default_threads`] (the
    /// `repro --threads` override, else the hardware).
    pub fn with_default_threads() -> Explorer {
        Explorer::new(crate::executor::default_threads())
    }

    /// Replaces the cache (tests shrink it to exercise eviction).
    pub fn with_cache(mut self, cache: EvalCache) -> Explorer {
        self.cache = cache;
        self
    }

    /// Installs an [`EvalHook`] called before every fresh evaluation —
    /// the fault-injection seam for chaos tests. A hook that panics
    /// turns the whole query into a caught [`TaskPanic`] (see
    /// [`Explorer::try_run`]); it never kills worker threads.
    pub fn with_eval_hook(mut self, hook: EvalHook) -> Explorer {
        self.eval_hook = Some(hook);
        self
    }

    /// Registers the engine's metrics: `explorer.cache.*` counters plus
    /// `explorer.query.latency_s` / `explorer.query.points` histograms,
    /// and the per-strategy `optimizer.*` family.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.cache.attach_telemetry(registry);
        self.telemetry = Some(QueryTelemetry {
            latency: registry.histogram("explorer.query.latency_s"),
            points: registry.histogram("explorer.query.points"),
            clock: registry.clock().clone(),
        });
        self.opt_telemetry = Some(crate::optimize::optimizer::OptimizerTelemetry::register(
            registry,
        ));
    }

    /// The memoization cache (counters, occupancy).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// The executor's worker count.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Evaluates a batch of points — cache first, then one parallel
    /// fan-out over the unique uncached remainder — returning results
    /// in input order.
    ///
    /// Duplicate keys within the batch coalesce onto one evaluation
    /// (counted as hits); fresh results enter the cache in input order
    /// on the calling thread, keeping counters and eviction order
    /// independent of the thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the first caught evaluation panic (see
    /// [`Explorer::try_evaluate_points`] for the non-panicking form).
    pub fn evaluate_points(&self, points: &[DesignQuery]) -> Vec<EvalResult> {
        match self.try_evaluate_points(points) {
            Ok(results) => results,
            Err(caught) => panic!("{caught}"),
        }
    }

    /// [`Explorer::evaluate_points`] with panic isolation: a panicking
    /// evaluation (via the [`EvalHook`] or a model bug) is caught in
    /// the executor and surfaces as one `Err(TaskPanic)` for the whole
    /// batch — deterministically the first panic by input index.
    /// Panicked points never enter the cache; every successfully
    /// evaluated point in the same fan-out still does, in input order,
    /// so cache counters stay thread-count independent.
    pub fn try_evaluate_points(
        &self,
        points: &[DesignQuery],
    ) -> Result<Vec<EvalResult>, TaskPanic> {
        self.try_evaluate_points_spanned(points, None)
    }

    /// [`Explorer::try_evaluate_points`] with per-point tracing: when
    /// `parent` is a span, every point opens a `point` child whose
    /// order is its input index (so span ids are thread-count
    /// independent), tagged with its cache outcome
    /// (`hit`/`coalesced`/`miss`), its feasibility, and — for fresh
    /// evaluations — the worker it ran on plus `eval.*` leaf spans.
    pub fn try_evaluate_points_spanned(
        &self,
        points: &[DesignQuery],
        parent: Option<&Span>,
    ) -> Result<Vec<EvalResult>, TaskPanic> {
        let keys: Vec<CacheKey> = points.iter().map(CacheKey::quantize).collect();
        let mut resolved: Vec<Option<EvalResult>> = vec![None; points.len()];
        // Unique uncached keys → the index of their first occurrence.
        // FNV-hashed: every cold point probes this map twice (dedup +
        // duplicate resolution) on top of the cache's own lookups.
        let mut pending: HashMap<CacheKey, usize, BuildFnv> = HashMap::default();
        let mut work: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if pending.contains_key(key) {
                self.cache.note_coalesced_hit();
                if let Some(parent) = parent {
                    let mut span = parent.child("point", i as u64);
                    span.tag("cache", "coalesced");
                }
                continue;
            }
            match self.cache.get(key) {
                Some(cached) => {
                    if let Some(parent) = parent {
                        let mut span = parent.child("point", i as u64);
                        span.tag("cache", "hit");
                        span.tag("feasible", cached.is_ok());
                    }
                    resolved[i] = Some(cached);
                }
                None => {
                    pending.insert(*key, i);
                    work.push(i);
                }
            }
        }

        // Fresh points dispatch in per-worker *blocks*: each block
        // funnels through one batched `evaluate_many` call instead of
        // point-at-a-time scalar evaluation. The batched kernel's lanes
        // never interact, so how points group into blocks (which varies
        // with the thread count) cannot change any output bit; results
        // scatter back by input index as before.
        let queries: Vec<DesignQuery> = work.iter().map(|&i| points[i]).collect();
        let hook = self.eval_hook.as_deref();
        let work_ref = &work;
        let fresh = self
            .executor
            .try_map_blocked(&queries, |worker, start, block| {
                evaluate_block(worker, start, block, work_ref, parent, hook)
            });
        let mut first_panic: Option<TaskPanic> = None;
        for (&i, result) in work.iter().zip(fresh) {
            match result {
                Ok(result) => {
                    self.cache.insert(keys[i], result);
                    resolved[i] = Some(result);
                }
                Err(caught) => {
                    if first_panic.is_none() {
                        first_panic = Some(caught);
                    }
                }
            }
        }
        if let Some(caught) = first_panic {
            return Err(caught);
        }

        // Duplicates of a pending key were left unresolved: serve them
        // from their first occurrence's (now resolved) slot.
        for i in 0..resolved.len() {
            if resolved[i].is_none() {
                let first = pending[&keys[i]];
                let value = resolved[first].expect("first occurrence evaluated");
                resolved[i] = Some(value);
            }
        }
        Ok(resolved
            .into_iter()
            .map(|slot| slot.expect("every point resolved"))
            .collect())
    }

    /// Answers one query: grid round, then adaptive refinement around
    /// the incumbent optimum.
    ///
    /// # Panics
    ///
    /// Re-raises a caught evaluation panic; serving layers use
    /// [`Explorer::try_run`] to turn it into a structured reply
    /// instead.
    pub fn run(&self, query: &Query) -> QueryAnswer {
        match self.try_run(query) {
            Ok(answer) => answer,
            Err(caught) => panic!("{caught}"),
        }
    }

    /// [`Explorer::run`] with panic isolation: a panicking evaluation
    /// anywhere in the query's rounds aborts *this query only* with a
    /// caught [`TaskPanic`]. The engine, its cache, its locks and its
    /// worker threads all stay healthy for the next query.
    pub fn try_run(&self, query: &Query) -> Result<QueryAnswer, TaskPanic> {
        self.try_run_spanned(query, None)
    }

    /// [`Explorer::try_run`] with causal tracing: each round opens an
    /// `explore.round` child span (order = round number) under
    /// `parent`, and every point traces through
    /// [`Explorer::try_evaluate_points_spanned`]. With `parent = None`
    /// this *is* `try_run` — the answer is byte-identical either way.
    pub fn try_run_spanned(
        &self,
        query: &Query,
        parent: Option<&Span>,
    ) -> Result<QueryAnswer, TaskPanic> {
        let started = self.telemetry.as_ref().map(|t| t.clock.now());

        let mut feasible: Vec<DesignEval> = Vec::new();
        let mut evaluated = 0usize;
        let mut infeasible = 0usize;
        let mut rounds = 0usize;
        let mut ranges = query.ranges.clone();
        // Refinement rounds revisit the incumbent's neighbourhood; each
        // unique design enters the feasible pool (and so the frontier)
        // once, however many rounds touch it.
        let mut seen: HashSet<CacheKey, BuildFnv> = HashSet::default();

        for round in 0..=query.refine_rounds {
            if round > 0 {
                // Refinement needs an incumbent to centre on.
                let Some(best) = self.best_of(query, &feasible) else {
                    break;
                };
                ranges = query.ranges.refined_around(&best.query, query.refine_steps);
            }
            let mut grid = ranges.grid();
            if let Some(shard) = query.shard {
                // Scatter path: keep only this process-level partition.
                // The filter runs before `evaluated +=`, so per-shard
                // counts sum exactly to the unsharded grid size.
                grid.retain(|point| crate::cache::shard_of(point, shard.count) == shard.index);
            }
            evaluated += grid.len();
            let round_span = parent.map(|p| {
                let mut span = p.child("explore.round", round as u64);
                span.tag("round", round as u64);
                span.tag("points", grid.len());
                span
            });
            let results = self.try_evaluate_points_spanned(&grid, round_span.as_ref())?;
            for (point, result) in grid.iter().zip(results) {
                if !seen.insert(CacheKey::quantize(point)) {
                    continue;
                }
                match result {
                    Ok(eval) if query.constraints.admits(&eval) => feasible.push(eval),
                    _ => infeasible += 1,
                }
            }
            rounds += 1;
        }

        let best = self.best_of(query, &feasible);
        let mut frontier = ParetoFrontier::new(&OBJECTIVE_SENSES);
        for (i, eval) in feasible.iter().enumerate() {
            frontier.insert(i, &eval.objectives());
        }
        let frontier: Vec<DesignEval> = frontier.members().iter().map(|m| feasible[m.id]).collect();

        if let (Some(t), Some(start)) = (self.telemetry.as_ref(), started) {
            t.latency.record(t.clock.now() - start);
            t.points.record(evaluated as f64);
        }
        Ok(QueryAnswer {
            name: query.name.clone(),
            best,
            frontier,
            evaluated,
            feasible: feasible.len(),
            infeasible,
            rounds,
        })
    }

    /// Runs a batch of queries in order, sharing the cache across them.
    ///
    /// # Panics
    ///
    /// Re-raises the first caught evaluation panic (see
    /// [`Explorer::try_run_batch`]).
    pub fn run_batch(&self, queries: &[Query]) -> Vec<QueryAnswer> {
        queries.iter().map(|q| self.run(q)).collect()
    }

    /// [`Explorer::run_batch`] with per-query panic isolation: each
    /// query gets its own `Result`, so one poisoned query never takes
    /// down its batch-mates.
    pub fn try_run_batch(&self, queries: &[Query]) -> Vec<Result<QueryAnswer, TaskPanic>> {
        queries.iter().map(|q| self.try_run(q)).collect()
    }

    /// The incumbent under the query's objective; ties resolve to the
    /// earliest evaluation, keeping refinement deterministic.
    fn best_of(&self, query: &Query, feasible: &[DesignEval]) -> Option<DesignEval> {
        let scores: Vec<f64> = feasible.iter().map(|e| query.objective.value(e)).collect();
        let idx = match query.objective.sense() {
            Sense::Maximize => argmax(&scores),
            Sense::Minimize => argmin(&scores),
        }?;
        Some(feasible[idx])
    }
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::with_default_threads()
    }
}

/// Evaluates one executor block of fresh points through the batched
/// kernel, preserving the per-point contracts of the old scalar
/// dispatch:
///
/// * every point opens its `point` span (order = input index, so span
///   ids stay thread-count independent) *before* the hook runs, and the
///   span records however far the point got;
/// * a panicking [`EvalHook`] fails only its own point — healthy
///   block-mates still evaluate (and later enter the cache);
/// * the `eval.size`/`eval.power` leaf spans and `feasible` tags appear
///   exactly as `evaluate_traced` would have recorded them;
/// * if a degenerate point would panic the kernel itself, the block
///   degrades to per-point scalar evaluation so the panic stays in its
///   own slot with its own message.
fn evaluate_block(
    worker: usize,
    start: usize,
    block: &[DesignQuery],
    input_index: &[usize],
    parent: Option<&Span>,
    hook: Option<&(dyn Fn(&DesignQuery) + Send + Sync)>,
) -> Vec<Result<EvalResult, TaskPanic>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut spans: Vec<Option<Span>> = (0..block.len())
        .map(|k| {
            parent.map(|p| {
                let mut span = p.child("point", input_index[start + k] as u64);
                span.set_worker(worker);
                span.tag("cache", "miss");
                span
            })
        })
        .collect();
    let mut out: Vec<Option<Result<EvalResult, TaskPanic>>> = vec![None; block.len()];
    let mut live: Vec<usize> = Vec::with_capacity(block.len());
    if let Some(hook) = hook {
        for (k, q) in block.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| hook(q))) {
                Ok(()) => live.push(k),
                Err(payload) => {
                    out[k] = Some(Err(TaskPanic {
                        message: panic_message(payload.as_ref()),
                    }));
                }
            }
        }
    } else {
        live.extend(0..block.len());
    }

    let live_queries: Vec<DesignQuery> = live.iter().map(|&k| block[k]).collect();
    match catch_unwind(AssertUnwindSafe(|| evaluate_many(&live_queries))) {
        Ok(results) => {
            for (&k, result) in live.iter().zip(results) {
                if let Some(span) = spans[k].as_mut() {
                    // The leaf spans `evaluate_traced` would have
                    // recorded: `eval.size` closes before `eval.power`
                    // opens, and the power stage only runs on success.
                    {
                        let mut size_span = span.child("eval.size", 0);
                        size_span.tag("feasible", result.is_ok());
                    }
                    if result.is_ok() {
                        let _power_span = span.child("eval.power", 1);
                    }
                    span.tag("feasible", result.is_ok());
                }
                out[k] = Some(Ok(result));
            }
        }
        Err(_) => {
            for &k in &live {
                let q = &block[k];
                let span = &mut spans[k];
                let outcome = catch_unwind(AssertUnwindSafe(move || {
                    let result = evaluate_traced(q, span.as_ref());
                    if let Some(span) = span.as_mut() {
                        span.tag("feasible", result.is_ok());
                    }
                    result
                }));
                out[k] = Some(outcome.map_err(|payload| TaskPanic {
                    message: panic_message(payload.as_ref()),
                }));
            }
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every block slot resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Constraints, GridRange, Objective, QueryRanges};
    use drone_components::battery::CellCount;
    use drone_dse::eval::evaluate;

    fn small_ranges() -> QueryRanges {
        QueryRanges {
            wheelbase_mm: GridRange::new(250.0, 450.0, 3),
            cells: vec![CellCount::S3],
            capacity_mah: GridRange::new(2000.0, 6000.0, 5),
            compute_power_w: GridRange::fixed(3.0),
            twr: GridRange::fixed(2.0),
            payload_g: GridRange::fixed(0.0),
        }
    }

    #[test]
    fn grid_round_finds_the_serial_optimum() {
        let explorer = Explorer::new(2);
        let query = Query::new("t", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
        let answer = explorer.run(&query);
        // Serial reference: evaluate the same grid directly.
        let serial_best = small_ranges()
            .grid()
            .iter()
            .filter_map(|q| evaluate(q).ok())
            .map(|e| e.flight_time_min)
            .fold(f64::NEG_INFINITY, f64::max);
        let best = answer.best.expect("feasible grid");
        assert_eq!(best.flight_time_min, serial_best);
        assert_eq!(answer.rounds, 1);
        assert_eq!(answer.evaluated, 15);
        assert_eq!(answer.feasible + answer.infeasible, answer.evaluated);
    }

    #[test]
    fn sharded_runs_partition_the_grid_exactly() {
        let explorer = Explorer::new(1);
        let full = Query::new("t", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
        let whole = explorer.run(&full);

        let count = 3u32;
        let parts: Vec<_> = (0..count)
            .map(|i| explorer.run(&full.clone().with_shard(i, count)))
            .collect();
        // Disjoint cover: per-shard counts sum to the unsharded totals.
        assert_eq!(
            parts.iter().map(|a| a.evaluated).sum::<usize>(),
            whole.evaluated
        );
        assert_eq!(
            parts.iter().map(|a| a.feasible).sum::<usize>(),
            whole.feasible
        );
        assert_eq!(
            parts.iter().map(|a| a.infeasible).sum::<usize>(),
            whole.infeasible
        );
        // The global optimum lives in exactly one shard, so the best of
        // the shard bests is the unsharded best.
        let best_of_shards = parts
            .iter()
            .filter_map(|a| a.best.as_ref().map(|b| b.flight_time_min))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best_of_shards, whole.best.unwrap().flight_time_min);
    }

    #[test]
    fn refinement_never_worsens_the_incumbent_and_hits_the_cache() {
        let explorer = Explorer::new(2);
        let coarse =
            Query::new("c", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
        let refined =
            Query::new("r", small_ranges(), Objective::MaxFlightTime).with_refinement(2, 5);
        let coarse_best = explorer.run(&coarse).best.unwrap().flight_time_min;
        let refined_answer = explorer.run(&refined);
        assert!(refined_answer.rounds >= 2);
        assert!(refined_answer.best.unwrap().flight_time_min >= coarse_best);
        // The refined grid re-visits the incumbent (and the whole
        // coarse grid came from the first run): hits must have accrued.
        assert!(explorer.cache().hit_count() > 0);
    }

    #[test]
    fn constraints_are_respected() {
        let explorer = Explorer::new(1);
        let constraints = Constraints {
            max_weight_g: Some(1200.0),
            ..Constraints::default()
        };
        let query =
            Query::new("w", small_ranges(), Objective::MaxFlightTime).with_constraints(constraints);
        let answer = explorer.run(&query);
        if let Some(best) = &answer.best {
            assert!(best.weight_g <= 1200.0);
        }
        for member in &answer.frontier {
            assert!(member.weight_g <= 1200.0);
        }
    }

    #[test]
    fn unsatisfiable_queries_answer_empty() {
        let explorer = Explorer::new(2);
        let constraints = Constraints {
            min_flight_time_min: Some(10_000.0),
            ..Constraints::default()
        };
        let query = Query::new("none", small_ranges(), Objective::MaxFlightTime)
            .with_constraints(constraints);
        let answer = explorer.run(&query);
        assert!(answer.best.is_none());
        assert!(answer.frontier.is_empty());
        assert_eq!(answer.feasible, 0);
        // No incumbent → refinement rounds cannot run.
        assert_eq!(answer.rounds, 1);
    }

    #[test]
    fn answers_are_identical_across_thread_counts() {
        let query = Query::new("d", small_ranges(), Objective::MaxFlightTime);
        let baseline = Explorer::new(1).run(&query);
        for threads in [2, 8] {
            let answer = Explorer::new(threads).run(&query);
            assert_eq!(answer, baseline, "{threads} threads");
        }
    }

    #[test]
    fn batch_shares_the_cache_between_queries() {
        let explorer = Explorer::new(2);
        let a = Query::new("a", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
        let b = Query::new("b", small_ranges(), Objective::MinWeight).with_refinement(0, 0);
        let answers = explorer.run_batch(&[a, b]);
        assert_eq!(answers.len(), 2);
        // Query b's grid is exactly query a's: all 15 points hit.
        assert_eq!(explorer.cache().hit_count(), 15);
        assert_eq!(explorer.cache().miss_count(), 15);
    }

    #[test]
    fn duplicate_points_coalesce_within_a_batch() {
        let explorer = Explorer::new(4);
        let q = DesignQuery::new(450.0, CellCount::S3, 3000.0);
        let points = vec![q, q, q, q];
        let results = explorer.evaluate_points(&points);
        assert!(results.iter().all(|r| r == &results[0]));
        assert_eq!(explorer.cache().miss_count(), 1);
        assert_eq!(explorer.cache().hit_count(), 3);
        assert_eq!(explorer.cache().len(), 1);
    }

    #[test]
    fn a_panicking_evaluation_fails_only_its_query() {
        let poison = 350.0;
        let explorer = Explorer::new(4).with_eval_hook(Arc::new(move |q: &DesignQuery| {
            assert!(
                (q.wheelbase_mm - poison).abs() > 1e-9,
                "chaos hook: poisoned wheelbase"
            );
        }));
        // The 3-step grid hits 350.0; the healthy 2-step one does not.
        let poisoned = Query::new("bad", small_ranges(), Objective::MaxFlightTime);
        // Refinement could resample onto 350.0, so pin to the grid round.
        let healthy = Query::new(
            "good",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 2),
                ..small_ranges()
            },
            Objective::MaxFlightTime,
        )
        .with_refinement(0, 0);
        let results = explorer.try_run_batch(&[poisoned, healthy.clone()]);
        let caught = results[0].as_ref().unwrap_err();
        assert!(caught.message.contains("poisoned wheelbase"), "{caught}");
        assert!(results[1].as_ref().unwrap().best.is_some());
        // The engine survives: the same poisoned-free query still runs,
        // and the panicked point never entered the cache.
        let again = explorer.run(&healthy);
        assert_eq!(again, *results[1].as_ref().unwrap());
    }

    #[test]
    fn panicked_points_are_not_cached_but_healthy_batchmates_are() {
        let explorer = Explorer::new(2).with_eval_hook(Arc::new(|q: &DesignQuery| {
            assert!(q.capacity_mah != 2000.0, "poisoned capacity");
        }));
        let grid = small_ranges().grid(); // capacities 2000..6000 in 5 steps
        let err = explorer.try_evaluate_points(&grid).unwrap_err();
        assert!(err.message.contains("poisoned capacity"));
        // 3 of 15 points (capacity 2000 at each wheelbase) panicked;
        // the other 12 were evaluated and cached.
        assert_eq!(explorer.cache().len(), 12);
    }

    #[test]
    fn traced_runs_answer_identically_and_attribute_cache_outcomes() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let run_traced = |threads: usize| {
            let explorer = Explorer::new(threads);
            let query =
                Query::new("t", small_ranges(), Objective::MaxFlightTime).with_refinement(1, 3);
            let builder = TraceBuilder::new(derive_trace_id(7, 1), Clock::sim());
            let answer = {
                let root = builder.root("serve.request");
                explorer.try_run_spanned(&query, Some(&root)).unwrap()
            };
            let trace = builder.finish();
            // Attribution parity: span tallies must equal the cache's
            // own counters (coalesced duplicates count as hits).
            let hits =
                trace.count_tagged("cache", "hit") + trace.count_tagged("cache", "coalesced");
            let misses = trace.count_tagged("cache", "miss");
            assert_eq!(
                hits as u64,
                explorer.cache().hit_count(),
                "{threads} threads"
            );
            assert_eq!(
                misses as u64,
                explorer.cache().miss_count(),
                "{threads} threads"
            );
            assert_eq!(trace.count_named("point"), answer.evaluated);
            assert_eq!(trace.count_named("explore.round"), answer.rounds);
            assert_eq!(trace.open_at_finish, 0);
            assert_eq!(trace.dropped_spans, 0);
            (answer, trace.deterministic_json().render())
        };
        let (answer1, json1) = run_traced(1);
        for threads in [2, 8] {
            let (answer, json) = run_traced(threads);
            assert_eq!(answer, answer1, "{threads} threads");
            assert_eq!(
                json, json1,
                "deterministic trace differs at {threads} threads"
            );
        }
        // And the untraced answer is byte-identical to the traced one.
        let untraced = Explorer::new(2)
            .run(&Query::new("t", small_ranges(), Objective::MaxFlightTime).with_refinement(1, 3));
        assert_eq!(untraced, answer1);
    }

    #[test]
    fn a_traced_panic_still_records_its_span() {
        use drone_telemetry::{derive_trace_id, Clock, TraceBuilder};
        let explorer = Explorer::new(2).with_eval_hook(Arc::new(|q: &DesignQuery| {
            assert!(q.capacity_mah != 2000.0, "poisoned capacity");
        }));
        let builder = TraceBuilder::new(derive_trace_id(7, 2), Clock::sim());
        {
            let root = builder.root("serve.request");
            let query =
                Query::new("bad", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
            assert!(explorer.try_run_spanned(&query, Some(&root)).is_err());
        }
        let trace = builder.finish();
        // All 15 grid points were dispatched fresh; the poisoned ones
        // unwound through their span guards, which still recorded.
        assert_eq!(trace.count_named("point"), 15);
        assert_eq!(trace.open_at_finish, 0);
        // Poisoned points panicked before eval: they carry the miss tag
        // but no feasibility verdict.
        assert_eq!(trace.count_tagged("cache", "miss"), 15);
        assert_eq!(trace.count_tagged("feasible", "true"), 0); // bool tags
        let healthy_evals = trace.count_named("eval.size");
        assert_eq!(healthy_evals, 12, "3 of 15 points panicked in the hook");
    }

    #[test]
    fn telemetry_records_query_histograms() {
        let registry = Registry::with_wall_clock();
        let mut explorer = Explorer::new(2);
        explorer.attach_telemetry(&registry);
        let query = Query::new("t", small_ranges(), Objective::MaxFlightTime).with_refinement(0, 0);
        let _ = explorer.run(&query);
        assert_eq!(registry.histogram("explorer.query.latency_s").count(), 1);
        let points = registry.histogram("explorer.query.points").snapshot();
        assert_eq!(points.count(), 1);
        assert_eq!(points.max(), Some(15.0));
        assert!(registry.counter("explorer.cache.misses").get() > 0);
    }
}
