//! Parallel design-space exploration over the paper's analytical model.
//!
//! The paper's contribution *is* the design-space model (Equations 1–7);
//! this crate is the layer that serves query traffic over it, the way
//! AutoPilot (arXiv:2102.02988) layers automated multi-objective search
//! over the same SWaP-constrained UAV space. Four pieces compose:
//!
//! * [`executor`] — a deterministic work-stealing [`ParallelExecutor`]
//!   over `std::thread`: per-worker deques, steal-from-the-back, results
//!   keyed by input index so output is byte-identical at any thread
//!   count.
//! * [`cache`] — the [`EvalCache`]: sharded memoization of
//!   [`drone_dse::eval::evaluate`] keyed by quantized design-point
//!   coordinates, with hit/miss/eviction counters in `drone-telemetry`.
//! * [`pareto`] — incremental [`ParetoFrontier`] maintenance (flight
//!   time ↑, weight ↓, compute share ↓) and 2-D/3-D extraction.
//! * [`query`] + [`engine`] — the batch service: [`Query`] requests
//!   (ranges, constraints, objective) answered by [`Explorer::run_batch`]
//!   with adaptive grid refinement around the incumbent optimum and
//!   per-query latency/point-count histograms.
//!
//! # Example
//!
//! ```
//! use drone_explorer::{Explorer, GridRange, Objective, Query, QueryRanges};
//! use drone_components::battery::CellCount;
//!
//! // "Max flight time for wheelbase <= 450 mm with a 20 W computer."
//! let ranges = QueryRanges {
//!     wheelbase_mm: GridRange::new(250.0, 450.0, 3),
//!     cells: vec![CellCount::S3],
//!     capacity_mah: GridRange::new(2000.0, 6000.0, 5),
//!     compute_power_w: GridRange::fixed(20.0),
//!     twr: GridRange::fixed(2.0),
//!     payload_g: GridRange::fixed(0.0),
//! };
//! let explorer = Explorer::new(2);
//! let answer = explorer.run(&Query::new("example", ranges, Objective::MaxFlightTime));
//! let best = answer.best.expect("some design flies");
//! assert!(best.query.wheelbase_mm <= 450.0);
//! assert!(!answer.frontier.is_empty());
//! ```

pub mod cache;
pub mod engine;
pub mod executor;
pub mod optimize;
pub mod pareto;
pub mod query;

pub use cache::{shard_of, CacheKey, CachedEval, EvalCache};
pub use engine::{EvalHook, EvalResult, Explorer};
pub use executor::{default_threads, set_default_threads, ParallelExecutor, TaskPanic};
pub use optimize::{Lattice, LatticePoint, OptimizeAnswer, OptimizeRequest, Strategy};
pub use pareto::{extract_frontier, extract_frontier_2d, FrontierEntry, ParetoFrontier};
pub use query::{
    Constraints, GridRange, Objective, Query, QueryAnswer, QueryError, QueryLimits, QueryRanges,
    ShardSpec,
};
