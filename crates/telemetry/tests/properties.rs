//! Property-based tests for the telemetry primitives: histogram
//! quantile laws, flight-recorder ring-buffer eviction and dump
//! integrity, span nesting under the sim clock, JSON scanner
//! robustness under hostile bytes, and causal-trace well-formedness.

use drone_telemetry::{
    derive_trace_id, Clock, DumpReason, FlightRecorder, Histogram, Json, Registry, TraceBuilder,
};
use proptest::prelude::*;

/// Positive magnitudes spanning the histogram's useful range.
fn magnitude() -> impl Strategy<Value = f64> {
    (-8.0f64..8.0).prop_map(|exp| 10f64.powf(exp))
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(magnitude(), 1..200)
}

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(values in samples()) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        let mut last = f64::NEG_INFINITY;
        for q in qs {
            let value = hist.quantile(q).expect("non-empty");
            prop_assert!(
                value >= last,
                "quantile({q}) = {value} < previous {last}"
            );
            last = value;
        }
    }

    #[test]
    fn p0_and_p100_are_exact_extremes(values in samples()) {
        let mut hist = Histogram::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &values {
            hist.record(v);
            min = min.min(v);
            max = max.max(v);
        }
        prop_assert_eq!(hist.quantile(0.0), Some(min));
        prop_assert_eq!(hist.quantile(1.0), Some(max));
        prop_assert_eq!(hist.count(), values.len() as u64);
    }

    #[test]
    fn quantiles_stay_within_observed_range(values in samples(), q in 0.0f64..1.0) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let value = hist.quantile(q).expect("non-empty");
        prop_assert!(value >= hist.min().unwrap());
        prop_assert!(value <= hist.max().unwrap());
    }

    #[test]
    fn interior_quantiles_carry_bounded_relative_error(values in samples(), q in 0.05f64..0.95) {
        let mut hist = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            hist.record(v);
        }
        sorted.sort_by(f64::total_cmp);
        // The exact order statistic the bucket walk targets.
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[rank];
        let approx = hist.quantile(q).expect("non-empty");
        // One bucket of log-scale resolution: 10^(1/32) ≈ 7.5 %.
        prop_assert!(
            approx >= exact * 0.999 && approx <= exact * 1.08,
            "quantile({q}) = {approx} vs exact {exact}"
        );
    }

    #[test]
    fn one_sample_histograms_are_exact_everywhere(value in magnitude(), q in 0.0f64..1.0) {
        let mut hist = Histogram::new();
        hist.record(value);
        prop_assert_eq!(hist.quantile(q), Some(value));
        prop_assert_eq!(hist.mean(), Some(value));
    }

    #[test]
    fn histogram_json_round_trips(values in prop::collection::vec(magnitude(), 0..100)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let text = hist.to_json().render();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, hist);
    }

    /// The hand-rolled scanner must never panic: arbitrary bytes
    /// (including invalid UTF-8 and truncated multi-byte runs) either
    /// parse or come back as a typed `ParseError`.
    #[test]
    fn hostile_bytes_never_panic_the_parser(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&raw).into_owned();
        let _ = Json::parse(&text);
        // The same bytes wrapped into string/number positions, where the
        // two hardened decode paths live.
        let quoted = format!("{{\"k\":\"{text}\"}}");
        let _ = Json::parse(&quoted);
        let numeric = format!("[1, {text}]");
        let _ = Json::parse(&numeric);
    }

    /// Non-ASCII strings survive a full render → parse round trip.
    #[test]
    fn non_ascii_strings_round_trip(
        chars in prop::collection::vec(
            prop_oneof![
                Just('é'), Just('ß'), Just('λ'), Just('中'), Just('🚁'),
                Just('\u{7f}'), Just('"'), Just('\\'), Just('\n'), Just('a'),
            ],
            0..40,
        ),
    ) {
        let s: String = chars.into_iter().collect();
        let doc = Json::obj().with("s", s.as_str());
        let back = Json::parse(&doc.render()).expect("rendered JSON must parse");
        prop_assert_eq!(back.get("s").unwrap().as_str(), Some(s.as_str()));
    }

    /// Trace well-formedness: every opened span is recorded exactly
    /// once, children's intervals nest inside their parent's lifetime
    /// (on the sim clock), and ids depend only on structure — not on
    /// how many spans ran or in what order they closed.
    #[test]
    fn traces_are_well_formed(
        seed in 0u64..1000,
        request in 0u64..1000,
        fanout in prop::collection::vec(0usize..6, 1..5),
    ) {
        let clock = Clock::sim();
        let builder = TraceBuilder::new(derive_trace_id(seed, request), clock.clone());
        let mut opened = 1usize;
        {
            let root = builder.root("serve.request");
            for (round, &points) in fanout.iter().enumerate() {
                let round_span = root.child("explore.round", round as u64);
                clock.advance(0.25);
                for point in 0..points {
                    let mut leaf = round_span.child("point", point as u64);
                    leaf.tag("cache", if point % 2 == 0 { "miss" } else { "hit" });
                    clock.advance(0.125);
                    opened += 1;
                }
                opened += 1;
            }
        }
        prop_assert_eq!(builder.open_spans(), 0, "every span closed");
        let trace = builder.finish();
        prop_assert_eq!(trace.span_count(), opened, "each span recorded exactly once");
        prop_assert_eq!(trace.open_at_finish, 0);
        prop_assert_eq!(trace.dropped_spans, 0);
        // Unique ids — "exactly once" also means no duplicate records.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.span_id).collect();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.span_count());
        // Children open and close within the parent's lifetime.
        for span in &trace.spans {
            prop_assert!(span.end_s >= span.start_s);
            if span.parent_id != 0 {
                let parent = trace
                    .spans
                    .iter()
                    .find(|p| p.span_id == span.parent_id)
                    .expect("parent recorded");
                prop_assert!(span.start_s >= parent.start_s, "child opens after parent");
                prop_assert!(span.end_s <= parent.end_s, "child closes before parent");
            }
        }
    }

    /// The deterministic rendering is a pure function of structure:
    /// rebuilding the same trace (even with children closed in reverse)
    /// yields byte-identical JSON.
    #[test]
    fn deterministic_json_is_reproducible(seed in 0u64..1000, points in 1usize..8) {
        let build = |reverse: bool| {
            let builder = TraceBuilder::new(derive_trace_id(seed, 1), Clock::sim());
            let root = builder.root("serve.request");
            let mut children: Vec<_> = (0..points)
                .map(|i| {
                    let mut s = root.child("point", i as u64);
                    s.set_worker(if reverse { 3 } else { 0 });
                    s.tag("cache", "miss");
                    s
                })
                .collect();
            if reverse {
                children.reverse();
            }
            drop(children);
            drop(root);
            builder.finish().deterministic_json().render()
        };
        prop_assert_eq!(build(false), build(true));
    }

    #[test]
    fn ring_buffer_retains_exactly_the_newest_window(
        capacity in 1usize..64,
        total in 0usize..200,
    ) {
        let mut recorder = FlightRecorder::new(capacity);
        let value = recorder.channel("value");
        for tick in 0..total {
            recorder.begin_tick(tick as f64 * 1e-3);
            recorder.set(value, tick as f64);
            recorder.commit_tick();
        }
        prop_assert_eq!(recorder.len(), total.min(capacity));
        let expect_first = total.saturating_sub(capacity);
        let ticks: Vec<u64> = recorder.iter().map(|(id, _, _)| id).collect();
        let expected: Vec<u64> = (expect_first as u64..total as u64).collect();
        prop_assert_eq!(ticks, expected, "eviction must keep the newest window");
        for (id, _, row) in recorder.iter() {
            prop_assert_eq!(row[0], id as f64);
        }
    }

    #[test]
    fn dump_on_failsafe_contains_the_triggering_tick(
        capacity in 2usize..64,
        trigger in 1usize..300,
    ) {
        let mut recorder = FlightRecorder::new(capacity);
        let failsafe = recorder.channel("failsafe.active");
        // Fly ticks 0..=trigger; the failsafe fires on the last one.
        for tick in 0..=trigger {
            recorder.begin_tick(tick as f64 * 1e-3);
            recorder.set(failsafe, if tick == trigger { 1.0 } else { 0.0 });
            recorder.commit_tick();
        }
        let dump = recorder.dump_json(&DumpReason::Failsafe("battery".into()));
        let ticks = dump.get("ticks").unwrap().as_arr().unwrap();
        let last = ticks.last().expect("dump never empty after a commit");
        prop_assert_eq!(last.get("tick").unwrap().as_f64(), Some(trigger as f64));
        let flag = last.get("v").unwrap().as_arr().unwrap()[0].as_f64();
        prop_assert_eq!(flag, Some(1.0), "triggering tick carries the failsafe flag");
        // And the ticks leading up to it, oldest first, contiguous.
        for pair in ticks.windows(2) {
            let a = pair[0].get("tick").unwrap().as_f64().unwrap();
            let b = pair[1].get("tick").unwrap().as_f64().unwrap();
            prop_assert_eq!(b, a + 1.0);
        }
        // JSONL form parses line by line.
        let jsonl = recorder.dump(&DumpReason::Failsafe("battery".into()));
        for line in jsonl.lines() {
            prop_assert!(Json::parse(line).is_ok(), "bad JSONL line: {line}");
        }
    }

    #[test]
    fn nested_spans_compose_under_the_sim_clock(
        outer_head in 0.0f64..0.5,
        inner in 0.0f64..0.5,
        outer_tail in 0.0f64..0.5,
    ) {
        let registry = Registry::with_sim_clock();
        {
            let _outer = registry.span("outer");
            registry.clock().advance(outer_head);
            {
                let _inner = registry.span("inner");
                registry.clock().advance(inner);
            }
            registry.clock().advance(outer_tail);
        }
        let outer = registry.histogram("outer").snapshot();
        let inner_hist = registry.histogram("inner").snapshot();
        prop_assert_eq!(outer.count(), 1);
        prop_assert_eq!(inner_hist.count(), 1);
        let outer_t = outer.max().unwrap();
        let inner_t = inner_hist.max().unwrap();
        prop_assert!((inner_t - inner).abs() < 1e-12);
        // The enclosing span contains its child plus its own work.
        prop_assert!((outer_t - (outer_head + inner + outer_tail)).abs() < 1e-12);
        prop_assert!(outer_t >= inner_t);
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let hist = Histogram::new();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(hist.quantile(q), None);
    }
}
