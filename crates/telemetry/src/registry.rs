//! The metrics registry and span timing.
//!
//! Registration takes a short-lived lock and returns an `Arc` handle;
//! every subsequent update through the handle is a handful of relaxed
//! atomic operations — no locks, no allocation — which is what lets the
//! 1 kHz simulation loops stay instrumented. Snapshots render the whole
//! registry as one JSON object with sorted, stable key order.

use crate::clock::Clock;
use crate::json::Json;
use crate::metrics::{Counter, Gauge, SharedHistogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<SharedHistogram>>,
}

struct RegistryInner {
    clock: Clock,
    metrics: Mutex<Metrics>,
}

/// A named collection of counters, gauges and histograms sharing one
/// [`Clock`].
///
/// Cloning a `Registry` is cheap and yields a handle onto the *same*
/// metrics — what lets a server hold its registry for live `stats`
/// snapshots while the caller keeps updating it.
///
/// # Example
///
/// ```
/// use drone_telemetry::Registry;
/// let registry = Registry::with_wall_clock();
/// let steps = registry.counter("sim.steps");
/// steps.inc();
/// {
///     let _timer = registry.span("ekf.update");
///     // ... work ...
/// }
/// let snapshot = registry.snapshot();
/// assert!(snapshot.render().contains("sim.steps"));
/// ```
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A registry over the given clock.
    pub fn new(clock: Clock) -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                clock,
                metrics: Mutex::new(Metrics::default()),
            }),
        }
    }

    /// A registry timing spans against real (monotonic) time.
    pub fn with_wall_clock() -> Registry {
        Registry::new(Clock::wall())
    }

    /// A registry timing spans against an explicitly advanced sim clock.
    pub fn with_sim_clock() -> Registry {
        Registry::new(Clock::sim())
    }

    /// The registry's time source.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The counter with this name, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics.counters.get(name) {
            Some(handle) => Arc::clone(handle),
            None => {
                let handle = Arc::new(Counter::new());
                metrics
                    .counters
                    .insert(name.to_owned(), Arc::clone(&handle));
                handle
            }
        }
    }

    /// The gauge with this name, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics.gauges.get(name) {
            Some(handle) => Arc::clone(handle),
            None => {
                let handle = Arc::new(Gauge::new());
                metrics.gauges.insert(name.to_owned(), Arc::clone(&handle));
                handle
            }
        }
    }

    /// The histogram with this name, created on first use. Hot paths
    /// should call this once and keep the handle.
    pub fn histogram(&self, name: &str) -> Arc<SharedHistogram> {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics.histograms.get(name) {
            Some(handle) => Arc::clone(handle),
            None => {
                let handle = Arc::new(SharedHistogram::new());
                metrics
                    .histograms
                    .insert(name.to_owned(), Arc::clone(&handle));
                handle
            }
        }
    }

    /// Starts a timing span recording into the named histogram on drop.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::enter(self.histogram(name), self.inner.clock.clone())
    }

    /// Starts a timing span on an already-resolved histogram handle —
    /// the zero-lookup form for cached hot-path handles.
    pub fn span_on(&self, histogram: &Arc<SharedHistogram>) -> SpanGuard {
        SpanGuard::enter(Arc::clone(histogram), self.inner.clock.clone())
    }

    /// One stable JSON object for everything:
    /// `{counters: {...}, gauges: {...}, histograms: {...}}`, keys
    /// sorted by metric name.
    pub fn snapshot(&self) -> Json {
        let metrics = self.inner.metrics.lock().expect("registry lock");
        let mut counters = Json::obj();
        for (name, counter) in &metrics.counters {
            counters.insert(name, counter.get());
        }
        let mut gauges = Json::obj();
        for (name, gauge) in &metrics.gauges {
            gauges.insert(name, gauge.get());
        }
        let mut histograms = Json::obj();
        for (name, histogram) in &metrics.histograms {
            histograms.insert(name, histogram.snapshot().to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Zeroes every metric but keeps registrations (and outstanding
    /// handles) alive — what `repro` does between experiments.
    pub fn reset(&self) {
        let metrics = self.inner.metrics.lock().expect("registry lock");
        for counter in metrics.counters.values() {
            counter.reset();
        }
        for gauge in metrics.gauges.values() {
            gauge.reset();
        }
        for histogram in metrics.histograms.values() {
            histogram.reset();
        }
    }
}

/// The process-wide default registry (wall clock). Library code takes a
/// `&Registry` so tests can isolate, but binaries and macros default to
/// this one.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::with_wall_clock)
}

/// An RAII timing guard: measures from construction to drop on the
/// owning registry's clock and records the elapsed seconds into a
/// histogram. Guards nest naturally — an enclosing span includes the
/// time of every span opened inside it.
#[must_use = "a span guard records on drop; binding it to _ measures nothing"]
pub struct SpanGuard {
    histogram: Arc<SharedHistogram>,
    clock: Clock,
    start: f64,
}

impl SpanGuard {
    fn enter(histogram: Arc<SharedHistogram>, clock: Clock) -> SpanGuard {
        let start = clock.now();
        SpanGuard {
            histogram,
            clock,
            start,
        }
    }

    /// Seconds elapsed so far (without closing the span).
    pub fn elapsed(&self) -> f64 {
        self.clock.now() - self.start
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.histogram.record(self.clock.now() - self.start);
    }
}

/// Opens a timing span: `span!("name")` on the global registry, or
/// `span!(registry, "name")` on a specific one. Bind the result to keep
/// it alive for the region being timed:
///
/// ```
/// use drone_telemetry::{span, Registry};
/// let registry = Registry::with_wall_clock();
/// let _timing = span!(&registry, "slam.local_ba");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($registry:expr, $name:expr) => {
        ($registry).span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let registry = Registry::with_wall_clock();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_has_sorted_stable_keys() {
        let registry = Registry::with_wall_clock();
        registry.counter("zeta").add(1);
        registry.counter("alpha").add(2);
        registry.gauge("mid").set(0.5);
        let snapshot = registry.snapshot();
        let counters = snapshot.get("counters").unwrap().as_obj().unwrap();
        let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn spans_record_sim_time() {
        let registry = Registry::with_sim_clock();
        {
            let guard = registry.span("phase");
            registry.clock().advance(0.125);
            assert_eq!(guard.elapsed(), 0.125);
        }
        let hist = registry.histogram("phase").snapshot();
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), Some(0.125));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let registry = Registry::with_wall_clock();
        let counter = registry.counter("n");
        counter.add(7);
        let hist = registry.histogram("h");
        hist.record(1.0);
        registry.reset();
        assert_eq!(counter.get(), 0);
        assert_eq!(registry.histogram("h").count(), 0);
        counter.inc();
        assert_eq!(registry.counter("n").get(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("telemetry.test.global");
        a.add(3);
        assert!(global().counter("telemetry.test.global").get() >= 3);
    }

    #[test]
    fn wall_spans_measure_nonnegative_time() {
        let registry = Registry::with_wall_clock();
        {
            let _guard = span!(&registry, "tick");
        }
        let hist = registry.histogram("tick").snapshot();
        assert_eq!(hist.count(), 1);
        assert!(hist.max().unwrap() >= 0.0);
    }
}
