//! The time source behind spans and snapshots.
//!
//! Instrumented code never reads `Instant::now()` directly — it asks the
//! registry's [`Clock`]. A wall clock measures real compute time (what
//! the Criterion benches and the SLAM pipeline care about); a sim clock
//! is advanced explicitly by the simulation loop, so the same `span!`
//! call sites produce deterministic measurements inside a fixed-step
//! simulation. Clones share the underlying source, so a clock handed to
//! several subsystems stays coherent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
enum Source {
    /// Monotonic wall time since the clock was created.
    Wall(Instant),
    /// Simulation seconds, advanced via [`Clock::set`] / [`Clock::advance`].
    Sim(AtomicU64),
}

/// A shared monotonic time source, in seconds.
#[derive(Debug, Clone)]
pub struct Clock {
    source: Arc<Source>,
}

impl Clock {
    /// A monotonic wall clock starting at zero now.
    pub fn wall() -> Clock {
        Clock {
            source: Arc::new(Source::Wall(Instant::now())),
        }
    }

    /// A simulation clock starting at zero; advance it from the sim loop.
    pub fn sim() -> Clock {
        Clock {
            source: Arc::new(Source::Sim(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// Whether this is a simulation clock.
    pub fn is_sim(&self) -> bool {
        matches!(*self.source, Source::Sim(_))
    }

    /// Current time, seconds.
    pub fn now(&self) -> f64 {
        match &*self.source {
            Source::Wall(origin) => origin.elapsed().as_secs_f64(),
            Source::Sim(bits) => f64::from_bits(bits.load(Ordering::Relaxed)),
        }
    }

    /// Sets a simulation clock to an absolute time. No-op on a wall
    /// clock, so simulation code can set time unconditionally and still
    /// work when benched under a wall-clock registry.
    pub fn set(&self, seconds: f64) {
        if let Source::Sim(bits) = &*self.source {
            bits.store(seconds.to_bits(), Ordering::Relaxed);
        }
    }

    /// Advances a simulation clock by `dt` seconds (no-op on wall clocks).
    pub fn advance(&self, dt: f64) {
        if let Source::Sim(bits) = &*self.source {
            let now = f64::from_bits(bits.load(Ordering::Relaxed));
            bits.store((now + dt).to_bits(), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = Clock::wall();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(!clock.is_sim());
    }

    #[test]
    fn sim_clock_is_explicit() {
        let clock = Clock::sim();
        assert_eq!(clock.now(), 0.0);
        clock.set(1.5);
        assert_eq!(clock.now(), 1.5);
        clock.advance(0.25);
        assert_eq!(clock.now(), 1.75);
        assert!(clock.is_sim());
    }

    #[test]
    fn clones_share_the_source() {
        let clock = Clock::sim();
        let other = clock.clone();
        clock.set(3.0);
        assert_eq!(other.now(), 3.0);
    }

    #[test]
    fn set_on_wall_clock_is_inert() {
        let clock = Clock::wall();
        clock.set(100.0);
        assert!(clock.now() < 10.0);
    }
}
