//! The black box: a fixed-capacity ring buffer of per-tick channel
//! samples, dumped as JSONL when something goes wrong.
//!
//! Channels are registered up front; from then on the sampling path is
//! allocation-free — `begin_tick` clears a preallocated staging row,
//! `set` writes by index, `commit_tick` copies the row into the
//! preallocated ring, evicting the oldest tick once full. A dump
//! serializes whatever window is retained (the last N ticks leading up
//! to — and including — the trigger), which is exactly the evidence a
//! post-mortem needs after a failsafe or crash.

use crate::json::Json;

/// Index of a registered channel (cheap copyable handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelId(usize);

/// Why a dump was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpReason {
    /// A failsafe fired; the payload is its announcement.
    Failsafe(String),
    /// A crash was detected; the payload describes it.
    Crash(String),
    /// Explicit request (end-of-flight archival, debugging).
    Requested(String),
}

impl DumpReason {
    fn kind(&self) -> &'static str {
        match self {
            DumpReason::Failsafe(_) => "failsafe",
            DumpReason::Crash(_) => "crash",
            DumpReason::Requested(_) => "requested",
        }
    }

    fn detail(&self) -> &str {
        match self {
            DumpReason::Failsafe(s) | DumpReason::Crash(s) | DumpReason::Requested(s) => s,
        }
    }
}

/// The flight recorder ring buffer.
///
/// # Example
///
/// ```
/// use drone_telemetry::{DumpReason, FlightRecorder};
/// let mut fr = FlightRecorder::new(128);
/// let alt = fr.channel("position.z");
/// for tick in 0..200 {
///     fr.begin_tick(tick as f64 * 1e-3);
///     fr.set(alt, tick as f64);
///     fr.commit_tick();
/// }
/// assert_eq!(fr.len(), 128); // oldest 72 ticks evicted
/// let dump = fr.dump(&DumpReason::Requested("example".into()));
/// assert!(dump.lines().count() == 129); // header + one line per tick
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    channels: Vec<String>,
    capacity: usize,
    /// Flat ring storage, `capacity * channels.len()` once sealed.
    rows: Vec<f64>,
    times: Vec<f64>,
    tick_ids: Vec<u64>,
    /// Ring start (oldest row index).
    head: usize,
    /// Rows currently retained.
    len: usize,
    /// Staging row for the tick being assembled.
    staged: Vec<f64>,
    staging: bool,
    next_tick: u64,
    sealed: bool,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "recorder capacity must be positive");
        FlightRecorder {
            channels: Vec::new(),
            capacity,
            rows: Vec::new(),
            times: Vec::new(),
            tick_ids: Vec::new(),
            head: 0,
            len: 0,
            staged: Vec::new(),
            staging: false,
            next_tick: 0,
            sealed: false,
        }
    }

    /// Registers a channel. All channels must be registered before the
    /// first tick.
    ///
    /// # Panics
    ///
    /// Panics after the first `begin_tick` — the row layout is fixed
    /// once recording starts.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        assert!(
            !self.sealed,
            "channels must be registered before the first tick"
        );
        self.channels.push(name.to_owned());
        ChannelId(self.channels.len() - 1)
    }

    /// Registered channel names, in [`ChannelId`] order.
    pub fn channels(&self) -> &[String] {
        &self.channels
    }

    /// Ticks retained right now.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tick has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum ticks retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total ticks ever committed (the next commit gets this id).
    pub fn next_tick_id(&self) -> u64 {
        self.next_tick
    }

    /// Opens the staging row for one tick at simulation time `t`.
    /// Unset channels record as NaN (`null` in the dump). The first call
    /// seals channel registration and allocates the ring; subsequent
    /// ticks are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if no channels are registered or a tick is already open.
    pub fn begin_tick(&mut self, t: f64) {
        assert!(!self.channels.is_empty(), "no channels registered");
        assert!(!self.staging, "previous tick not committed");
        if !self.sealed {
            self.sealed = true;
            self.rows = vec![f64::NAN; self.capacity * self.channels.len()];
            self.times = vec![0.0; self.capacity];
            self.tick_ids = vec![0; self.capacity];
            self.staged = vec![f64::NAN; self.channels.len() + 1];
        }
        self.staged.fill(f64::NAN);
        self.staged[0] = t;
        self.staging = true;
    }

    /// Stages a channel sample for the open tick.
    ///
    /// # Panics
    ///
    /// Panics if no tick is open.
    pub fn set(&mut self, channel: ChannelId, value: f64) {
        assert!(self.staging, "set outside begin_tick/commit_tick");
        self.staged[channel.0 + 1] = value;
    }

    /// Commits the staged tick into the ring, evicting the oldest tick
    /// when full.
    ///
    /// # Panics
    ///
    /// Panics if no tick is open.
    pub fn commit_tick(&mut self) {
        assert!(self.staging, "commit without begin_tick");
        let width = self.channels.len();
        let slot = if self.len < self.capacity {
            let slot = (self.head + self.len) % self.capacity;
            self.len += 1;
            slot
        } else {
            let slot = self.head;
            self.head = (self.head + 1) % self.capacity;
            slot
        };
        self.times[slot] = self.staged[0];
        self.tick_ids[slot] = self.next_tick;
        self.rows[slot * width..(slot + 1) * width].copy_from_slice(&self.staged[1..]);
        self.next_tick += 1;
        self.staging = false;
    }

    /// Retained ticks oldest-first as `(tick_id, time, samples)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64, &[f64])> {
        let width = self.channels.len();
        (0..self.len).map(move |i| {
            let slot = (self.head + i) % self.capacity;
            (
                self.tick_ids[slot],
                self.times[slot],
                &self.rows[slot * width..(slot + 1) * width],
            )
        })
    }

    /// The retained window as JSONL: a header line (`type: "header"`,
    /// reason, channel names, window bounds) followed by one compact
    /// line per tick — `{"tick":…,"t":…,"v":[…]}`, oldest first.
    pub fn dump(&self, reason: &DumpReason) -> String {
        let mut out = self.header(reason).render();
        out.push('\n');
        for (tick, t, samples) in self.iter() {
            let mut row = Json::obj().with("tick", tick).with("t", t);
            let mut values = Json::arr();
            for &v in samples {
                values.push(v);
            }
            row.insert("v", values);
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// The retained window as one JSON object (for embedding inside a
    /// larger artifact): `{reason, detail, channels, ticks: [...]}`.
    pub fn dump_json(&self, reason: &DumpReason) -> Json {
        let mut ticks = Json::arr();
        for (tick, t, samples) in self.iter() {
            let mut values = Json::arr();
            for &v in samples {
                values.push(v);
            }
            ticks.push(
                Json::obj()
                    .with("tick", tick)
                    .with("t", t)
                    .with("v", values),
            );
        }
        self.header(reason).with("ticks", ticks)
    }

    fn header(&self, reason: &DumpReason) -> Json {
        let mut channels = Json::arr();
        for name in &self.channels {
            channels.push(name.as_str());
        }
        let first_tick = self.iter().next().map(|(id, _, _)| id).unwrap_or(0);
        Json::obj()
            .with("type", "header")
            .with("reason", reason.kind())
            .with("detail", reason.detail())
            .with("channels", channels)
            .with("retained_ticks", self.len)
            .with("first_tick", first_tick)
            .with("last_tick", self.next_tick.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_the_last_capacity_ticks() {
        let mut fr = FlightRecorder::new(3);
        let ch = fr.channel("x");
        for i in 0..5 {
            fr.begin_tick(i as f64);
            fr.set(ch, i as f64 * 10.0);
            fr.commit_tick();
        }
        let ticks: Vec<u64> = fr.iter().map(|(id, _, _)| id).collect();
        assert_eq!(ticks, [2, 3, 4]);
        let values: Vec<f64> = fr.iter().map(|(_, _, v)| v[0]).collect();
        assert_eq!(values, [20.0, 30.0, 40.0]);
    }

    #[test]
    fn unset_channels_are_nan_and_dump_as_null() {
        let mut fr = FlightRecorder::new(2);
        let _a = fr.channel("a");
        let b = fr.channel("b");
        fr.begin_tick(0.0);
        fr.set(b, 1.0);
        fr.commit_tick();
        let (_, _, row) = fr.iter().next().unwrap();
        assert!(row[0].is_nan());
        assert_eq!(row[1], 1.0);
        let dump = fr.dump(&DumpReason::Requested("test".into()));
        assert!(dump.lines().nth(1).unwrap().contains("[null,1]"));
    }

    #[test]
    fn dump_header_describes_the_window() {
        let mut fr = FlightRecorder::new(4);
        let ch = fr.channel("battery.v");
        for i in 0..10 {
            fr.begin_tick(i as f64 * 0.01);
            fr.set(ch, 12.0);
            fr.commit_tick();
        }
        let dump = fr.dump_json(&DumpReason::Failsafe("battery low".into()));
        assert_eq!(dump.get("reason").unwrap().as_str(), Some("failsafe"));
        assert_eq!(dump.get("detail").unwrap().as_str(), Some("battery low"));
        assert_eq!(dump.get("retained_ticks").unwrap().as_f64(), Some(4.0));
        assert_eq!(dump.get("first_tick").unwrap().as_f64(), Some(6.0));
        assert_eq!(dump.get("last_tick").unwrap().as_f64(), Some(9.0));
        assert_eq!(dump.get("ticks").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn jsonl_dump_parses_line_by_line() {
        let mut fr = FlightRecorder::new(8);
        let ch = fr.channel("x");
        for i in 0..3 {
            fr.begin_tick(i as f64);
            fr.set(ch, i as f64);
            fr.commit_tick();
        }
        let dump = fr.dump(&DumpReason::Crash("ground impact".into()));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            Json::parse(line).expect("every dump line is valid JSON");
        }
    }

    #[test]
    #[should_panic(expected = "before the first tick")]
    fn late_channel_registration_panics() {
        let mut fr = FlightRecorder::new(2);
        let _ = fr.channel("a");
        fr.begin_tick(0.0);
        fr.commit_tick();
        let _ = fr.channel("too-late");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FlightRecorder::new(0);
    }
}
