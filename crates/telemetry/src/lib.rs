//! Flight-recorder telemetry: where the time and the power go.
//!
//! The workspace turns measured compute/power/timing numbers into
//! flight-time predictions, so being able to *see inside a run* is a
//! first-class requirement (MAVBench makes the same argument for
//! closed-loop MAV benchmarks). This crate is the zero-dependency
//! observability layer the rest of the stack records into:
//!
//! * [`metrics`] — counters, gauges and fixed-bucket log-scale
//!   histograms with p50/p90/p99/max extraction, in plain and atomic
//!   (shared-handle) flavours.
//! * [`registry`] — the named-metric [`Registry`]: lock-free-ish
//!   updates through `Arc` handles, stable sorted JSON snapshots, and
//!   RAII [`span!`] timing guards.
//! * [`clock`] — the wall/sim [`Clock`] spans measure against, so the
//!   same instrumentation works in Criterion benches (wall time) and
//!   deterministic fixed-step simulations (sim time).
//! * [`recorder`] — the [`FlightRecorder`] black box: a ring buffer of
//!   per-tick channel samples (attitude, motor commands, battery, EKF
//!   health…) dumped as JSONL when a failsafe fires or a crash is
//!   detected.
//! * [`trace`] — causal span-tree tracing with deterministic ids: the
//!   per-request attribution layer behind the serving stack's `trace`
//!   introspection plane ([`TraceBuilder`], RAII [`Span`]s, the
//!   bounded [`TraceRing`] of completed traces).
//! * [`json`] — the minimal JSON document model behind every export
//!   (the vendored `serde` is a no-op marker, so artifacts need a real
//!   encoder; this is it).
//!
//! # Example
//!
//! ```
//! use drone_telemetry::{span, DumpReason, FlightRecorder, Registry};
//!
//! let registry = Registry::with_sim_clock();
//! let ticks = registry.counter("sim.ticks");
//! let mut blackbox = FlightRecorder::new(512);
//! let altitude = blackbox.channel("position.z");
//!
//! for tick in 0..1000u64 {
//!     let t = tick as f64 * 1e-3;
//!     registry.clock().set(t);
//!     let _step = span!(&registry, "sim.step");
//!     ticks.inc();
//!     blackbox.begin_tick(t);
//!     blackbox.set(altitude, 10.0);
//!     blackbox.commit_tick();
//! }
//!
//! assert_eq!(registry.counter("sim.ticks").get(), 1000);
//! let dump = blackbox.dump(&DumpReason::Requested("post-flight".into()));
//! assert_eq!(dump.lines().count(), 513); // header + the retained window
//! ```

pub mod clock;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use clock::Clock;
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, SharedHistogram};
pub use recorder::{ChannelId, DumpReason, FlightRecorder};
pub use registry::{global, Registry, SpanGuard};
pub use trace::{
    derive_trace_id, derive_trace_id_bytes, id_hex, parse_id_hex, Span, SpanRecord, Trace,
    TraceBuilder, TraceRing,
};
