//! A minimal JSON document model with a writer and a parser.
//!
//! The workspace's vendored `serde` is a no-op marker (see
//! `vendor/serde`), so machine-readable artifacts need a real encoder
//! somewhere. This module is that encoder: an insertion-ordered document
//! tree ([`Json`]), a compact and a pretty writer, and a small
//! recursive-descent parser so round-trips can be tested and CI can
//! validate emitted artifacts. Insertion order is preserved in objects,
//! which is what gives `BENCH_*.json` files their stable key order.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Inserts (or replaces) a key in an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.insert(key, value);
        self
    }

    /// Inserts (or replaces) a key in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(pairs) = self else {
            panic!("Json::insert on a non-object");
        };
        let value = value.into();
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_owned(), value)),
        }
    }

    /// Appends to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) {
        let Json::Arr(items) = self else {
            panic!("Json::push on a non-array");
        };
        items.push(value.into());
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the `BENCH_*.json`
    /// artifact format).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Nesting is limited to [`MAX_PARSE_DEPTH`] levels so untrusted
    /// input (the `drone-serve` request path feeds network bytes here)
    /// cannot overflow the stack with `[[[[…`; deeper documents return
    /// a [`ParseError`] instead.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// Rust's `f64` Display is the shortest decimal that round-trips, which
/// is exactly what a stable artifact format wants. JSON has no spelling
/// for non-finite numbers, so those degrade to `null`.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Deepest container nesting [`Json::parse`] accepts. The recursive-
/// descent parser burns one stack frame per level, so this bound is
/// what keeps arbitrary network bytes from overflowing the stack.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error("nesting deeper than MAX_PARSE_DEPTH"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character. `peek` only proves a
                    // byte is present; the decode can still fail on hostile
                    // input, so both steps return typed errors rather than
                    // panicking.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("empty UTF-8 run in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The scan above only admits ASCII bytes, but a typed error is
        // strictly safer than an `expect` if that invariant ever slips.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-ASCII byte in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("malformed number"))
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    /// Lossy above 2⁵³; counters in this workspace stay far below that.
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact() {
        let doc = Json::obj()
            .with("name", "repro")
            .with("count", 3u64)
            .with("ok", true)
            .with("ratio", 0.074)
            .with("items", vec![Json::Num(1.0), Json::Null]);
        assert_eq!(
            doc.render(),
            r#"{"name":"repro","count":3,"ok":true,"ratio":0.074,"items":[1,null]}"#
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let doc = Json::obj().with("z", 1.0).with("a", 2.0).with("m", 3.0);
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_what_it_writes() {
        let doc = Json::obj()
            .with("text", "line\nbreak \"quoted\" \\ slash")
            .with("nested", Json::obj().with("pi", std::f64::consts::PI))
            .with("empty_obj", Json::obj())
            .with("empty_arr", Json::arr())
            .with("neg", -1.25e-9);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#"{"s":"café\tnoir é"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "café\tnoir é");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // 200k unterminated opens: without the depth cap this is a
        // stack overflow (an abort, not a catchable panic).
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(200_000);
            assert!(Json::parse(&bomb).is_err());
        }
        // Depth within the cap still parses, and siblings do not
        // accumulate depth.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        let siblings = format!("[{}]", vec!["[[1]]"; 200].join(","));
        assert!(Json::parse(&siblings).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -2.2250738585072014e-308] {
            let parsed = Json::parse(&Json::Num(v).render()).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits());
        }
    }
}
