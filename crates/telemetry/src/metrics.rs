//! Counters, gauges and fixed-bucket log-scale histograms.
//!
//! Two histogram flavours share one bucket layout:
//!
//! * [`Histogram`] — plain single-owner data. Serializable (via
//!   [`Histogram::to_json`]), comparable, mergeable; what reports like
//!   `drone_firmware::SchedulerReport` embed.
//! * [`SharedHistogram`] — the same buckets behind atomics; what the
//!   [`Registry`](crate::Registry) hands out so hot loops can record
//!   through a shared handle without locks or allocation.
//!
//! Buckets are logarithmic — 32 per decade from 1 ns to 1 Gs — so one
//! layout covers EKF microseconds and mission-length seconds with a
//! bounded ~7 % relative quantile error. Quantiles report a bucket's
//! upper edge clamped into `[min, max]`, which makes `p100` exactly the
//! observed maximum and single-sample histograms exact at every
//! quantile.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Log-scale bucket resolution: buckets per power of ten.
pub const BUCKETS_PER_DECADE: usize = 32;
/// Decades covered: `1e-9 ..= 1e9`.
const DECADES: usize = 18;
/// Smallest distinguishable value; everything at or below it (including
/// zero and negatives) lands in the underflow bucket.
const MIN_TRACKABLE: f64 = 1e-9;
/// Total buckets: the covered decades plus underflow and overflow.
pub const BUCKET_COUNT: usize = BUCKETS_PER_DECADE * DECADES + 2;

/// The bucket a value lands in.
fn bucket_index(value: f64) -> usize {
    if value <= MIN_TRACKABLE {
        return 0;
    }
    // log10 difference (not a quotient) so huge values cannot overflow
    // the intermediate to infinity.
    let position = (value.log10() - MIN_TRACKABLE.log10()) * BUCKETS_PER_DECADE as f64;
    if position >= (BUCKET_COUNT - 2) as f64 {
        BUCKET_COUNT - 1
    } else {
        position.floor() as usize + 1
    }
}

/// Upper edge of a bucket (`+inf` for the overflow bucket).
fn bucket_upper_edge(index: usize) -> f64 {
    if index == 0 {
        MIN_TRACKABLE
    } else if index >= BUCKET_COUNT - 1 {
        f64::INFINITY
    } else {
        MIN_TRACKABLE * 10f64.powf(index as f64 / BUCKETS_PER_DECADE as f64)
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge reading zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Stores a new value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Last stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// A plain log-scale histogram (see module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. NaN samples are dropped.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` clamped into `[0, 1]`); `None` when empty.
    ///
    /// `quantile(0.0)` and `quantile(1.0)` are exactly the observed
    /// minimum and maximum; interior quantiles carry the bucket
    /// resolution (~7 % relative error).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return Some(self.max);
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return Some(bucket_upper_edge(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary + sparse buckets as JSON. Stable layout:
    /// `{count, sum, min, max, mean, p50, p90, p99, buckets: [[i, n]...]}`.
    pub fn to_json(&self) -> Json {
        let mut buckets = Json::arr();
        for (index, count) in self.buckets.iter().enumerate() {
            if *count > 0 {
                buckets.push(vec![Json::from(index), Json::from(*count)]);
            }
        }
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("min", self.min().unwrap_or(f64::NAN))
            .with("max", self.max().unwrap_or(f64::NAN))
            .with("mean", self.mean().unwrap_or(f64::NAN))
            .with("p50", self.quantile(0.5).unwrap_or(f64::NAN))
            .with("p90", self.quantile(0.9).unwrap_or(f64::NAN))
            .with("p99", self.quantile(0.99).unwrap_or(f64::NAN))
            .with("buckets", buckets)
    }

    /// Rebuilds a histogram from [`Histogram::to_json`] output.
    /// Returns `None` on a malformed document.
    pub fn from_json(doc: &Json) -> Option<Histogram> {
        let mut hist = Histogram::new();
        hist.count = doc.get("count")?.as_f64()? as u64;
        hist.sum = doc.get("sum")?.as_f64()?;
        if hist.count > 0 {
            hist.min = doc.get("min")?.as_f64()?;
            hist.max = doc.get("max")?.as_f64()?;
        }
        for entry in doc.get("buckets")?.as_arr()? {
            let pair = entry.as_arr()?;
            let index = pair.first()?.as_f64()? as usize;
            let count = pair.get(1)?.as_f64()? as u64;
            *hist.buckets.get_mut(index)? = count;
        }
        Some(hist)
    }
}

/// The atomic counterpart of [`Histogram`]: record through a shared
/// handle (no locks, no allocation), snapshot into the plain form for
/// quantile extraction and export.
#[derive(Debug)]
pub struct SharedHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    /// Sum of samples, as f64 bits (CAS-updated).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        SharedHistogram::new()
    }
}

impl SharedHistogram {
    /// An empty histogram.
    pub fn new() -> SharedHistogram {
        SharedHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one sample. NaN samples are dropped.
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value < f64::from_bits(bits)).then(|| value.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (value > f64::from_bits(bits)).then(|| value.to_bits())
            });
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time plain copy (quantiles, export).
    pub fn snapshot(&self) -> Histogram {
        let mut hist = Histogram::new();
        for (mine, theirs) in hist.buckets.iter_mut().zip(&self.buckets) {
            *mine = theirs.load(Ordering::Relaxed);
        }
        hist.count = self.count.load(Ordering::Relaxed);
        hist.sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        hist.min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        hist.max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        hist
    }

    /// Back to empty.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        h.record(0.0042);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.0042), "q={q}");
        }
        assert_eq!(h.mean(), Some(0.0042));
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s uniform
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 / 0.5 - 1.0).abs() < 0.2, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 / 0.99 - 1.0).abs() < 0.2, "p99={p99}");
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn extremes_land_in_under_and_overflow() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(0.0);
        h.record(1e300);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), Some(1e300));
        assert_eq!(h.quantile(0.0), Some(-5.0));
        // NaN is dropped.
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(100.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.sum(), 101.0);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut h = Histogram::new();
        for v in [0.0, 1e-6, 3.5e-3, 3.6e-3, 0.25, 7.0, 1e12] {
            h.record(v);
        }
        let doc = h.to_json();
        let back = Histogram::from_json(&doc).unwrap();
        assert_eq!(back, h);
        // And survives an actual text round-trip.
        let reparsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(Histogram::from_json(&reparsed).unwrap(), h);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn shared_histogram_matches_plain() {
        let shared = SharedHistogram::new();
        let mut plain = Histogram::new();
        for i in 0..500 {
            let v = (i as f64 * 0.37).sin().abs() * 1e-2;
            shared.record(v);
            plain.record(v);
        }
        assert_eq!(shared.snapshot(), plain);
        shared.reset();
        assert!(shared.snapshot().is_empty());
    }
}
