//! Causal span-tree tracing with deterministic IDs.
//!
//! Aggregate counters say *how much*; traces say *where*. This module
//! is the per-request attribution layer for the serving stack: every
//! request owns one [`TraceBuilder`], stages open RAII [`Span`]s that
//! record themselves on drop, and the finished [`Trace`] is a flat span
//! table that renders as a tree.
//!
//! Two properties are load-bearing:
//!
//! * **Deterministic IDs.** A trace id is an FNV-1a digest of the
//!   workload seed and the request id ([`derive_trace_id`]); a span id
//!   is a digest of `(trace_id, parent span id, name, order)` where
//!   `order` is a *caller-supplied* structural index (round number,
//!   input point index, …) — never an arrival-order counter. Identical
//!   work therefore produces identical ids at any thread count, which
//!   is what lets `BENCH_trace.json` be byte-compared across
//!   `--threads 1` and `--threads 4`.
//! * **Closed exactly once.** A span records into its trace only from
//!   `Drop`, so unwinding (a poisoned eval panicking mid-batch) still
//!   closes it, and it cannot be recorded twice.
//!
//! What is deterministic: the span set, ids, names, parentage, sibling
//! order, and tags. What is not: wall-clock `start_s`/`end_s` and the
//! worker index a task landed on. [`Trace::deterministic_json`] renders
//! only the former; [`Trace::to_json`] includes everything.

use crate::clock::Clock;
use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Spans retained per trace before the builder starts counting drops
/// instead of recording — a runaway-query backstop, not a tuning knob.
pub const MAX_SPANS_PER_TRACE: usize = 8192;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The trace id for a request: FNV-1a over the workload seed and the
/// numeric request id. Never zero (zero means "untraced"). No
/// randomness anywhere, so the same seeded workload produces the same
/// ids on every run and at every thread count.
pub fn derive_trace_id(seed: u64, request_id: u64) -> u64 {
    let hash = fnv_bytes(
        fnv_bytes(FNV_OFFSET, &seed.to_le_bytes()),
        &request_id.to_le_bytes(),
    );
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// The trace id for a request whose id is not a plain integer: digests
/// arbitrary bytes instead. Same non-zero guarantee.
pub fn derive_trace_id_bytes(seed: u64, id_bytes: &[u8]) -> u64 {
    let hash = fnv_bytes(fnv_bytes(FNV_OFFSET, &seed.to_le_bytes()), id_bytes);
    if hash == 0 {
        1
    } else {
        hash
    }
}

fn derive_span_id(trace_id: u64, parent_id: u64, name: &str, order: u64) -> u64 {
    let mut hash = fnv_bytes(FNV_OFFSET, &trace_id.to_le_bytes());
    hash = fnv_bytes(hash, &parent_id.to_le_bytes());
    hash = fnv_bytes(hash, name.as_bytes());
    hash = fnv_bytes(hash, &order.to_le_bytes());
    if hash == 0 {
        1
    } else {
        hash
    }
}

/// A 64-bit id rendered the way it crosses the wire: 16 lower-case hex
/// characters. `Json::Num` is an `f64` and silently loses integer
/// precision above 2^53, so ids are *always* strings in JSON.
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses an id rendered by [`id_hex`]. Strict: exactly 16 lower-case
/// hex characters.
pub fn parse_id_hex(text: &str) -> Option<u64> {
    if text.len() != 16
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// One closed span: an interval in the request's lifetime with a name,
/// a deterministic position in the tree, and deterministic tags.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Deterministic id ([`derive_trace_id`]-style digest).
    pub span_id: u64,
    /// Parent span id; 0 for the root.
    pub parent_id: u64,
    /// Caller-supplied sibling index — the deterministic sort key for
    /// children of one parent.
    pub order: u64,
    /// Stage name, e.g. `serve.request`, `explore.round`, `eval.power`.
    pub name: String,
    /// Deterministic annotations in insertion order (cache outcome,
    /// feasibility, cost units, …).
    pub tags: Vec<(String, Json)>,
    /// Work-stealing worker the span ran on. Scheduling-dependent:
    /// excluded from the deterministic rendering.
    pub worker: Option<usize>,
    /// Clock seconds at open. Scheduling-dependent under a wall clock.
    pub start_s: f64,
    /// Clock seconds at close.
    pub end_s: f64,
}

struct TraceState {
    spans: Vec<SpanRecord>,
}

struct TraceCore {
    trace_id: u64,
    clock: Clock,
    capacity: usize,
    state: Mutex<TraceState>,
    open: AtomicU64,
    dropped: AtomicU64,
}

impl TraceCore {
    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn record(&self, record: SpanRecord) {
        let mut state = self.lock();
        if state.spans.len() < self.capacity {
            state.spans.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The per-request trace under construction. Cheap to share: spans hold
/// an `Arc` of the same core, so workers on other threads can open
/// children concurrently.
pub struct TraceBuilder {
    core: Arc<TraceCore>,
}

impl TraceBuilder {
    /// A builder for `trace_id`, timing spans on `clock`, retaining at
    /// most [`MAX_SPANS_PER_TRACE`] spans.
    pub fn new(trace_id: u64, clock: Clock) -> TraceBuilder {
        TraceBuilder::with_capacity(trace_id, clock, MAX_SPANS_PER_TRACE)
    }

    /// A builder with an explicit span capacity (tests shrink it to
    /// exercise the drop counter).
    pub fn with_capacity(trace_id: u64, clock: Clock, capacity: usize) -> TraceBuilder {
        TraceBuilder {
            core: Arc::new(TraceCore {
                trace_id,
                clock,
                capacity,
                state: Mutex::new(TraceState { spans: Vec::new() }),
                open: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The id every span in this trace carries.
    pub fn trace_id(&self) -> u64 {
        self.core.trace_id
    }

    /// Opens the root span (parent 0, order 0).
    pub fn root(&self, name: &str) -> Span {
        Span::open(Arc::clone(&self.core), 0, name, 0)
    }

    /// Spans currently open (created and not yet dropped).
    pub fn open_spans(&self) -> u64 {
        self.core.open.load(Ordering::Acquire)
    }

    /// Closes the trace. Spans are sorted by span id — a deterministic
    /// order independent of which worker finished first. Spans still
    /// open at this point are *leaked guards*; they are counted in
    /// [`Trace::open_at_finish`] and never appear in the span table.
    pub fn finish(self) -> Trace {
        let mut spans = {
            let mut state = self.core.lock();
            std::mem::take(&mut state.spans)
        };
        spans.sort_by_key(|s| s.span_id);
        Trace {
            trace_id: self.core.trace_id,
            spans,
            dropped_spans: self.core.dropped.load(Ordering::Relaxed),
            open_at_finish: self.core.open.load(Ordering::Acquire),
        }
    }
}

/// An open span: an RAII guard that records itself into the trace on
/// drop — exactly once, even when unwinding from a panic.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct Span {
    core: Arc<TraceCore>,
    span_id: u64,
    parent_id: u64,
    order: u64,
    name: String,
    tags: Vec<(String, Json)>,
    worker: Option<usize>,
    start_s: f64,
}

impl Span {
    fn open(core: Arc<TraceCore>, parent_id: u64, name: &str, order: u64) -> Span {
        let span_id = derive_span_id(core.trace_id, parent_id, name, order);
        let start_s = core.clock.now();
        core.open.fetch_add(1, Ordering::AcqRel);
        Span {
            core,
            span_id,
            parent_id,
            order,
            name: name.to_owned(),
            tags: Vec::new(),
            worker: None,
            start_s,
        }
    }

    /// This span's deterministic id.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The id of the trace this span belongs to.
    pub fn trace_id(&self) -> u64 {
        self.core.trace_id
    }

    /// Opens a child span. `order` is the child's structural index
    /// under this parent (round number, point index, …) and is part of
    /// its id — two children of one parent must not share
    /// `(name, order)`.
    pub fn child(&self, name: &str, order: u64) -> Span {
        Span::open(Arc::clone(&self.core), self.span_id, name, order)
    }

    /// Attaches a deterministic annotation. Insertion order is
    /// preserved in the rendering, so tag in a deterministic order.
    pub fn tag(&mut self, key: &str, value: impl Into<Json>) {
        self.tags.push((key.to_owned(), value.into()));
    }

    /// Notes which executor worker ran this span. Scheduling-dependent:
    /// kept out of the deterministic rendering.
    pub fn set_worker(&mut self, worker: usize) {
        self.worker = Some(worker);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let record = SpanRecord {
            span_id: self.span_id,
            parent_id: self.parent_id,
            order: self.order,
            name: std::mem::take(&mut self.name),
            tags: std::mem::take(&mut self.tags),
            worker: self.worker,
            start_s: self.start_s,
            end_s: self.core.clock.now(),
        };
        self.core.record(record);
        self.core.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A finished trace: the flat span table plus bookkeeping. Renders as
/// a tree in two flavours — full ([`Trace::to_json`]) and
/// scheduling-independent ([`Trace::deterministic_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The deterministic request-derived id.
    pub trace_id: u64,
    /// Every recorded span, sorted by span id.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the trace hit its capacity.
    pub dropped_spans: u64,
    /// Guards still open when `finish()` ran — always 0 in a
    /// well-formed trace.
    pub open_at_finish: u64,
}

impl Trace {
    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Depth of the rendered tree (root = 1; empty trace = 0).
    pub fn depth(&self) -> usize {
        fn node_depth(trace: &Trace, span_id: u64) -> usize {
            1 + trace
                .spans
                .iter()
                .filter(|s| s.parent_id == span_id)
                .map(|s| node_depth(trace, s.span_id))
                .max()
                .unwrap_or(0)
        }
        self.roots()
            .into_iter()
            .map(|root| node_depth(self, root.span_id))
            .max()
            .unwrap_or(0)
    }

    /// Spans tagged `key == value` (string compare on rendered tags).
    pub fn count_tagged(&self, key: &str, value: &str) -> usize {
        self.spans
            .iter()
            .filter(|s| {
                s.tags
                    .iter()
                    .any(|(k, v)| k == key && v.as_str() == Some(value))
            })
            .count()
    }

    /// Spans with this name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The first tag value on the root span with this key, rendered as
    /// a string when it is one.
    pub fn root_tag<'a>(&'a self, key: &str) -> Option<&'a Json> {
        self.roots()
            .first()
            .and_then(|root| root.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn roots(&self) -> Vec<&SpanRecord> {
        // Roots proper, plus orphans whose parent was dropped over
        // capacity — rendered at top level rather than lost.
        let mut roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent_id == 0 || !self.spans.iter().any(|p| p.span_id == s.parent_id))
            .collect();
        roots.sort_by_key(|s| (s.order, s.span_id));
        roots
    }

    fn node_json(&self, span: &SpanRecord, scheduling: bool) -> Json {
        let mut tags = Json::obj();
        for (key, value) in &span.tags {
            tags.insert(key, value.clone());
        }
        let mut node = Json::obj()
            .with("span", id_hex(span.span_id))
            .with("name", span.name.as_str())
            .with("order", span.order)
            .with("tags", tags);
        if scheduling {
            if let Some(worker) = span.worker {
                node.insert("worker", worker);
            }
            node.insert("start_s", span.start_s);
            node.insert("end_s", span.end_s);
            node.insert("elapsed_s", span.end_s - span.start_s);
        }
        let mut children: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent_id == span.span_id)
            .collect();
        children.sort_by_key(|s| (s.order, s.span_id));
        let mut arr = Json::arr();
        for child in children {
            arr.push(self.node_json(child, scheduling));
        }
        node.insert("children", arr);
        node
    }

    fn tree_json(&self, scheduling: bool) -> Json {
        let mut roots = Json::arr();
        for root in self.roots() {
            roots.push(self.node_json(root, scheduling));
        }
        Json::obj()
            .with("trace_id", id_hex(self.trace_id))
            .with("spans", self.span_count())
            .with("dropped_spans", self.dropped_spans)
            .with("open_at_finish", self.open_at_finish)
            .with("tree", roots)
    }

    /// The full rendering: tree shape, tags, worker indexes and wall
    /// timings. What the `trace` wire request returns.
    pub fn to_json(&self) -> Json {
        self.tree_json(true)
    }

    /// The scheduling-independent rendering: tree shape, names, orders
    /// and tags only — no timings, no worker indexes. Byte-stable
    /// across thread counts; what `BENCH_trace.json` embeds.
    pub fn deterministic_json(&self) -> Json {
        self.tree_json(false)
    }
}

struct RingState {
    traces: VecDeque<Trace>,
    completed: u64,
    dropped_spans: u64,
}

/// A bounded ring of the last N completed traces — the storage behind
/// the server's `trace` introspection request. Push-side eviction, so
/// a long-lived server holds memory proportional to the capacity, not
/// the request count.
pub struct TraceRing {
    capacity: usize,
    state: Mutex<RingState>,
}

impl TraceRing {
    /// A ring retaining the newest `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                traces: VecDeque::new(),
                completed: 0,
                dropped_spans: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds a completed trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: Trace) {
        let mut state = self.lock();
        state.completed += 1;
        state.dropped_spans += trace.dropped_spans;
        if state.traces.len() == self.capacity {
            state.traces.pop_front();
        }
        state.traces.push_back(trace);
    }

    /// The newest `n` traces, oldest first.
    pub fn last(&self, n: usize) -> Vec<Trace> {
        let state = self.lock();
        let skip = state.traces.len().saturating_sub(n);
        state.traces.iter().skip(skip).cloned().collect()
    }

    /// The retained trace with this id, if it has not been evicted.
    pub fn find(&self, trace_id: u64) -> Option<Trace> {
        let state = self.lock();
        state
            .traces
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Traces pushed over the ring's lifetime (retained or evicted).
    pub fn completed(&self) -> u64 {
        self.lock().completed
    }

    /// Total spans dropped across every pushed trace — 0 in a healthy
    /// run.
    pub fn dropped_spans(&self) -> u64 {
        self.lock().dropped_spans
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.lock().traces.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained window as JSONL, flight-recorder style: one header
    /// line with the ring's bookkeeping, then one compact line per
    /// trace, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let state = self.lock();
        let header = Json::obj()
            .with("trace_dump", true)
            .with("retained", state.traces.len())
            .with("completed", state.completed)
            .with("dropped_spans", state.dropped_spans);
        let mut out = header.render();
        out.push('\n');
        for trace in &state.traces {
            out.push_str(&trace.to_json().render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_builder(trace_id: u64) -> TraceBuilder {
        TraceBuilder::new(trace_id, Clock::sim())
    }

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        let a = derive_trace_id(7, 1_000_001);
        let b = derive_trace_id(7, 1_000_001);
        let c = derive_trace_id(8, 1_000_001);
        let d = derive_trace_id(7, 1_000_002);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, 0);
        assert_ne!(derive_trace_id_bytes(7, b"\"alpha\""), 0);
    }

    #[test]
    fn id_hex_round_trips_and_is_strict() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX, derive_trace_id(3, 9)] {
            assert_eq!(parse_id_hex(&id_hex(id)), Some(id));
        }
        assert_eq!(parse_id_hex("xyz"), None);
        assert_eq!(parse_id_hex("00000000000000"), None); // too short
        assert_eq!(parse_id_hex("00000000000000AB"), None); // upper case
        assert_eq!(parse_id_hex("000000000000001g"), None);
    }

    #[test]
    fn spans_record_on_drop_and_nest() {
        let builder = sim_builder(42);
        {
            let root = builder.root("serve.request");
            builder.core.clock.advance(0.5);
            {
                let mut child = root.child("explore.round", 0);
                child.tag("points", 15u64);
                builder.core.clock.advance(0.25);
            }
            assert_eq!(builder.open_spans(), 1);
        }
        assert_eq!(builder.open_spans(), 0);
        let trace = builder.finish();
        assert_eq!(trace.span_count(), 2);
        assert_eq!(trace.open_at_finish, 0);
        assert_eq!(trace.dropped_spans, 0);
        assert_eq!(trace.depth(), 2);
        let root = trace.roots()[0];
        assert_eq!(root.name, "serve.request");
        assert_eq!(root.end_s - root.start_s, 0.75);
        assert_eq!(trace.count_named("explore.round"), 1);
    }

    #[test]
    fn span_ids_do_not_depend_on_close_order() {
        // Same structure, children closed in opposite orders.
        let collect = |reverse: bool| {
            let builder = sim_builder(99);
            let root = builder.root("r");
            let a = root.child("p", 0);
            let b = root.child("p", 1);
            if reverse {
                drop(a);
                drop(b);
            } else {
                drop(b);
                drop(a);
            }
            drop(root);
            let trace = builder.finish();
            trace.spans.iter().map(|s| s.span_id).collect::<Vec<_>>()
        };
        assert_eq!(collect(false), collect(true));
    }

    #[test]
    fn deterministic_json_hides_scheduling_facts() {
        let builder = sim_builder(7);
        {
            let root = builder.root("serve.request");
            let mut child = root.child("point", 3);
            child.set_worker(2);
            child.tag("cache", "miss");
        }
        let trace = builder.finish();
        let full = trace.to_json().render();
        let det = trace.deterministic_json().render();
        assert!(full.contains("worker"));
        assert!(full.contains("start_s"));
        assert!(!det.contains("worker"));
        assert!(!det.contains("start_s"));
        assert!(det.contains("\"cache\":\"miss\""));
        assert_eq!(trace.count_tagged("cache", "miss"), 1);
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let builder = TraceBuilder::with_capacity(5, Clock::sim(), 2);
        {
            let root = builder.root("r");
            for i in 0..4 {
                let _ = root.child("p", i);
            }
        }
        let trace = builder.finish();
        assert_eq!(trace.span_count(), 2);
        assert_eq!(trace.dropped_spans, 3); // 2 children + the root
        assert_eq!(trace.open_at_finish, 0);
    }

    #[test]
    fn ring_retains_newest_and_finds_by_id() {
        let ring = TraceRing::new(2);
        for id in 1..=3u64 {
            let builder = sim_builder(id);
            let _ = builder.root("r");
            ring.push(builder.finish());
        }
        assert_eq!(ring.completed(), 3);
        assert_eq!(ring.len(), 2);
        assert!(ring.find(1).is_none(), "oldest must be evicted");
        assert!(ring.find(3).is_some());
        let last = ring.last(8);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].trace_id, 2);
        assert_eq!(last[1].trace_id, 3);
        let dump = ring.dump_jsonl();
        assert_eq!(dump.lines().count(), 3); // header + 2 traces
        for line in dump.lines() {
            assert!(Json::parse(line).is_ok());
        }
    }

    #[test]
    fn concurrent_children_from_workers_all_record() {
        let builder = TraceBuilder::new(11, Clock::wall());
        let root = builder.root("r");
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let child = root.child("p", i);
                scope.spawn(move || {
                    let mut child = child;
                    child.set_worker(i as usize % 3);
                    child.tag("cache", "miss");
                });
            }
        });
        drop(root);
        let trace = builder.finish();
        assert_eq!(trace.span_count(), 9);
        assert_eq!(trace.open_at_finish, 0);
        assert_eq!(trace.count_tagged("cache", "miss"), 8);
    }
}
