//! A full closed-loop autonomous survey flight: 6-DOF simulation, noisy
//! sensors, state estimation, the hierarchical control cascade, mission
//! logic and a MAVLink telemetry downlink — the paper's §4 drone stack
//! flying the aerial-mapping workload its introduction motivates.
//!
//! ```sh
//! cargo run --example survey_mission
//! ```

use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, FlightMode, Mission, StreamParser};
use drone_math::Vec3;
use drone_sim::{PowerMeter, Quadcopter, QuadcopterParams, WindModel};

fn main() {
    let params = QuadcopterParams::default_450mm();
    println!(
        "airframe: {:.0} g take-off weight, TWR {:.2}",
        params.total_weight().0,
        params.thrust_to_weight()
    );

    let mut quad = Quadcopter::new(params.clone());
    let mut sensors = SensorSuite::with_defaults(7);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot
        .upload_mission(Mission::survey_square(Vec3::new(0.0, 0.0, 12.0), 16.0))
        .expect("valid mission");
    autopilot.arm().expect("armed");

    // 4 m/s mean wind with 1.5 m/s gusts — Table 1 says the inner loop
    // handles this without the mission layer noticing.
    let mut wind = WindModel::gusty(Vec3::new(4.0, 1.0, 0.0), 1.5, 11);
    let mut meter = PowerMeter::new(0.5);
    let mut ground_station = StreamParser::new();
    let mut wire = Vec::new();

    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    let mut last_mode = autopilot.mode();
    for step in 0..240_000 {
        let t = step as f64 * dt;
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        let out = quad.step(throttle, wind.sample(dt), dt);
        meter.set_phase(autopilot.mode().to_string());
        meter.record(t, out.total_power);

        if autopilot.mode() != last_mode {
            println!(
                "t={t:7.1}s  mode -> {}  at {}",
                autopilot.mode(),
                quad.state().position
            );
            last_mode = autopilot.mode();
        }
        // Downlink: encode every queued message onto the "radio".
        for (i, msg) in autopilot.drain_outbox().into_iter().enumerate() {
            wire.extend_from_slice(&msg.encode(i as u8, 1, 1));
        }
        if autopilot.mode() == FlightMode::Disarmed && t > 5.0 {
            println!(
                "t={t:7.1}s  mission complete, landed at {}",
                quad.state().position
            );
            break;
        }
    }

    // Ground station decodes the whole flight's telemetry.
    let frames = ground_station.push(&wire);
    println!(
        "\nground station received {} MAVLink frames ({} resyncs, {} CRC failures)",
        frames.len(),
        ground_station.resyncs(),
        ground_station.crc_failures()
    );

    println!("\npower by flight phase:");
    for (phase, avg) in meter.phase_averages() {
        println!("  {phase:<10} {avg}");
    }
    println!(
        "battery remaining: {:.0}%",
        quad.battery().remaining_fraction() * 100.0
    );
}
