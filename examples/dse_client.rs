//! `dse_client` — spin up the DSE query server on a loopback port and
//! talk to it over TCP, end to end.
//!
//! ```sh
//! cargo run --release --example dse_client
//! cargo run --release --example dse_client -- --clients 4 --requests 8
//! cargo run --release --example dse_client -- --retries 3 --backoff-ms 10 --deadline 200
//! cargo run --release --example dse_client -- --trace
//! ```
//!
//! The example starts a [`drone_serve::Server`] in-process and drives
//! it with N concurrent resilient [`drone_serve::Client`]s replaying a
//! deterministic seeded [`drone_serve::Workload`]. `--retries` and
//! `--backoff-ms` configure the clients' retry/backoff policy;
//! `--deadline` arms the server's per-request cost-unit budget, so
//! over-budget queries come back as typed `deadline_exceeded`
//! rejections instead of answers. A deliberately malformed line shows
//! the structured error path, and the run finishes with a graceful
//! drain that joins every server thread.
//!
//! `--trace` asks the live server for the causal span tree of client
//! 0's first request (by its deterministic trace id) and pretty-prints
//! it — one line per span, indented by depth, annotated with cache
//! outcomes and worker ids.
//!
//! `--optimize <monte_carlo|lhs|sobol|halving>` sends one `optimize`
//! wire request after the workload: a seeded sampling run over a small
//! reference region, capped at `--budget` engine evaluations. The
//! reply's winner and points-evaluated accounting are pretty-printed,
//! demonstrating the search subsystem end to end over TCP.

use drone_components::battery::CellCount;
use drone_explorer::{
    Constraints, Explorer, GridRange, Objective, OptimizeRequest, QueryRanges, Strategy,
};
use drone_serve::{CallError, Client, ClientConfig, Server, ServerConfig, Workload};
use drone_telemetry::{derive_trace_id, id_hex, Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

struct Args {
    clients: u64,
    requests: usize,
    seed: u64,
    retries: u32,
    backoff_ms: u64,
    deadline: Option<u64>,
    trace: bool,
    optimize: Option<Strategy>,
    budget: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 3,
        requests: 5,
        seed: 7,
        retries: 2,
        backoff_ms: 25,
        deadline: None,
        trace: false,
        optimize: None,
        budget: 24,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--clients" => args.clients = value("--clients")?.max(1),
            "--requests" => args.requests = value("--requests")?.max(1) as usize,
            "--seed" => args.seed = value("--seed")?,
            "--retries" => args.retries = value("--retries")? as u32,
            "--backoff-ms" => args.backoff_ms = value("--backoff-ms")?.max(1),
            "--deadline" => args.deadline = Some(value("--deadline")?),
            "--trace" => args.trace = true,
            "--optimize" => {
                let name = it
                    .next()
                    .ok_or_else(|| "--optimize needs a strategy name".to_owned())?;
                args.optimize = Some(Strategy::from_name(&name).ok_or_else(|| {
                    format!(
                        "--optimize: unknown strategy {name} (monte_carlo, lhs, sobol, halving)"
                    )
                })?);
            }
            "--budget" => args.budget = value("--budget")?.max(1) as usize,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Pretty-prints one span node of a server-returned trace tree:
/// indented by depth, annotated with its cache outcome and the worker
/// it ran on when present.
fn print_span(node: &Json, depth: usize) {
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let mut notes: Vec<String> = Vec::new();
    if let Some(tags) = node.get("tags").and_then(Json::as_obj) {
        for (key, value) in tags {
            let rendered = match value {
                Json::Str(s) => s.clone(),
                other => other.render(),
            };
            notes.push(format!("{key}={rendered}"));
        }
    }
    if let Some(worker) = node.get("worker").and_then(Json::as_f64) {
        notes.push(format!("worker={worker}"));
    }
    if let Some(elapsed) = node.get("elapsed_s").and_then(Json::as_f64) {
        notes.push(format!("{:.1}us", elapsed * 1e6));
    }
    let annotation = if notes.is_empty() {
        String::new()
    } else {
        format!("  [{}]", notes.join(" "))
    };
    println!("  {}{name}{annotation}", "  ".repeat(depth));
    if let Some(children) = node.get("children").and_then(Json::as_arr) {
        for child in children {
            print_span(child, depth + 1);
        }
    }
}

/// What one client thread saw: per-call outcomes plus the first ok
/// reply for display.
struct ClientRun {
    answered: usize,
    deadline_sheds: usize,
    failed: usize,
    attempts: u32,
    first_ok: Option<Json>,
}

fn run_client(addr: std::net::SocketAddr, args: &Args, client_index: u64) -> ClientRun {
    let registry = Registry::with_wall_clock();
    let config = ClientConfig {
        retries: args.retries,
        backoff_initial_ms: args.backoff_ms,
        backoff_max_ms: args.backoff_ms.saturating_mul(16),
        jitter_seed: args.seed ^ client_index,
        // Distinct per-client trace seeds keep span trees attributable:
        // client c's request n is trace derive_trace_id(seed ^ c, n).
        trace_seed: args.seed ^ client_index,
        ..ClientConfig::default()
    };
    let mut client = Client::new(addr, config, &registry);
    let mut workload = Workload::new(args.seed, client_index);
    let mut run = ClientRun {
        answered: 0,
        deadline_sheds: 0,
        failed: 0,
        attempts: 0,
        first_ok: None,
    };
    for _ in 0..args.requests {
        let query = workload.next_query();
        match client.call(&query) {
            Ok(success) => {
                run.answered += 1;
                run.attempts += success.attempts;
                if run.first_ok.is_none() {
                    run.first_ok = Some(success.reply);
                }
            }
            Err(CallError::Rejected { error, attempts })
                if error.kind == drone_serve::protocol::ErrorKind::DeadlineExceeded =>
            {
                run.deadline_sheds += 1;
                run.attempts += attempts;
            }
            Err(CallError::Rejected { attempts, .. }) => {
                run.failed += 1;
                run.attempts += attempts;
            }
            Err(CallError::Exhausted { attempts, .. }) => {
                run.failed += 1;
                run.attempts += attempts;
            }
            Err(CallError::BreakerOpen) => run.failed += 1,
        }
    }
    run
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: dse_client [--clients N] [--requests N] [--seed N] \
                 [--retries N] [--backoff-ms MS] [--deadline COST_UNITS] [--trace] \
                 [--optimize STRATEGY] [--budget N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let registry = Registry::with_wall_clock();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(&registry);
    let config = ServerConfig {
        cost_deadline: args.deadline,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, config, &registry).expect("bind loopback port");
    println!("server listening on {}", server.addr());
    match args.deadline {
        Some(units) => println!("per-request deadline armed at {units} cost units"),
        None => println!("no per-request deadline"),
    }

    let args = std::sync::Arc::new(args);
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = server.addr();
            let args = std::sync::Arc::clone(&args);
            std::thread::spawn(move || run_client(addr, &args, c))
        })
        .collect();
    let mut answered = 0usize;
    let mut deadline_sheds = 0usize;
    let mut failed = 0usize;
    for (c, handle) in handles.into_iter().enumerate() {
        let run = handle.join().expect("client thread");
        answered += run.answered;
        deadline_sheds += run.deadline_sheds;
        failed += run.failed;
        // Show the first reply of each client, compactly.
        if let Some(doc) = run.first_ok {
            let answer = doc.get("answer").expect("ok reply");
            let best = answer.get("best").expect("best field");
            let describe = |key: &str| {
                best.get(key)
                    .and_then(Json::as_f64)
                    .map_or("-".to_owned(), |v| format!("{v:.1}"))
            };
            println!(
                "client {c}: {} ok / {} shed over {} attempt(s); first answer evaluated {} points, best flight {} min at {} g",
                run.answered,
                run.deadline_sheds,
                run.attempts,
                answer.get("evaluated").and_then(Json::as_f64).unwrap_or(0.0),
                describe("flight_min"),
                describe("weight_g"),
            );
        } else {
            println!(
                "client {c}: {} ok / {} shed / {} failed over {} attempt(s)",
                run.answered, run.deadline_sheds, run.failed, run.attempts
            );
        }
    }

    // The error path is structured too: a malformed line gets a typed
    // reply, not a dropped connection.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"this is not a request\n")
        .expect("send junk");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read error reply");
    let doc = Json::parse(&line).expect("error reply is JSON");
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_owned();
    println!("malformed line answered with a structured '{kind}' error");

    // --trace: ask the live server for client 0's first span tree by
    // its deterministic trace id and pretty-print it.
    let mut trace_ok = true;
    if args.trace {
        let mut probe = Client::new(server.addr(), ClientConfig::default(), &registry);
        let wanted = derive_trace_id(args.seed, 1);
        match probe.fetch_trace(wanted) {
            Ok(success) => {
                let traces = success
                    .reply
                    .get("traces")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[]);
                match traces.first() {
                    Some(trace) => {
                        println!(
                            "span tree for trace {} ({} spans):",
                            id_hex(wanted),
                            trace.get("spans").and_then(Json::as_f64).unwrap_or(0.0)
                        );
                        for root in trace.get("tree").and_then(Json::as_arr).unwrap_or(&[]) {
                            print_span(root, 0);
                        }
                    }
                    None => {
                        println!("trace {} not retained by the server", id_hex(wanted));
                        trace_ok = false;
                    }
                }
            }
            Err(error) => {
                println!("trace fetch failed: {error}");
                trace_ok = false;
            }
        }
    }

    // --optimize: drive the seeded search subsystem over the wire —
    // one optimize request against a small reference region, answered
    // by the same engine (and memo cache) that served the workload.
    let mut optimize_ok = true;
    if let Some(strategy) = args.optimize {
        let request = OptimizeRequest::new(
            "example_opt",
            QueryRanges {
                wheelbase_mm: GridRange::new(250.0, 450.0, 5),
                cells: vec![CellCount::S3],
                capacity_mah: GridRange::new(2000.0, 6000.0, 9),
                compute_power_w: GridRange::fixed(10.0),
                twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
                payload_g: GridRange::fixed(0.0),
            },
            Objective::MaxFlightTime,
            strategy,
            args.budget,
        )
        .with_constraints(Constraints {
            min_flight_time_min: Some(5.0),
            ..Constraints::default()
        })
        .with_seed(args.seed);
        let mut probe = Client::new(server.addr(), ClientConfig::default(), &registry);
        match probe.optimize(&request) {
            Ok(success) => {
                let answer = success.reply.get("answer").expect("ok optimize reply");
                let get = |key: &str| answer.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "optimize[{strategy}]: evaluated {} of budget {} ({} sampled, {} prefiltered, {} coarse, {} refine wave(s))",
                    get("evaluated"),
                    get("budget"),
                    get("sampled"),
                    get("prefiltered"),
                    get("coarse_evals"),
                    get("refine_waves"),
                );
                match answer.get("best") {
                    Some(best) => {
                        let field = |key: &str| {
                            best.get(key)
                                .and_then(Json::as_f64)
                                .map_or("-".to_owned(), |v| format!("{v:.1}"))
                        };
                        let frontier = answer
                            .get("frontier")
                            .and_then(Json::as_arr)
                            .map_or(0, <[Json]>::len);
                        println!(
                            "optimize[{strategy}]: winner flies {} min at {} g ({frontier} member(s) on the frontier)",
                            field("flight_min"),
                            field("weight_g"),
                        );
                    }
                    None => {
                        println!("optimize[{strategy}]: no feasible design under the budget");
                        optimize_ok = false;
                    }
                }
            }
            Err(CallError::Rejected { error, .. })
                if error.kind == drone_serve::protocol::ErrorKind::DeadlineExceeded =>
            {
                println!(
                    "optimize[{strategy}]: shed by the cost deadline (budget {} > deadline)",
                    args.budget
                );
            }
            Err(error) => {
                println!("optimize[{strategy}] failed: {error}");
                optimize_ok = false;
            }
        }
    }

    let stats = server.drain();
    let total = args.clients as usize * args.requests;
    println!(
        "{answered} answered + {deadline_sheds} deadline-shed of {total} requests; \
         drain joined {} thread(s), clean={}",
        stats.threads_joined, stats.clean
    );
    let all_accounted = answered + deadline_sheds == total && failed == 0;
    if all_accounted && stats.clean && kind == "parse" && trace_ok && optimize_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
