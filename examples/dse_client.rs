//! `dse_client` — spin up the DSE query server on a loopback port and
//! talk to it over TCP, end to end.
//!
//! ```sh
//! cargo run --release --example dse_client
//! cargo run --release --example dse_client -- --clients 4 --requests 8
//! ```
//!
//! The example starts a [`drone_serve::Server`] in-process, drives it
//! with N concurrent clients replaying a deterministic seeded
//! [`drone_serve::Workload`], sends one deliberately malformed line to
//! show the structured error path, and finishes with a graceful drain
//! that joins every server thread.

use drone_explorer::Explorer;
use drone_serve::{Server, ServerConfig, Workload};
use drone_telemetry::{Json, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

struct Args {
    clients: u64,
    requests: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 3,
        requests: 5,
        seed: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--clients" => args.clients = value("--clients")?.max(1),
            "--requests" => args.requests = value("--requests")?.max(1) as usize,
            "--seed" => args.seed = value("--seed")?,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn run_client(addr: std::net::SocketAddr, seed: u64, client: u64, requests: usize) -> Vec<String> {
    let mut workload = Workload::new(seed, client);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut payload = String::new();
    for _ in 0..requests {
        payload.push_str(&workload.next_request_line());
    }
    stream.write_all(payload.as_bytes()).expect("send requests");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read reply"))
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("usage: dse_client [--clients N] [--requests N] [--seed N]");
            return ExitCode::FAILURE;
        }
    };

    let registry = Registry::with_wall_clock();
    let mut engine = Explorer::with_default_threads();
    engine.attach_telemetry(&registry);
    let server =
        Server::start(engine, ServerConfig::default(), &registry).expect("bind loopback port");
    println!("server listening on {}", server.addr());

    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let addr = server.addr();
            let (seed, requests) = (args.seed, args.requests);
            std::thread::spawn(move || run_client(addr, seed, c, requests))
        })
        .collect();
    let mut answered = 0usize;
    for (c, handle) in handles.into_iter().enumerate() {
        let replies = handle.join().expect("client thread");
        answered += replies.len();
        // Show the first reply of each client, compactly.
        if let Some(line) = replies.first() {
            let doc = Json::parse(line).expect("reply is JSON");
            let answer = doc.get("answer").expect("ok reply");
            let best = answer.get("best").expect("best field");
            let describe = |key: &str| {
                best.get(key)
                    .and_then(Json::as_f64)
                    .map_or("-".to_owned(), |v| format!("{v:.1}"))
            };
            println!(
                "client {c}: {} replies; first answer evaluated {} points, best flight {} min at {} g",
                replies.len(),
                answer.get("evaluated").and_then(Json::as_f64).unwrap_or(0.0),
                describe("flight_min"),
                describe("weight_g"),
            );
        }
    }

    // The error path is structured too: a malformed line gets a typed
    // reply, not a dropped connection.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"this is not a request\n")
        .expect("send junk");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read error reply");
    let doc = Json::parse(&line).expect("error reply is JSON");
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_owned();
    println!("malformed line answered with a structured '{kind}' error");

    let stats = server.drain();
    println!(
        "{answered} requests answered; drain joined {} thread(s), clean={}",
        stats.threads_joined, stats.clean
    );
    if answered == args.clients as usize * args.requests && stats.clean && kind == "parse" {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
