//! `dse_query` — ask the exploration engine questions about the design
//! space from the command line.
//!
//! ```sh
//! cargo run --release --example dse_query
//! cargo run --release --example dse_query -- \
//!     --max-wheelbase 450 --min-payload 200 --min-compute 20 --threads 4
//! ```
//!
//! The defaults reproduce the README question: *"what is the maximum
//! flight time for wheelbase ≤ 450 mm, payload ≥ 200 g and a ≥ 20 W
//! computer?"* — answered with the constrained optimum plus the Pareto
//! frontier (flight time ↑, weight ↓, compute share ↓) around it.

use drone_components::battery::CellCount;
use drone_explorer::{Explorer, GridRange, Objective, Query, QueryRanges};
use std::process::ExitCode;

struct Args {
    max_wheelbase_mm: f64,
    min_payload_g: f64,
    min_compute_w: f64,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        max_wheelbase_mm: 450.0,
        min_payload_g: 200.0,
        min_compute_w: 20.0,
        threads: drone_explorer::default_threads(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let value = iter
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<f64>()
            .map_err(|e| format!("{flag}: {e}"))?;
        match flag.as_str() {
            "--max-wheelbase" => args.max_wheelbase_mm = value,
            "--min-payload" => args.min_payload_g = value,
            "--min-compute" => args.min_compute_w = value,
            "--threads" => args.threads = (value as usize).max(1),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!(
                "{message}\nusage: dse_query [--max-wheelbase MM] [--min-payload G] \
                 [--min-compute W] [--threads N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let ranges = QueryRanges {
        wheelbase_mm: GridRange::new(
            (args.max_wheelbase_mm / 2.0).max(100.0),
            args.max_wheelbase_mm,
            4,
        ),
        cells: vec![CellCount::S3, CellCount::S6],
        capacity_mah: GridRange::new(1000.0, 8000.0, 8),
        compute_power_w: GridRange::new(args.min_compute_w, args.min_compute_w + 10.0, 3),
        twr: GridRange::fixed(drone_components::paper::PAPER_TWR),
        payload_g: GridRange::new(args.min_payload_g, args.min_payload_g + 200.0, 3),
    };
    let query = Query::new("cli", ranges, Objective::MaxFlightTime);
    let explorer = Explorer::new(args.threads);
    let answer = explorer.run(&query);

    println!(
        "evaluated {} design points in {} round(s) on {} thread(s); {} feasible",
        answer.evaluated,
        answer.rounds,
        explorer.threads(),
        answer.feasible
    );
    let Some(best) = &answer.best else {
        println!(
            "no design flies with wheelbase <= {:.0} mm, payload >= {:.0} g, compute >= {:.0} W",
            args.max_wheelbase_mm, args.min_payload_g, args.min_compute_w
        );
        return ExitCode::SUCCESS;
    };
    println!(
        "max flight time: {:.1} min  ({})",
        best.flight_time_min, best.query
    );
    println!(
        "  at {:.0} g take-off weight, {:.0} W hover, {:.1}% compute share",
        best.weight_g,
        best.hover_power_w,
        best.compute_share_hover * 100.0
    );

    println!("\nPareto frontier (flight ^, weight v, compute share v):");
    let mut frontier: Vec<_> = answer.frontier.iter().collect();
    frontier.sort_by(|a, b| b.flight_time_min.total_cmp(&a.flight_time_min));
    for member in frontier {
        println!(
            "  {:>5.1} min  {:>6.0} g  {:>4.1}% compute  <- {}",
            member.flight_time_min,
            member.weight_g,
            member.compute_share_hover * 100.0,
            member.query
        );
    }
    println!(
        "\ncache: {} hits / {} misses",
        explorer.cache().hit_count(),
        explorer.cache().miss_count()
    );
    ExitCode::SUCCESS
}
