//! Design-space sweep (Figure 10): how power, flight time and the
//! computation footprint vary across wheelbases and battery choices.
//!
//! ```sh
//! cargo run --example design_sweep
//! ```

use drone_components::battery::CellCount;
use drone_dse::sweep::WheelbaseSweep;

fn main() {
    let cells = [CellCount::S1, CellCount::S3, CellCount::S6];
    for wheelbase in [100.0, 450.0, 800.0] {
        let sweep = WheelbaseSweep::run(wheelbase, &cells, 8);
        println!("=== {wheelbase:.0} mm wheelbase ===");
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>12} {:>14}",
            "cells", "mAh", "weight(g)", "power(W)", "flight(min)", "20W@hover(%)"
        );
        for (p, fp) in sweep.points.iter().zip(&sweep.footprint) {
            println!(
                "{:>5} {:>10.0} {:>10.0} {:>10.0} {:>12.1} {:>14.1}",
                p.cells.to_string(),
                p.capacity_mah,
                p.weight_g,
                p.hover_power_w,
                p.flight_time_min,
                fp.advanced_hover * 100.0
            );
        }
        if let Some(best) = sweep.best_configuration() {
            println!(
                "best: {:.1} min with {} {:.0} mAh at {:.0} g\n",
                best.flight_time_min, best.cells, best.capacity_mah, best.weight_g
            );
        }
    }
    println!(
        "paper's §3.2 headline: computation is 2-30% of total power; optimizing it buys\n\
         up to ~+5 min on small drones and ~+2 min on large ones."
    );
}
