//! Outer-loop autonomy demo: map a walled arena with a simulated LiDAR,
//! plan a route through the discovered gap with A*, and fly it on the
//! full stack — the paper's Table 1 outer-loop applications (LiDAR
//! mapping, planning, obstacle detection) running above the inner loop.
//!
//! ```sh
//! cargo run --release --example map_and_plan
//! ```

use drone_autonomy::grid::{CellState, OccupancyGrid};
use drone_autonomy::lidar::{Lidar, ObstacleWorld};
use drone_autonomy::planner::plan_mission;
use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, FlightMode, MissionItem};
use drone_math::Vec3;
use drone_sim::{Quadcopter, QuadcopterParams, RigidBodyState};

fn main() {
    // A wall with a single gap the drone has never seen.
    let mut world = ObstacleWorld::new();
    world.add_box(Vec3::new(4.0, -12.0, 0.0), Vec3::new(5.0, -1.5, 25.0));
    world.add_box(Vec3::new(4.0, 1.5, 0.0), Vec3::new(5.0, 12.0, 25.0));

    // Phase 1: LiDAR mapping from a lawnmower pattern of vantage points.
    let mut grid = OccupancyGrid::new(60, 60, 0.5, -15.0, -15.0);
    let mut lidar = Lidar::new(180, 25.0, 0.005, 9);
    for iy in 0..6 {
        for ix in 0..4 {
            let pose = RigidBodyState {
                position: Vec3::new(-12.0 + ix as f64 * 5.0, -12.0 + iy as f64 * 5.0, 8.0),
                ..Default::default()
            };
            if world.collides(pose.position) {
                continue;
            }
            for _ in 0..2 {
                for ret in lidar.scan(&world, &pose) {
                    let dir = Vec3::new(ret.azimuth.cos(), ret.azimuth.sin(), 0.0);
                    grid.integrate_ray(pose.position, pose.position + dir * ret.range, ret.hit);
                }
            }
        }
    }
    println!("mapped {:.0}% of the arena", grid.coverage() * 100.0);

    // Render the map.
    let inflated = grid.inflated(0.8);
    for y in (0..60).rev().step_by(2) {
        let row: String = (0..60)
            .map(|x| match inflated.state(x, y) {
                CellState::Occupied => '#',
                CellState::Free => '.',
                CellState::Unknown => ' ',
            })
            .collect();
        println!("{row}");
    }

    // Phase 2: plan through whatever the map discovered.
    let mission = plan_mission(&inflated, (-8.0, -6.0), (10.0, 6.0), 8.0, 0.8)
        .expect("a route exists through the gap");
    println!("\nplanned mission:");
    for item in mission.items() {
        println!("  {item}");
    }
    let waypoints = mission
        .items()
        .iter()
        .filter(|i| matches!(i, MissionItem::Waypoint { .. }))
        .count();

    // Phase 3: fly it with the full stack.
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::new(params.clone());
    quad.state_mut().position = Vec3::new(-8.0, -6.0, 0.0);
    let mut sensors = SensorSuite::with_defaults(51);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot.upload_mission(mission).unwrap();
    autopilot.arm().unwrap();
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    for step in 0..240_000 {
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        quad.step(throttle, Vec3::ZERO, dt);
        assert!(
            !world.collides(quad.state().position),
            "collision at {}",
            quad.state()
        );
        if autopilot.mode() == FlightMode::Disarmed && step as f64 * dt > 5.0 {
            println!(
                "\nflew {waypoints} waypoints through the gap and landed at {} after {:.0} s — no collisions",
                quad.state().position,
                step as f64 * dt
            );
            break;
        }
    }
}
