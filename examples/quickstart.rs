//! Quickstart: the paper's Figure 12 procedure, end to end.
//!
//! "How to accurately quantify the benefits?" — size a drone for an
//! application, derive its power and flight time, find the computation
//! share, and convert a compute optimization into gained flight minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use drone_components::battery::CellCount;
use drone_components::units::{Grams, MilliampHours, Watts};
use drone_dse::design::DesignSpec;
use drone_dse::power::{FlyingLoad, PowerModel};

fn main() {
    // Step 1 (Fig 12): start from the application needs — a mapping
    // drone with a mid-size frame, an RPi-class computer, and a camera.
    let spec = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
        .with_compute(Grams(73.0), Watts(5.0)) // RPi + flight controller
        .with_sensors(Grams(40.0), Watts(1.5)) // GPS + FPV camera
        .with_payload(Grams(100.0)); // HD camera (self-powered)

    // Step 2: estimate weight / select components (Equations 1-2).
    let drone = spec.size().expect("the design is feasible");
    println!("sized drone: {drone}");
    println!("weight breakdown:");
    for (label, grams) in drone.weight_breakdown() {
        println!("  {label:<12} {grams}");
    }

    // Step 3: power and flight time (Equations 3-5).
    let model = PowerModel::paper_defaults();
    let hover = model.average_power(&drone, FlyingLoad::Hover);
    println!("\nhover power: {hover}");
    println!(
        "hover flight time: {}",
        model.flight_time(&drone, FlyingLoad::Hover)
    );
    println!(
        "maneuver flight time: {}",
        model.flight_time(&drone, FlyingLoad::Maneuver)
    );

    // Step 4: computation footprint (Equation 6).
    let share = model.compute_share(&drone, FlyingLoad::Hover);
    println!("\ncompute share of total power: {:.1}%", share * 100.0);

    // Step 5: what would offloading the heavy computation buy us?
    // (Equation 7 — e.g. moving SLAM from the RPi to an FPGA saves ~4.5 W.)
    let gained = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(4.5));
    println!("gained flight time if we save 4.5 W of compute: {gained}");
}
