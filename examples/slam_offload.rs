//! SLAM offload study (§5): run the visual SLAM pipeline on synthetic
//! EuRoC sequences, measure the stage profile, and decide which hardware
//! platform should run it on a drone.
//!
//! ```sh
//! cargo run --release --example slam_offload
//! ```

use drone_dse::offload;
use drone_platform::model::Platform;
use drone_slam::euroc::Sequence;
use drone_slam::{Pipeline, PipelineConfig};

fn main() {
    // Run three representative sequences (one per difficulty band).
    let mut profiles = Vec::new();
    for seq in [Sequence::MH01, Sequence::V102, Sequence::V203] {
        let dataset = seq.generate_with_frames(120);
        let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
        println!(
            "{seq}: ATE {:.2} m, {}/{} frames tracked, {} keyframes, profile {}",
            result.ate_meters,
            result.tracked_frames,
            result.frames,
            result.keyframes,
            result.profile
        );
        profiles.push(result.profile);
    }

    // Platform speedups on the hardest profile.
    let profile = profiles[0];
    println!("\nplatform speedups on the measured profile:");
    for platform in Platform::table5_lineup() {
        println!(
            "  {:<5} {:6.2}x  ({}, {})",
            platform.name,
            offload::platform_speedup(&platform, &profile),
            platform.power,
            platform.weight
        );
    }

    // The flight-time verdict (Table 5).
    println!("\nTable 5 — gained flight time vs the RPi baseline:");
    println!(
        "{:<6}{:>9}{:>12}{:>12}{:>13}{:>13}",
        "", "speedup", "power ovh", "weight ovh", "small drones", "large drones"
    );
    for row in offload::table5(&profile) {
        println!(
            "{:<6}{:>8.2}x{:>10.2} W{:>10.0} g{:>9.1} min{:>9.1} min",
            row.platform,
            row.slam_speedup,
            row.power_overhead_w,
            row.weight_overhead_g,
            row.gained_minutes_small,
            row.gained_minutes_large
        );
    }
    let rows = offload::table5(&profile);
    if let Some(winner) = offload::most_cost_effective(&rows) {
        println!(
            "\nverdict: {} is the most cost-effective platform (the paper's conclusion)",
            winner.platform
        );
    }
}
