//! Outer-loop autonomy end to end: a survey flight builds an occupancy
//! map from simulated LiDAR, the planner routes through the discovered
//! gap, and the full flight stack flies the planned mission without
//! hitting the (never directly revealed) obstacle boxes — the paper's
//! Table 1 outer-loop applications working on top of the inner loop.

use drone_autonomy::grid::{CellState, OccupancyGrid};
use drone_autonomy::lidar::{Lidar, ObstacleWorld};
use drone_autonomy::planner::{plan_mission, plan_path};
use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, FlightMode, MissionItem};
use drone_math::Vec3;
use drone_sim::{Quadcopter, QuadcopterParams, RigidBodyState};

/// A wall at x ∈ [4,5] spanning y ∈ [-12,12] with a gap at y ∈ [-1.5,1.5].
fn walled_world() -> ObstacleWorld {
    let mut world = ObstacleWorld::new();
    world.add_box(Vec3::new(4.0, -12.0, 0.0), Vec3::new(5.0, -1.5, 25.0));
    world.add_box(Vec3::new(4.0, 1.5, 0.0), Vec3::new(5.0, 12.0, 25.0));
    world
}

/// Scan the world from a lawnmower pattern of hover points (a simple
/// stand-in for a full mapping flight) and return the built grid.
fn map_by_scanning(world: &ObstacleWorld) -> OccupancyGrid {
    let mut grid = OccupancyGrid::new(60, 60, 0.5, -15.0, -15.0);
    let mut lidar = Lidar::new(180, 25.0, 0.005, 9);
    for iy in 0..6 {
        for ix in 0..4 {
            let pose = RigidBodyState {
                position: Vec3::new(-12.0 + ix as f64 * 5.0, -12.0 + iy as f64 * 5.0, 8.0),
                ..Default::default()
            };
            if world.collides(pose.position) {
                continue;
            }
            // Two scans per vantage point to pass the evidence threshold.
            for _ in 0..2 {
                for ret in lidar.scan(world, &pose) {
                    let dir = Vec3::new(ret.azimuth.cos(), ret.azimuth.sin(), 0.0);
                    let end = pose.position + dir * ret.range;
                    grid.integrate_ray(pose.position, end, ret.hit);
                }
            }
        }
    }
    grid
}

#[test]
fn lidar_mapping_discovers_the_wall_and_the_gap() {
    let world = walled_world();
    let grid = map_by_scanning(&world);
    assert!(grid.coverage() > 0.5, "coverage {}", grid.coverage());
    // The wall's front face (the surface the beams strike) is occupied…
    let (wx, wy) = (4.1, 6.0);
    let (cx, cy) = grid.world_to_cell(wx, wy).unwrap();
    assert_eq!(grid.state(cx, cy), CellState::Occupied, "wall not mapped");
    // …and the gap is known free.
    let (gx, gy) = grid.world_to_cell(4.5, 0.0).unwrap();
    assert_eq!(grid.state(gx, gy), CellState::Free, "gap not discovered");
}

#[test]
fn planned_path_uses_the_discovered_gap() {
    let world = walled_world();
    let grid = map_by_scanning(&world).inflated(0.6);
    let start = grid.world_to_cell(-8.0, -6.0).unwrap();
    let goal = grid.world_to_cell(10.0, 6.0).unwrap();
    let path = plan_path(&grid, start, goal).expect("a route through the gap exists");
    // Every path cell must be collision-free in the TRUE world.
    for &(x, y) in &path {
        let (wx, wy) = grid.cell_center(x, y);
        assert!(
            !world.collides(Vec3::new(wx, wy, 8.0)),
            "path cell ({wx:.1},{wy:.1}) is inside an obstacle"
        );
    }
}

#[test]
fn full_stack_flies_the_planned_mission_without_collision() {
    let world = walled_world();
    let grid = map_by_scanning(&world).inflated(0.8);
    let mission = plan_mission(&grid, (-8.0, -6.0), (10.0, 6.0), 8.0, 0.8)
        .expect("mission planned through the gap");
    let waypoints = mission
        .items()
        .iter()
        .filter(|i| matches!(i, MissionItem::Waypoint { .. }))
        .count();
    assert!(
        waypoints >= 2,
        "route should need turns: {:?}",
        mission.items()
    );

    // Fly it with the full stack, starting at the mission start point.
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::new(params.clone());
    quad.state_mut().position = Vec3::new(-8.0, -6.0, 0.0);
    let mut sensors = SensorSuite::with_defaults(51);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot.upload_mission(mission).unwrap();
    autopilot.arm().unwrap();
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    let mut min_clearance_ok = true;
    for step in 0..240_000 {
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        quad.step(throttle, Vec3::ZERO, dt);
        if world.collides(quad.state().position) {
            min_clearance_ok = false;
            break;
        }
        if autopilot.mode() == FlightMode::Disarmed && step as f64 * dt > 5.0 {
            break;
        }
    }
    assert!(
        min_clearance_ok,
        "the drone hit the wall at {}",
        quad.state()
    );
    assert_eq!(
        autopilot.mode(),
        FlightMode::Disarmed,
        "mission did not complete"
    );
    // Landed near the goal.
    let final_pos = quad.state().position;
    assert!(
        (final_pos - Vec3::new(10.0, 6.0, 0.0)).norm() < 2.5,
        "landed at {final_pos}, expected near (10, 6)"
    );
}
