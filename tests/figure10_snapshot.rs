//! Pins `WheelbaseSweep::paper_figure10()` bit-for-bit.
//!
//! The sweep was refactored onto the shared `drone_dse::eval::evaluate`
//! kernel (the same function `drone-explorer` fans out in parallel);
//! this snapshot guarantees the refactor — and any future change to the
//! kernel — cannot silently move the paper's Figure 10 numbers. The
//! expected values were captured from the evaluator-backed sweep after
//! the `points`/`footprint` skew fix: a 3 W-feasible corner whose 20 W
//! re-size fails is now dropped from *both* vectors, which removed the
//! one desynchronized 800 mm point the pre-fix code kept (45 → 44 rows,
//! previously 45 points vs 44 footprint rows).

use drone_dse::sweep::WheelbaseSweep;

/// FNV-1a over a canonical 9-decimal rendering of every sweep row:
/// any change to a point, an ordering, or a count moves the digest.
fn fingerprint(sweeps: &[WheelbaseSweep]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for s in sweeps {
        eat(&format!(
            "{}:{}:{}\n",
            s.wheelbase_mm,
            s.points.len(),
            s.footprint.len()
        ));
        for p in &s.points {
            eat(&format!(
                "{:?} {:.9} {:.9} {:.9} {:.9}\n",
                p.cells, p.capacity_mah, p.weight_g, p.hover_power_w, p.flight_time_min
            ));
        }
        for p in &s.footprint {
            eat(&format!(
                "{:.9} {:.9} {:.9} {:.9} {:.9}\n",
                p.weight_g, p.basic_hover, p.basic_maneuver, p.advanced_hover, p.advanced_maneuver
            ));
        }
    }
    h
}

#[test]
fn paper_figure10_is_byte_stable() {
    let sweeps = WheelbaseSweep::paper_figure10();

    // Shape: three wheelbases; points and footprint in lockstep. The
    // 800 mm panel drops the one corner (1S) whose 20 W re-size trips
    // the battery discharge limit.
    let shape: Vec<(f64, usize, usize)> = sweeps
        .iter()
        .map(|s| (s.wheelbase_mm, s.points.len(), s.footprint.len()))
        .collect();
    assert_eq!(
        shape,
        vec![(100.0, 45, 45), (450.0, 45, 45), (800.0, 44, 44)]
    );

    // Spot values, readable on failure.
    let best: Vec<f64> = sweeps
        .iter()
        .map(|s| s.best_flight_time().expect("feasible designs").0)
        .collect();
    for (got, expected) in best.iter().zip([14.229203043, 39.966307256, 44.779325872]) {
        assert!(
            (got - expected).abs() < 1e-9,
            "best {got} vs pinned {expected}"
        );
    }
    assert!((sweeps[0].points[0].weight_g - 215.79612104904555).abs() < 1e-12);
    assert!((sweeps[2].points[0].hover_power_w - 70.06487799274299).abs() < 1e-12);

    // The full-precision digest over every row.
    assert_eq!(
        fingerprint(&sweeps),
        0x4704_d584_9323_0880,
        "paper_figure10 output moved — the Figure 10 snapshot must be re-pinned deliberately"
    );
}

#[test]
fn run_is_deterministic_call_to_call() {
    let a = WheelbaseSweep::run(450.0, &[drone_components::battery::CellCount::S3], 10);
    let b = WheelbaseSweep::run(450.0, &[drone_components::battery::CellCount::S3], 10);
    assert_eq!(a, b);
}
