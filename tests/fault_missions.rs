//! Fault-injected mission integration tests: the full stack (truth sim +
//! sensor models + estimator + autopilot + failsafes) flown through the
//! failure modes the paper's safety rules exist for.

use drone_bench::experiments::fault_figs::{fly_scenario, scenarios, Outcome, CAMPAIGN_SEED};
use drone_components::battery::Battery;
use drone_components::units::MilliampHours;
use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, FlightMode, Mission};
use drone_math::Vec3;
use drone_sim::{Quadcopter, QuadcopterParams, WindModel};

fn scenario(name: &str) -> drone_bench::experiments::fault_figs::Scenario {
    scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no {name}"))
}

#[test]
fn link_loss_mid_flight_failsafes_and_lands() {
    let report = fly_scenario(
        &QuadcopterParams::default_450mm(),
        &scenario("link-loss"),
        11,
    );
    assert_eq!(report.outcome, Outcome::SafeLanding, "{report:?}");
    let reason = report.failsafe_reason.as_deref().unwrap_or("");
    assert!(
        reason.contains("link lost"),
        "wrong failsafe reason: {reason:?}"
    );
}

#[test]
fn single_rotor_degradation_keeps_attitude_bounded() {
    let report = fly_scenario(
        &QuadcopterParams::default_450mm(),
        &scenario("motor-degraded"),
        11,
    );
    assert_eq!(report.outcome, Outcome::Survived, "{report:?}");
    assert!(
        report.max_tilt_deg < 30.0,
        "attitude excursion {:.1} deg with one motor at 70%",
        report.max_tilt_deg
    );
}

#[test]
fn drain_limited_pack_auto_lands_before_the_85_percent_limit() {
    // A pack downsized to 6 % of stock makes the state-of-charge failsafe
    // (20 % SoC, i.e. 80 % drained) fire inside a short hover — leaving
    // the 5 % band before the paper's 85 % drain limit (§2.1.1) as the
    // landing energy budget. Touchdown must come before that budget runs
    // out.
    let mut params = QuadcopterParams::default_450mm();
    params.battery = Battery::new(
        params.battery.cells,
        MilliampHours(params.battery.capacity.0 * 0.06),
        params.battery.discharge_c,
        params.battery.weight, // same mass: dynamics untouched
    );
    let mut quad = Quadcopter::new(params.clone());
    let mut sensors = SensorSuite::with_defaults(CAMPAIGN_SEED);
    let mut ap = Autopilot::new(&params);
    ap.align(quad.state());
    ap.upload_mission(Mission::hover_test(4.0, 600.0)).unwrap();
    ap.arm().unwrap();
    let mut wind = WindModel::gusty(Vec3::new(1.0, 0.5, 0.0), 0.5, 5);
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    for _ in 0..300_000 {
        ap.report_battery(quad.battery().voltage().0, quad.battery().at_drain_limit());
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = ap.update(&readings, quad.battery().remaining_fraction(), dt);
        quad.step(throttle, wind.sample(dt), dt);
        if ap.mode() == FlightMode::Disarmed && quad.state().position.z < 0.2 {
            break;
        }
    }
    assert_eq!(
        ap.mode(),
        FlightMode::Disarmed,
        "never landed: {:?}",
        ap.telemetry().last()
    );
    assert!(quad.state().position.z < 0.3, "{}", quad.state());
    assert!(
        ap.telemetry()
            .iter()
            .any(|t| t.mode == FlightMode::Failsafe),
        "battery failsafe never engaged"
    );
    let consumed = quad.battery().consumed().0;
    let usable = quad.battery().effective_usable_energy().0;
    assert!(
        consumed <= usable,
        "landed {:.1}% past the 85% drain limit ({consumed:.2} of {usable:.2} Wh usable)",
        (consumed / usable - 1.0) * 100.0
    );
}
