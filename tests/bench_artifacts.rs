//! The `BENCH_*.json` artifact contract: the fault campaign's metrics
//! must parse as JSON, carry non-empty per-task response-time
//! histograms, and embed a black-box dump with EKF NIS and battery
//! channels leading up to a failsafe/crash trigger — the same
//! guarantees the CI smoke step asserts on the built binary.

use drone_bench::all_experiments;
use drone_telemetry::{Histogram, Json};

fn faults_metrics() -> Json {
    let faults = all_experiments()
        .into_iter()
        .find(|e| e.name == "faults")
        .expect("faults experiment registered");
    (faults.run)().metrics
}

#[test]
fn faults_artifact_round_trips_and_holds_the_evidence() {
    let metrics = faults_metrics();

    // The artifact must survive its own writer/parser pair byte-stably.
    let rendered = Json::obj()
        .with("experiment", "faults")
        .with("metrics", metrics.clone())
        .render_pretty();
    let parsed = Json::parse(&rendered).expect("artifact parses");
    let parsed_metrics = parsed.get("metrics").expect("metrics key");

    // Per-task response-time histograms: at least the inner loop and the
    // EKF must have real distributions with finite p50 <= p99.
    let tasks = parsed_metrics
        .get("scheduler_with_slam")
        .and_then(|s| s.get("tasks"))
        .and_then(Json::as_arr)
        .expect("scheduler tasks");
    for name in ["inner-loop", "ekf"] {
        let task = tasks
            .iter()
            .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("task {name} missing"));
        let hist = Histogram::from_json(task.get("response_times").expect("histogram"))
            .expect("histogram decodes");
        assert!(hist.count() > 100, "{name} histogram near-empty");
        let (p50, p99) = (
            hist.quantile(0.5).expect("p50"),
            hist.quantile(0.99).expect("p99"),
        );
        assert!(p50 <= p99, "{name}: p50 {p50} > p99 {p99}");
    }

    // At least one design point tripped the recorder, and its dump has
    // the forensic channels with history before the trigger.
    let black_boxes = parsed_metrics
        .get("black_boxes")
        .and_then(Json::as_obj)
        .expect("black_boxes");
    assert!(!black_boxes.is_empty(), "no flight tripped the recorder");
    for (design_point, bb) in black_boxes {
        let dump = bb.get("dump").expect("dump");
        let kind = dump.get("reason").and_then(Json::as_str).unwrap();
        assert!(
            kind == "failsafe" || kind == "crash",
            "{design_point}: unexpected reason {kind}"
        );
        let channels: Vec<&str> = dump
            .get("channels")
            .and_then(Json::as_arr)
            .expect("channels")
            .iter()
            .filter_map(Json::as_str)
            .collect();
        for ch in ["ekf.nis", "battery.volts", "battery.soc", "failsafe.active"] {
            assert!(channels.contains(&ch), "{design_point}: missing {ch}");
        }
        let ticks = dump.get("ticks").and_then(Json::as_arr).expect("ticks");
        assert!(
            ticks.len() > 10,
            "{design_point}: only {} ticks of history",
            ticks.len()
        );
        // The registry snapshot rode along with a non-empty NIS histogram.
        let nis = bb
            .get("registry")
            .and_then(|r| r.get("histograms"))
            .and_then(|h| h.get("ekf.nis"))
            .and_then(Histogram::from_json)
            .expect("ekf.nis histogram");
        assert!(nis.count() > 0, "{design_point}: empty NIS histogram");
    }
}

#[test]
fn every_experiment_has_a_unique_name_and_description() {
    let experiments = all_experiments();
    let mut names: Vec<&str> = experiments.iter().map(|e| e.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), experiments.len(), "duplicate experiment name");
    for e in &experiments {
        assert!(
            !e.description.is_empty() && e.description.len() < 80,
            "{}: description must be a non-empty one-liner",
            e.name
        );
    }
}
