//! §2.1.3-D reproduction: the inner-loop update rate is limited by the
//! physical response of the vehicle, not by computation. Running the
//! cascade faster than a few hundred hertz buys essentially nothing,
//! while dropping to tens of hertz visibly degrades response.

use drone_bench::{roll_overshoot, roll_rise_time};

#[test]
fn response_saturates_beyond_500hz() {
    let rise_500 = roll_rise_time(500.0).expect("500 Hz loop reaches the target");
    let rise_4k = roll_rise_time(4000.0).expect("4 kHz loop reaches the target");
    // 8x the compute budget improves the response by under 25 %: the
    // motor time constant dominates.
    let improvement = 1.0 - rise_4k / rise_500;
    assert!(
        improvement < 0.25,
        "4 kHz should not meaningfully beat 500 Hz: rise {rise_500:.4}s -> {rise_4k:.4}s ({improvement:.2})"
    );
}

#[test]
fn paper_rate_band_all_works() {
    // The paper: commercial inner loops run 50-500 Hz. Every rate in the
    // band must achieve the maneuver.
    for rate in [50.0, 100.0, 250.0, 500.0] {
        let rise = roll_rise_time(rate);
        assert!(
            rise.is_some(),
            "{rate} Hz loop failed to reach the roll target"
        );
        let rise = rise.unwrap();
        assert!(
            rise < 1.0,
            "{rate} Hz loop took {rise:.2}s — outside the Table 2 attitude response scale"
        );
    }
}

#[test]
fn very_slow_loops_ring_visibly() {
    // Rise time alone misleads (an underdamped loop rises *faster*);
    // the cost of a slow loop is ringing. A 50 Hz loop must overshoot
    // the step noticeably more than a 1 kHz loop.
    let over_50 = roll_overshoot(50.0);
    let over_1k = roll_overshoot(1000.0);
    assert!(
        over_50 > over_1k + 0.005,
        "50 Hz should ring more than 1 kHz: {over_50:.4} vs {over_1k:.4} rad"
    );
}
