//! The paper's quantitative §3.2 claims, asserted end to end against the
//! model built from the synthetic component catalog.

use drone_components::battery::CellCount;
use drone_components::catalog::Catalog;
use drone_components::units::{MilliampHours, Watts};
use drone_dse::design::DesignSpec;
use drone_dse::power::{FlyingLoad, PowerModel};
use drone_dse::sweep::WheelbaseSweep;

#[test]
fn catalog_refits_recover_published_coefficients() {
    // The whole §3.1 extraction pipeline: synthesize the survey, refit,
    // land near the published Figure 7/8 lines.
    let catalog = Catalog::synthesize_default(42);
    for (label, slope_err, _) in catalog.validation_report() {
        assert!(slope_err < 0.25, "{label}: slope error {slope_err:.3}");
    }
}

#[test]
fn compute_share_spans_the_papers_2_to_30_percent() {
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for sweep in WheelbaseSweep::paper_figure10() {
        for p in &sweep.footprint {
            for share in [
                p.basic_hover,
                p.basic_maneuver,
                p.advanced_hover,
                p.advanced_maneuver,
            ] {
                min = min.min(share);
                max = max.max(share);
            }
        }
    }
    assert!(min < 0.03, "minimum share {min:.3} should fall near 2%");
    assert!(max > 0.10, "maximum share {max:.3} should reach >10%");
    assert!(
        max < 0.40,
        "maximum share {max:.3} should stay in the paper's range"
    );
}

#[test]
fn three_watt_chips_are_under_5_percent_hovering() {
    // The paper's "<5 %" holds from the mid-weights up (its own Figure
    // 10d shows the 3 W curve starting near 10 % at the very lightest
    // 100 mm builds before dropping).
    for sweep in WheelbaseSweep::paper_figure10() {
        for p in &sweep.footprint {
            let limit = if p.weight_g > 900.0 {
                0.055
            } else if p.weight_g > 350.0 {
                0.08
            } else {
                0.12
            };
            assert!(
                p.basic_hover < limit,
                "{} mm at {:.0} g: 3 W share {:.3}",
                sweep.wheelbase_mm,
                p.weight_g,
                p.basic_hover
            );
        }
    }
}

#[test]
fn small_drones_can_gain_minutes_from_compute_savings() {
    // §3.2: "in small drones, by optimizing heavy computations ... we can
    // potentially increase the flight time by up to 20%, or around +5
    // minutes".
    let drone = DesignSpec::new(150.0, CellCount::S2, MilliampHours(2200.0))
        .with_compute_power(Watts(5.0))
        .size()
        .expect("small drone feasible");
    let model = PowerModel::paper_defaults();
    let baseline = model.flight_time(&drone, FlyingLoad::Hover);
    let gained = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(4.5));
    let percent = gained.0 / baseline.0;
    assert!(gained.0 > 1.0, "gained only {gained}");
    assert!(
        (0.05..0.35).contains(&percent),
        "gain fraction {percent:.2}"
    );
}

#[test]
fn large_drones_gain_little() {
    // §3.2: "In large- to medium-sized drones ... the maximum gain of
    // computation power savings is with +2 minutes ... and possibly less".
    let drone = DesignSpec::new(800.0, CellCount::S6, MilliampHours(8000.0))
        .with_compute_power(Watts(20.0))
        .size()
        .expect("large drone feasible");
    let model = PowerModel::paper_defaults();
    let gained = model.gained_flight_time(&drone, FlyingLoad::Hover, Watts(17.0));
    assert!(
        (0.0..6.0).contains(&gained.0),
        "large drone gained {gained} — should be a few minutes at most"
    );
    // And under maneuvering it shrinks further.
    let gained_m = model.gained_flight_time(&drone, FlyingLoad::Maneuver, Watts(17.0));
    assert!(gained_m.0 < gained.0);
}

#[test]
fn cell_count_jumps_appear_in_the_sweep() {
    // §3.2: "jumps occur because heavier drones need batteries with more
    // cells" — at equal capacity, switching 1S→6S changes weight
    // discontinuously via the per-configuration intercepts.
    let w1 = DesignSpec::new(450.0, CellCount::S1, MilliampHours(5000.0))
        .size()
        .map(|d| d.total_weight.0);
    let w6 = DesignSpec::new(450.0, CellCount::S6, MilliampHours(5000.0))
        .size()
        .map(|d| d.total_weight.0);
    if let (Ok(w1), Ok(w6)) = (w1, w6) {
        assert!(
            w6 > w1 + 200.0,
            "6S build should jump in weight: {w1:.0} vs {w6:.0}"
        );
    }
}

#[test]
fn twr_sensitivity_matches_conclusion() {
    // §7: higher TWR values give a *lower* computation-power share.
    let model = PowerModel::paper_defaults();
    let share_at = |twr: f64| {
        let drone = DesignSpec::new(450.0, CellCount::S3, MilliampHours(4000.0))
            .with_compute_power(Watts(20.0))
            .with_twr(twr)
            .size()
            .expect("feasible");
        model.compute_share(&drone, FlyingLoad::Hover)
    };
    let share_2 = share_at(2.0);
    let share_4 = share_at(4.0);
    assert!(
        share_4 < share_2,
        "TWR 4 share {share_4:.3} should be below TWR 2 share {share_2:.3}"
    );
}
