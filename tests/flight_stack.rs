//! Cross-crate integration: the full flight stack — simulation, sensors,
//! estimation, control cascade, mission firmware and telemetry — flying
//! a complete autonomous mission.

use drone_estimation::SensorSuite;
use drone_firmware::{Autopilot, FlightMode, Message, Mission, StreamParser};
use drone_math::Vec3;
use drone_sim::{PowerMeter, Quadcopter, QuadcopterParams, WindModel};

/// Flies a mission and returns `(quad, autopilot, meter, wire)`.
fn fly(
    mission: Mission,
    wind: WindModel,
    seconds: f64,
    sensor_seed: u64,
) -> (Quadcopter, Autopilot, PowerMeter, Vec<u8>) {
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::new(params.clone());
    let mut sensors = SensorSuite::with_defaults(sensor_seed);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot.upload_mission(mission).expect("mission accepted");
    autopilot.arm().expect("armed");
    let mut wind = wind;
    let mut meter = PowerMeter::new(0.1);
    let mut wire = Vec::new();
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    let mut seq = 0u8;
    for step in 0..(seconds / dt) as usize {
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        let out = quad.step(throttle, wind.sample(dt), dt);
        meter.set_phase(autopilot.mode().to_string());
        meter.record(step as f64 * dt, out.total_power);
        for msg in autopilot.drain_outbox() {
            wire.extend_from_slice(&msg.encode(seq, 1, 1));
            seq = seq.wrapping_add(1);
        }
        if autopilot.mode() == FlightMode::Disarmed && step as f64 * dt > 5.0 {
            break;
        }
    }
    (quad, autopilot, meter, wire)
}

#[test]
fn survey_mission_completes_in_gusty_wind() {
    let mission = Mission::survey_square(Vec3::new(0.0, 0.0, 12.0), 16.0);
    let wind = WindModel::gusty(Vec3::new(3.0, 1.0, 0.0), 1.0, 13);
    let (quad, autopilot, _, _) = fly(mission, wind, 150.0, 31);
    assert_eq!(
        autopilot.mode(),
        FlightMode::Disarmed,
        "mission did not complete"
    );
    assert!(
        quad.state().position.z < 0.3,
        "not landed: {}",
        quad.state()
    );
    // The whole square was visited.
    let telemetry = autopilot.telemetry();
    for (sx, sy) in [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)] {
        assert!(
            telemetry
                .iter()
                .any(|t| t.position.x * sx > 4.0 && t.position.y * sy > 4.0),
            "quadrant ({sx},{sy}) never visited"
        );
    }
}

#[test]
fn telemetry_downlink_survives_the_radio() {
    let mission = Mission::hover_test(8.0, 3.0);
    let (_, _, _, wire) = fly(mission, WindModel::calm(), 60.0, 32);
    // The ground station decodes every frame despite byte-at-a-time
    // delivery.
    let mut parser = StreamParser::new();
    let mut frames = Vec::new();
    for chunk in wire.chunks(7) {
        frames.extend(parser.push(chunk));
    }
    assert!(frames.len() > 200, "only {} frames", frames.len());
    assert_eq!(parser.crc_failures(), 0);
    // The stream contains all four periodic message types.
    let has = |pred: fn(&Message) -> bool| frames.iter().any(|f| pred(&f.message));
    assert!(has(|m| matches!(m, Message::Heartbeat { .. })));
    assert!(has(|m| matches!(m, Message::Attitude { .. })));
    assert!(has(|m| matches!(m, Message::Position { .. })));
    assert!(has(|m| matches!(m, Message::BatteryStatus { .. })));
}

#[test]
fn flight_power_matches_the_design_model() {
    // The simulator's measured hover power should agree with the
    // analytical design-space model within modelling error — tying the
    // two halves of the workspace together.
    let mission = Mission::hover_test(10.0, 20.0);
    let (_quad, _, meter, _) = fly(mission, WindModel::calm(), 90.0, 33);
    let sim_hover = meter
        .phase_averages()
        .into_iter()
        .find(|(phase, _)| phase == "mission")
        .map(|(_, w)| w.0)
        .expect("mission phase recorded");

    // Analytical model for the same build.
    let params = QuadcopterParams::default_450mm();
    let spec = drone_dse::design::DesignSpec::new(
        450.0,
        drone_components::battery::CellCount::S3,
        drone_components::units::MilliampHours(3000.0),
    )
    .with_compute(drone_components::units::Grams(73.0), params.avionics_power)
    .with_sensors(
        drone_components::units::Grams(106.0),
        drone_components::units::Watts(0.5),
    );
    let drone = spec.size().expect("feasible");
    let model_hover = drone_dse::power::PowerModel::paper_defaults()
        .average_power(&drone, drone_dse::power::FlyingLoad::Hover)
        .total()
        .0;
    let rel = (sim_hover - model_hover).abs() / model_hover;
    assert!(
        rel < 0.45,
        "simulated hover {sim_hover:.0} W vs model {model_hover:.0} W (rel {rel:.2})"
    );
    // Both in the paper's 450 mm ballpark (~130 W).
    assert!((60.0..220.0).contains(&sim_hover), "sim hover {sim_hover}");
}

#[test]
fn estimator_tracks_through_the_whole_mission() {
    let mission = Mission::survey_square(Vec3::new(0.0, 0.0, 10.0), 12.0);
    let params = QuadcopterParams::default_450mm();
    let mut quad = Quadcopter::new(params.clone());
    let mut sensors = SensorSuite::with_defaults(34);
    let mut autopilot = Autopilot::new(&params);
    autopilot.align(quad.state());
    autopilot.upload_mission(mission).unwrap();
    autopilot.arm().unwrap();
    let mut wind = WindModel::gusty(Vec3::new(2.0, 0.0, 0.0), 0.5, 5);
    let dt = 1e-3;
    let mut prev_vel = quad.state().velocity;
    let mut worst_error = 0.0f64;
    for step in 0..150_000 {
        let accel = (quad.state().velocity - prev_vel) / dt;
        prev_vel = quad.state().velocity;
        let readings = sensors.sample(quad.state(), accel, dt);
        let throttle = autopilot.update(&readings, quad.battery().remaining_fraction(), dt);
        quad.step(throttle, wind.sample(dt), dt);
        if step > 2000 {
            let err = (autopilot.estimate().position - quad.state().position).norm();
            worst_error = worst_error.max(err);
        }
        if autopilot.mode() == FlightMode::Disarmed && step as f64 * dt > 5.0 {
            break;
        }
    }
    // Transient peaks during aggressive corner turns (with blade-flapping
    // moments) reach ~3 m; divergence would be tens of metres.
    assert!(
        worst_error < 4.0,
        "estimator diverged: worst error {worst_error:.2} m"
    );
}
