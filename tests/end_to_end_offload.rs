//! End-to-end §5 reproduction: SLAM pipeline → stage profile → platform
//! models → Figure 17 / Table 5 conclusions.

use drone_dse::offload;
use drone_math::stats::geometric_mean;
use drone_platform::model::Platform;
use drone_slam::euroc::Sequence;
use drone_slam::{Pipeline, PipelineConfig};

fn profiles(frames: usize) -> Vec<drone_slam::StageProfile> {
    // One sequence per difficulty band keeps the test quick while
    // spanning the dataset.
    [Sequence::MH01, Sequence::V102, Sequence::V203]
        .into_iter()
        .map(|seq| {
            let dataset = seq.generate_with_frames(frames);
            Pipeline::new(PipelineConfig::default())
                .run(&dataset)
                .profile
        })
        .collect()
}

#[test]
fn ba_dominates_like_the_paper_says() {
    // §5.2: the bundle adjustments are ≈90 % of ORB-SLAM's RPi runtime.
    for profile in profiles(120) {
        let ba = profile.ba_fraction();
        assert!((0.7..1.0).contains(&ba), "BA fraction {ba:.2} ({profile})");
    }
}

#[test]
fn figure17_gmeans_track_the_paper() {
    let tx2 = Platform::jetson_tx2();
    let fpga = Platform::zynq_fpga();
    let mut s_tx2 = Vec::new();
    let mut s_fpga = Vec::new();
    for profile in profiles(120) {
        s_tx2.push(offload::platform_speedup(&tx2, &profile));
        s_fpga.push(offload::platform_speedup(&fpga, &profile));
    }
    let g_tx2 = geometric_mean(&s_tx2).unwrap();
    let g_fpga = geometric_mean(&s_fpga).unwrap();
    assert!(
        (1.7..2.8).contains(&g_tx2),
        "TX2 GMean {g_tx2:.2} (paper 2.16)"
    );
    assert!(
        (20.0..40.0).contains(&g_fpga),
        "FPGA GMean {g_fpga:.1} (paper 30.7)"
    );
}

#[test]
fn table5_conclusions_hold_on_measured_profiles() {
    for profile in profiles(120) {
        let rows = offload::table5(&profile);
        let get = |n: &str| rows.iter().find(|r| r.platform == n).unwrap();
        // TX2 loses flight time, FPGA and ASIC gain, ASIC by seconds.
        assert!(get("TX2").gained_minutes_small < 0.0);
        assert!(get("FPGA").gained_minutes_small > 1.0);
        let delta = get("ASIC").gained_minutes_small - get("FPGA").gained_minutes_small;
        assert!((0.0..1.0).contains(&delta), "ASIC-FPGA delta {delta:.2}");
        // FPGA is the verdict once fabrication cost is considered.
        assert_eq!(
            offload::most_cost_effective(&rows).unwrap().platform,
            "FPGA"
        );
    }
}

#[test]
fn slam_stays_accurate_enough_to_trust_the_profile() {
    // The profile only means something if the pipeline actually tracks
    // ("while confirming SLAM key metrics", §5).
    for (seq, max_ate) in [
        (Sequence::MH01, 0.6),
        (Sequence::V102, 1.2),
        (Sequence::V203, 3.0),
    ] {
        let dataset = seq.generate_with_frames(120);
        let result = Pipeline::new(PipelineConfig::default()).run(&dataset);
        assert!(
            result.ate_meters < max_ate,
            "{seq}: ATE {:.2} m exceeds {max_ate}",
            result.ate_meters
        );
        let tracked = result.tracked_frames as f64 / result.frames as f64;
        assert!(tracked > 0.8, "{seq}: tracked only {:.0}%", tracked * 100.0);
    }
}
